"""The brake-assistant case study, end to end.

Runs the stock (nondeterministic) demonstrator a few times to show the
error-rate lottery, then the DEAR version to show zero errors, identical
outputs and bounded latency — Section IV of the paper in one script.

Run:  python examples/brake_assistant_demo.py [n_frames]
"""

import sys

from repro.apps.brake import (
    BrakeScenario,
    run_det_brake_assistant,
    run_nondet_brake_assistant,
)
from repro.apps.brake.logic import oracle_commands
from repro.apps.brake.vision import SceneGenerator


def main():
    n_frames = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    scenario = BrakeScenario(n_frames=n_frames)
    generator = SceneGenerator(scenario.period_ns, scenario.variant)
    oracle = oracle_commands(generator, n_frames)
    emergencies = sum(1 for command in oracle.values() if command.brake)
    print(f"Scenario: {n_frames} frames @ 50 ms, {emergencies} of them "
          f"require emergency braking.\n")

    print("Stock AUTOSAR AP implementation (5 seeds):")
    for seed in range(5):
        result = run_nondet_brake_assistant(seed, scenario)
        comparison = result.compare_with_oracle(oracle)
        print(
            f"  seed {seed}: error rate {result.prevalence * 100:6.2f}%  "
            f"dropped(pre/cv/eba)="
            f"{result.errors.dropped_preprocessing}/"
            f"{result.errors.dropped_computer_vision}/"
            f"{result.errors.dropped_eba}  "
            f"mismatches={result.errors.mismatch_computer_vision}  "
            f"missed brakes={comparison.missed_brakes}  "
            f"phantom brakes={comparison.phantom_brakes}"
        )

    print("\nDEAR implementation (3 seeds):")
    fingerprints = set()
    for seed in range(3):
        result = run_det_brake_assistant(seed, scenario)
        comparison = result.compare_with_oracle(oracle)
        latencies = list(result.latencies_ns.values())
        mean_latency = sum(latencies) / len(latencies) / 1e6
        print(
            f"  seed {seed}: error rate {result.prevalence * 100:6.2f}%  "
            f"deadline misses={result.deadline_misses}  "
            f"oracle match={'exact' if comparison.is_perfect else 'NO'}  "
            f"mean e2e latency={mean_latency:.1f} ms"
        )
        fingerprints.add(tuple(sorted(result.commands.items())))
    print(f"\n  brake-command streams identical across seeds: "
          f"{len(fingerprints) == 1}")


if __name__ == "__main__":
    main()
