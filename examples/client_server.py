"""The paper's Figure 1, as a runnable demo.

Runs the naive counter client (``set_value(1); add(2); get_value()``
without awaiting the futures) on the simulated AUTOSAR Adaptive stack
many times, then runs the DEAR version of the same application.  The
stock platform prints several different values; DEAR always prints 3.

Run:  python examples/client_server.py [n_runs]
"""

import sys
from collections import Counter

from repro.analysis.report import histogram_table
from repro.apps.counter import run_det, run_nondet


def main():
    n_runs = int(sys.argv[1]) if len(sys.argv) > 1 else 60

    print(f"Running the stock-AP client {n_runs} times "
          f"(each run = one seed = one possible schedule)...")
    stock = Counter(run_nondet(seed).printed_value for seed in range(n_runs))
    print()
    print(histogram_table(stock, "Printed value on stock AUTOSAR AP:"))

    print()
    print("Running the DEAR client 8 times...")
    dear = Counter(run_det(seed).printed_value for seed in range(8))
    print()
    print(histogram_table(dear, "Printed value under DEAR:"))

    print()
    if set(dear) == {3}:
        print("DEAR: tag-order processing makes the result always 3, even "
              "though the client still never waits for its futures.")


if __name__ == "__main__":
    main()
