"""Quickstart: a minimal deterministic reactor program.

Builds a two-reactor pipeline (a periodic sensor and a filter), runs it
in *fast mode* (pure logical time), and shows that the execution trace
is identical no matter how often you run it.

Run:  python examples/quickstart.py
"""

from repro.reactors import Environment, Reactor
from repro.time import MS, format_duration


class Sensor(Reactor):
    """Emits a reading every 10 ms."""

    def __init__(self, name, owner):
        super().__init__(name, owner)
        self.out = self.output("out")
        tick = self.timer("tick", offset=0, period=10 * MS)
        self.count = 0

        def emit(ctx):
            self.count += 1
            ctx.set(self.out, self.count * 100)

        self.reaction("emit", triggers=[tick], effects=[self.out], body=emit)


class Filter(Reactor):
    """Exponential smoothing over the sensor stream."""

    def __init__(self, name, owner):
        super().__init__(name, owner)
        self.inp = self.input("inp")
        self.out = self.output("out")
        self.state = 0.0

        def smooth(ctx):
            self.state = 0.8 * self.state + 0.2 * ctx.get(self.inp)
            ctx.set(self.out, round(self.state, 3))

        self.reaction("smooth", triggers=[self.inp], effects=[self.out],
                      body=smooth)


class Printer(Reactor):
    """Prints every value with its logical timestamp."""

    def __init__(self, name, owner):
        super().__init__(name, owner)
        self.inp = self.input("inp")
        self.reaction(
            "show",
            triggers=[self.inp],
            body=lambda ctx: print(
                f"  t={format_duration(ctx.logical_time):>6}  "
                f"value={ctx.get(self.inp)}"
            ),
        )


def build_and_run() -> str:
    env = Environment(name="quickstart", timeout=50 * MS)
    sensor = Sensor("sensor", env)
    smoother = Filter("filter", env)
    printer = Printer("printer", env)
    env.connect(sensor.out, smoother.inp)
    env.connect(smoother.out, printer.inp)
    env.execute()
    return env.trace.fingerprint()


def main():
    print("First run:")
    first = build_and_run()
    print("\nSecond run:")
    second = build_and_run()
    print(f"\nTrace fingerprints equal: {first == second}")
    print(f"  {first}")


if __name__ == "__main__":
    main()
