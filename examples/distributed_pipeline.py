"""Distributed deterministic computation over real (simulated) SOME/IP.

Builds a custom two-ECU application from scratch with the public DEAR
API — a sensor-fusion service on one ECU queried by a planner on the
other — demonstrating:

* service interface definition (methods + events + a field),
* transactor generation from the interface (``repro.dear.codegen``),
* tagged method calls and event streams crossing the network,
* safe-to-process arithmetic visible in the received tags,
* an identical logical trace for every platform seed.

Run:  python examples/distributed_pipeline.py
"""

from repro.ara import AraProcess, Event, Field, Method, ServiceInterface
from repro.dear import (
    MethodCall,
    MethodReturn,
    StpConfig,
    TransactorConfig,
    generate_client_transactors,
    generate_server_transactors,
)
from repro.network import NetworkInterface, Switch
from repro.reactors import Environment, Reactor
from repro.sim import World
from repro.sim.platform import CALM
from repro.someip import SdDaemon
from repro.someip.serialization import FLOAT64, INT32
from repro.time import MS, SEC, format_duration

FUSION = ServiceInterface(
    name="SensorFusion",
    service_id=0x4242,
    methods=[
        Method("query_confidence", 0x0001,
               arguments=[("track_id", INT32)],
               returns=[("confidence", FLOAT64)]),
    ],
    events=[Event("track", 0x8001,
                  data=[("track_id", INT32), ("distance", FLOAT64)])],
    fields=[Field("sensitivity", FLOAT64)],
)

CONFIG = TransactorConfig(deadline_ns=5 * MS, stp=StpConfig(latency_bound_ns=8 * MS))


class FusionLogic(Reactor):
    """Server logic: publishes tracks, answers confidence queries."""

    def __init__(self, name, owner):
        super().__init__(name, owner)
        self.track_out = self.output("track_out")
        self.query_in = self.input("query_in")
        self.answer_out = self.output("answer_out")
        tick = self.timer("tick", offset=20 * MS, period=40 * MS)
        self.count = 0

        def publish(ctx):
            self.count += 1
            ctx.set(self.track_out,
                    {"track_id": self.count, "distance": 50.0 - self.count})

        def answer(ctx):
            call: MethodCall = ctx.get(self.query_in)
            confidence = 1.0 / (1 + call.arguments)
            ctx.set(self.answer_out, MethodReturn(call.call_id, confidence))

        self.reaction("publish", triggers=[tick], effects=[self.track_out],
                      body=publish)
        self.reaction("answer", triggers=[self.query_in],
                      effects=[self.answer_out], body=answer)


class PlannerLogic(Reactor):
    """Client logic: reacts to tracks, queries their confidence."""

    def __init__(self, name, owner):
        super().__init__(name, owner)
        self.track_in = self.input("track_in")
        self.query_out = self.output("query_out")
        self.answer_in = self.input("answer_in")
        self.log = []

        def on_track(ctx):
            track = ctx.get(self.track_in)
            self.log.append(("track", ctx.tag, track["track_id"]))
            ctx.set(self.query_out, track["track_id"])

        def on_answer(ctx):
            reply = ctx.get(self.answer_in)
            self.log.append(("confidence", ctx.tag, round(reply.value, 4)))
            if len([entry for entry in self.log if entry[0] == "confidence"]) >= 4:
                ctx.request_stop()

        self.reaction("on_track", triggers=[self.track_in],
                      effects=[self.query_out], body=on_track)
        self.reaction("on_answer", triggers=[self.answer_in], body=on_answer)


def run(seed: int):
    world = World(seed)
    switch = Switch(world.sim, world.rng.stream("net"))
    world.attach_network(switch)
    for host in ("fusion-ecu", "planner-ecu"):
        platform = world.add_platform(host, CALM)
        SdDaemon(platform, NetworkInterface(platform, switch))

    server_process = AraProcess(world.platform("fusion-ecu"), "fusion",
                                tag_aware=True)
    server_env = Environment(name="fusion", timeout=2 * SEC, trace_origin=0)
    skeleton = server_process.create_skeleton(FUSION, 1)
    server_binding = generate_server_transactors(
        server_env, server_process, skeleton, CONFIG,
        field_initials={"sensitivity": 0.5},
    )
    logic = FusionLogic("logic", server_env)
    server_env.connect(logic.track_out, server_binding.events["track"].inp)
    server_env.connect(
        server_binding.methods["query_confidence"].request_out, logic.query_in
    )
    server_env.connect(
        logic.answer_out, server_binding.methods["query_confidence"].response_in
    )
    skeleton.offer()
    server_env.start(world.platform("fusion-ecu"))

    client_process = AraProcess(world.platform("planner-ecu"), "planner",
                                tag_aware=True)
    client_env = Environment(name="planner", timeout=2 * SEC, trace_origin=0)
    planner = PlannerLogic("logic", client_env)

    def setup():
        proxy = yield from client_process.find_service(FUSION, 1)
        binding = generate_client_transactors(
            client_env, client_process, proxy, CONFIG
        )
        client_env.connect(binding.events["track"].out, planner.track_in)
        client_env.connect(
            planner.query_out, binding.methods["query_confidence"].request
        )
        client_env.connect(
            binding.methods["query_confidence"].response, planner.answer_in
        )
        client_env.start(world.platform("planner-ecu"))

    client_process.spawn("setup", setup())
    world.run_for(5 * SEC)
    return planner, client_env


def main():
    planner, env = run(seed=0)
    origin = env.scheduler.start_time
    print("Planner log (logical tags relative to planner start):")
    for kind, tag, value in planner.log:
        relative = tag.time - origin
        print(f"  {format_duration(relative):>8}  {kind:<11} {value}")

    fingerprints = {run(seed)[1].trace.fingerprint() for seed in range(3)}
    print("\nSeeds vary thread scheduling order and network latencies;")
    print(f"logical trace identical across 3 seeds: {len(fingerprints) == 1}")


if __name__ == "__main__":
    main()
