"""LET tasks and channels."""

from __future__ import annotations

from typing import Any, Callable


class LetChannel:
    """A single-value register connecting LET tasks.

    Values become visible exactly at publish instants (period
    boundaries); readers sample whatever was last published.  Carries an
    optional history of ``(publish_time, value)`` for analysis.
    """

    def __init__(self, name: str, initial: Any = None, keep_history: bool = False):
        self.name = name
        self.value = initial
        self.keep_history = keep_history
        self.history: list[tuple[int, Any]] = []
        self.publish_count = 0

    def publish(self, time_ns: int, value: Any) -> None:
        """Install *value* at *time_ns* (called by the executor)."""
        self.value = value
        self.publish_count += 1
        if self.keep_history:
            self.history.append((time_ns, value))

    def read(self) -> Any:
        """Sample the current value (called at task release)."""
        return self.value

    def __repr__(self) -> str:
        return f"LetChannel({self.name!r}, publishes={self.publish_count})"


class LetTask:
    """One periodic LET task.

    The *body* receives a dict of sampled input values (one entry per
    name in *reads*) and returns a dict of outputs (one entry per name
    in *writes*); missing outputs leave the channel unchanged.  Inputs
    are sampled exactly at release, outputs published exactly one period
    later — the logical execution time.

    ``wcet_ns`` models the physical compute cost on the platform; if the
    computation has not finished by the end of the window the publish is
    skipped and counted in :attr:`overruns` (a LET fault).
    """

    def __init__(
        self,
        name: str,
        period_ns: int,
        body: Callable[[dict[str, Any]], dict[str, Any] | None],
        reads: dict[str, LetChannel] | None = None,
        writes: dict[str, LetChannel] | None = None,
        offset_ns: int = 0,
        wcet_ns: int = 0,
    ) -> None:
        if period_ns <= 0:
            raise ValueError("period must be positive")
        if offset_ns < 0 or wcet_ns < 0:
            raise ValueError("offset and wcet must be non-negative")
        self.name = name
        self.period_ns = period_ns
        self.offset_ns = offset_ns
        self.wcet_ns = wcet_ns
        self.body = body
        self.reads = dict(reads or {})
        self.writes = dict(writes or {})
        self.releases = 0
        self.completions = 0
        self.overruns = 0

    def __repr__(self) -> str:
        return (
            f"LetTask({self.name!r}, period={self.period_ns}, "
            f"releases={self.releases})"
        )
