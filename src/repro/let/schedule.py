"""The LET executor.

Release and publish happen at *exact* logical instants implemented as
kernel events (a real LET OS layer anchors them to timer interrupts
with bounded jitter; the determinism argument requires only that reads
and publishes happen in the right order at the boundaries, which the
kernel event priorities guarantee here):

* at ``offset + k * period`` the task's inputs are sampled and the body
  is dispatched onto a worker thread that consumes ``wcet`` of CPU;
* at ``offset + (k + 1) * period`` the outputs are published — if and
  only if the computation finished in time; otherwise the instance is
  an overrun and publishes nothing.

Publishes are ordered before reads at the same instant, so a task chain
with equal periods has exactly one period of latency per hop.
"""

from __future__ import annotations

from typing import Any

from repro.sim.core import PRIORITY_EARLY, PRIORITY_NORMAL
from repro.sim.platform import Platform
from repro.sim.process import Compute
from repro.let.task import LetTask


class LetExecutor:
    """Runs a set of LET tasks on one platform."""

    def __init__(self, platform: Platform) -> None:
        self.platform = platform
        self.tasks: list[LetTask] = []
        self._started = False

    def add_task(self, task: LetTask) -> None:
        """Register *task* (before :meth:`start`)."""
        if self._started:
            raise RuntimeError("cannot add tasks after start")
        self.tasks.append(task)

    def start(self, horizon_ns: int) -> None:
        """Schedule all task instances with releases before *horizon_ns*.

        Times are global simulation times; the executor anchors at the
        current instant.
        """
        self._started = True
        base = self.platform.sim.now
        for task in self.tasks:
            release = base + task.offset_ns
            while release < base + horizon_ns:
                self._schedule_instance(task, release)
                release += task.period_ns

    def _schedule_instance(self, task: LetTask, release_ns: int) -> None:
        sim = self.platform.sim
        instance: dict[str, Any] = {"done": False, "outputs": None}

        def on_release() -> None:
            task.releases += 1
            inputs = {name: channel.read() for name, channel in task.reads.items()}
            self.platform.spawn(
                f"let.{task.name}.{release_ns}", body_thread(inputs)
            )

        def body_thread(inputs):
            if task.wcet_ns > 0:
                yield Compute(task.wcet_ns)
            instance["outputs"] = task.body(inputs) or {}
            instance["done"] = True

        def on_publish() -> None:
            if not instance["done"]:
                task.overruns += 1
                return
            task.completions += 1
            outputs = instance["outputs"]
            for name, channel in task.writes.items():
                if name in outputs:
                    channel.publish(sim.now, outputs[name])

        # Reads at NORMAL priority see publishes (EARLY) of the same instant.
        sim.at(release_ns, on_release, priority=PRIORITY_NORMAL)
        sim.at(release_ns + task.period_ns, on_publish, priority=PRIORITY_EARLY)

    def __repr__(self) -> str:
        return f"LetExecutor(tasks={[task.name for task in self.tasks]})"
