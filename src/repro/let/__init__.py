"""A logical-execution-time (LET) baseline.

The paper's related work (Section V) contrasts reactors with the LET
paradigm used for deterministic execution in AUTOSAR CP: LET tasks read
their inputs exactly at release and publish their outputs exactly at
the end of their period, regardless of when the computation actually
ran in between.  That makes dataflow deterministic, but logical time is
rigidly quantized to task periods — every pipeline hop costs a full
period of end-to-end latency, whereas reactions are logically
instantaneous and deadlines bound latency much more tightly.

This package implements LET tasks over the simulated platform so the
benchmark suite can measure that latency difference on the paper's
brake-assistant pipeline.
"""

from repro.let.task import LetChannel, LetTask
from repro.let.schedule import LetExecutor

__all__ = ["LetChannel", "LetTask", "LetExecutor"]
