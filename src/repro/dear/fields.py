"""Field transactors.

"Since fields are composed of a get method, a set method and an event,
interaction with fields requires the use of one event and two method
transactors" (Section III.B).  These classes do that composition.

On the server side a small deterministic holder reactor implements the
field semantics (current value, get/set, change notification) inside
the reactor network, so field state participates in the deterministic
world instead of living in racy skeleton state.
"""

from __future__ import annotations

from typing import Any

from repro.ara.proxy import ServiceProxy
from repro.ara.skeleton import ServiceSkeleton
from repro.dear.event_client import ClientEventTransactor
from repro.dear.event_server import ServerEventTransactor
from repro.dear.method_client import ClientMethodTransactor
from repro.dear.method_server import MethodCall, MethodReturn, ServerMethodTransactor
from repro.dear.stp import TransactorConfig
from repro.errors import DearError
from repro.reactors.base import Reactor
from repro.reactors.environment import Environment


class ClientFieldTransactors:
    """Client-side bundle: get/set method transactors + notifier event."""

    def __init__(
        self,
        name: str,
        owner: Environment | Reactor,
        process,
        proxy: ServiceProxy,
        field_name: str,
        config: TransactorConfig,
    ) -> None:
        elements = proxy.interface.field_elements(field_name)
        self.field_name = field_name
        self.get: ClientMethodTransactor | None = None
        self.set: ClientMethodTransactor | None = None
        self.changed: ClientEventTransactor | None = None
        if elements["get"] is not None:
            self.get = ClientMethodTransactor(
                f"{name}_get", owner, process, proxy, elements["get"].name, config
            )
        if elements["set"] is not None:
            self.set = ClientMethodTransactor(
                f"{name}_set", owner, process, proxy, elements["set"].name, config
            )
        if elements["notify"] is not None:
            self.changed = ClientEventTransactor(
                f"{name}_changed", owner, process, proxy,
                elements["notify"].name, config,
            )


class _FieldHolder(Reactor):
    """Deterministic server-side field state."""

    def __init__(self, name: str, owner, initial: Any) -> None:
        super().__init__(name, owner)
        self.value = initial
        self.get_in = self.input("get_in")
        self.get_out = self.output("get_out")
        self.set_in = self.input("set_in")
        self.set_out = self.output("set_out")
        self.notify_out = self.output("notify_out")
        self.reaction(
            "on_get",
            triggers=[self.get_in],
            effects=[self.get_out],
            body=self._on_get,
        )
        self.reaction(
            "on_set",
            triggers=[self.set_in],
            effects=[self.set_out, self.notify_out],
            body=self._on_set,
        )

    def _on_get(self, ctx) -> None:
        call: MethodCall = ctx.get(self.get_in)
        ctx.set(self.get_out, MethodReturn(call.call_id, self.value))

    def _on_set(self, ctx) -> None:
        call: MethodCall = ctx.get(self.set_in)
        self.value = call.arguments
        ctx.set(self.set_out, MethodReturn(call.call_id, self.value))
        ctx.set(self.notify_out, self.value)


class ServerFieldTransactors:
    """Server-side bundle: transactors + a deterministic field holder."""

    def __init__(
        self,
        name: str,
        owner: Environment | Reactor,
        process,
        skeleton: ServiceSkeleton,
        field_name: str,
        config: TransactorConfig,
        initial: Any = None,
    ) -> None:
        interface = skeleton.interface
        elements = interface.field_elements(field_name)
        self.field_name = field_name
        environment = (
            owner if isinstance(owner, Environment) else owner.environment
        )
        self.holder = _FieldHolder(f"{name}_holder", owner, initial)
        self.get: ServerMethodTransactor | None = None
        self.set: ServerMethodTransactor | None = None
        self.changed: ServerEventTransactor | None = None
        if elements["get"] is not None:
            self.get = ServerMethodTransactor(
                f"{name}_get", owner, process, skeleton,
                elements["get"].name, config,
            )
            environment.connect(self.get.request_out, self.holder.get_in)
            environment.connect(self.holder.get_out, self.get.response_in)
        if elements["set"] is not None:
            if elements["get"] is None:
                raise DearError(
                    f"field {field_name!r}: a setter without a getter is "
                    f"not supported by the server field transactor"
                )
            self.set = ServerMethodTransactor(
                f"{name}_set", owner, process, skeleton,
                elements["set"].name, config,
            )
            environment.connect(self.set.request_out, self.holder.set_in)
            environment.connect(self.holder.set_out, self.set.response_in)
        if elements["notify"] is not None:
            self.changed = ServerEventTransactor(
                f"{name}_changed", owner, process, skeleton,
                elements["notify"].name, config,
            )
            environment.connect(self.holder.notify_out, self.changed.inp)

    @property
    def value(self) -> Any:
        """Current field value held by the deterministic holder."""
        return self.holder.value
