"""Transactor generation from service interfaces.

"Given a service interface, the transactors required for interacting
via this particular interface can be automatically generated"
(Section III.B).  These helpers are that generator: they walk a
:class:`~repro.ara.interface.ServiceInterface` and instantiate the
complete transactor set for the client or the server role, grouping the
expanded field elements back into field bundles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ara.proxy import ServiceProxy
from repro.ara.skeleton import ServiceSkeleton
from repro.dear.event_client import ClientEventTransactor
from repro.dear.event_server import ServerEventTransactor
from repro.dear.fields import ClientFieldTransactors, ServerFieldTransactors
from repro.dear.method_client import ClientMethodTransactor
from repro.dear.method_server import ServerMethodTransactor
from repro.dear.stp import TransactorConfig
from repro.reactors.base import Reactor
from repro.reactors.environment import Environment


def _field_element_names(interface) -> set[str]:
    names: set[str] = set()
    for field_def in interface.fields:
        for element in interface.field_elements(field_def.name).values():
            if element is not None:
                names.add(element.name)
    return names


@dataclass
class ClientBinding:
    """All client-side transactors for one service interface."""

    methods: dict[str, ClientMethodTransactor] = field(default_factory=dict)
    events: dict[str, ClientEventTransactor] = field(default_factory=dict)
    fields: dict[str, ClientFieldTransactors] = field(default_factory=dict)


@dataclass
class ServerBinding:
    """All server-side transactors for one service interface."""

    methods: dict[str, ServerMethodTransactor] = field(default_factory=dict)
    events: dict[str, ServerEventTransactor] = field(default_factory=dict)
    fields: dict[str, ServerFieldTransactors] = field(default_factory=dict)


def generate_client_transactors(
    owner: Environment | Reactor,
    process,
    proxy: ServiceProxy,
    config: TransactorConfig,
    prefix: str = "",
) -> ClientBinding:
    """Instantiate client transactors for every interface element."""
    interface = proxy.interface
    binding = ClientBinding()
    skip = _field_element_names(interface)
    for method in interface.methods:
        if method.name in skip:
            continue
        binding.methods[method.name] = ClientMethodTransactor(
            f"{prefix}{method.name}_cmt", owner, process, proxy, method.name, config
        )
    for event in interface.events:
        if event.name in skip:
            continue
        binding.events[event.name] = ClientEventTransactor(
            f"{prefix}{event.name}_cet", owner, process, proxy, event.name, config
        )
    for field_def in interface.fields:
        binding.fields[field_def.name] = ClientFieldTransactors(
            f"{prefix}{field_def.name}_cft", owner, process, proxy,
            field_def.name, config,
        )
    return binding


def generate_server_transactors(
    owner: Environment | Reactor,
    process,
    skeleton: ServiceSkeleton,
    config: TransactorConfig,
    prefix: str = "",
    field_initials: dict[str, object] | None = None,
) -> ServerBinding:
    """Instantiate server transactors for every interface element."""
    interface = skeleton.interface
    binding = ServerBinding()
    skip = _field_element_names(interface)
    initials = field_initials or {}
    for method in interface.methods:
        if method.name in skip:
            continue
        binding.methods[method.name] = ServerMethodTransactor(
            f"{prefix}{method.name}_smt", owner, process, skeleton,
            method.name, config,
        )
    for event in interface.events:
        if event.name in skip:
            continue
        binding.events[event.name] = ServerEventTransactor(
            f"{prefix}{event.name}_set", owner, process, skeleton,
            event.name, config,
        )
    for field_def in interface.fields:
        binding.fields[field_def.name] = ServerFieldTransactors(
            f"{prefix}{field_def.name}_sft", owner, process, skeleton,
            field_def.name, config, initial=initials.get(field_def.name),
        )
    return binding
