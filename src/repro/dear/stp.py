"""Safe-to-process configuration.

The PTIDES-style analysis the paper leverages (Section III.A) needs
three bounds:

* ``D`` — the deadline of the sending transactor's reaction: an upper
  bound on how far physical time may lag the tag when the message is
  handed to the middleware;
* ``L`` — the worst-case network latency;
* ``E`` — the bound on the clock synchronization error between the
  platforms involved.

A message carrying tag ``t`` (already including the sender's ``D``) is
then safe to process once the receiver schedules it at ``t + L + E`` —
by that local time, no message with a smaller tag can still arrive.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.time.duration import MS
from repro.time.tag import Tag


class UntaggedPolicy(enum.Enum):
    """What a transactor does with a message that carries no tag.

    ``FAIL`` is the paper's default: receiving an untagged message from a
    non-DEAR peer is an error.  ``PHYSICAL_TIME`` enables the backward-
    compatibility mode: the message is treated like a sporadic sensor
    input and tagged with its physical arrival time.
    """

    FAIL = "fail"
    PHYSICAL_TIME = "physical-time"


class LatePolicy(enum.Enum):
    """Graceful degradation when STP detects an ``L``-bound violation.

    A message whose release tag ``t + L + E`` is already in the past
    violated the network assumptions (e.g. an injected partition longer
    than ``L``).  The violation is always counted and trace-recorded;
    the policy selects what happens to the message itself:

    * ``PROCESS`` — the paper's behaviour (and the default): re-tag to
      the current tag and process anyway.  Deterministic ordering is
      lost, but the loss is *flagged*, never silent;
    * ``DROP`` — discard the late message; downstream sees a gap;
    * ``LAST_KNOWN`` — deliver the last in-bound value again in its
      place (sensor-style freshness fallback); drops if none arrived yet;
    * ``FAULT_SIGNAL`` — deliver a :class:`DeadlineFault` wrapping the
      late value, so the consumer can run an explicit degraded mode.
    """

    PROCESS = "process"
    DROP = "drop"
    LAST_KNOWN = "last-known"
    FAULT_SIGNAL = "fault-signal"


@dataclass(frozen=True, slots=True)
class DeadlineFault:
    """In-band signal of an ``L``-bound violation (``FAULT_SIGNAL`` policy).

    Delivered *instead of* the late payload; ``value`` carries the
    original payload and ``tag`` its original (violated) tag.
    """

    tag: Tag | None
    value: Any


@dataclass(frozen=True, slots=True)
class StpConfig:
    """Network-level bounds shared by all transactors of a deployment."""

    latency_bound_ns: int = 5 * MS
    clock_error_ns: int = 0

    def __post_init__(self) -> None:
        if self.latency_bound_ns < 0 or self.clock_error_ns < 0:
            raise ValueError("bounds must be non-negative")

    @property
    def release_delay_ns(self) -> int:
        """``L + E``: added to a received tag before processing."""
        return self.latency_bound_ns + self.clock_error_ns

    def stp_wait_ns(self, release_time_ns: int, physical_now_ns: int) -> int:
        """How long a message released at *release_time_ns* must still wait.

        The safe-to-process wait is the gap between the receiver's
        physical clock and the release time ``t + L + E``; a message
        already past its release time waits zero (it is processed at the
        next opportunity — possibly as a counted STP violation).
        """
        return max(release_time_ns - physical_now_ns, 0)


@dataclass(frozen=True, slots=True)
class TransactorConfig:
    """Per-transactor parameters.

    Attributes:
        deadline_ns: the transactor's sending deadline ``D``.
        stp: the deployment's network bounds.
        untagged: policy for untagged incoming messages.
        drop_on_deadline_miss: when the sending deadline is violated, drop
            the message (the violation stays an observable, counted
            error).  With ``False`` the message is still sent, tagged
            from physical time — deliberately trading determinism for
            liveness, as Section IV.B discusses.
        late_policy: what to do with a message whose safe-to-process
            release time already passed (see :class:`LatePolicy`).
    """

    deadline_ns: int = 5 * MS
    stp: StpConfig = StpConfig()
    untagged: UntaggedPolicy = UntaggedPolicy.FAIL
    drop_on_deadline_miss: bool = True
    late_policy: LatePolicy = LatePolicy.PROCESS

    def __post_init__(self) -> None:
        if self.deadline_ns < 0:
            raise ValueError("deadline must be non-negative")
