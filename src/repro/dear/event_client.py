"""The client event transactor (subscriber side).

Subscribes to an AP event and forwards each notification into the
reactor network at its safe-to-process tag.  With the
``PHYSICAL_TIME`` untagged policy it doubles as the paper's
backward-compatibility mechanism: notifications from non-DEAR
publishers are treated like sporadic sensor readings and tagged with
their physical arrival time.
"""

from __future__ import annotations

from repro.ara.proxy import ServiceProxy, unwrap_payload
from repro.dear.stp import TransactorConfig
from repro.dear.transactor import Transactor
from repro.reactors.base import Reactor
from repro.reactors.environment import Environment
from repro.time.tag import Tag


class ClientEventTransactor(Transactor):
    """Receives one AP event for the reactor network."""

    def __init__(
        self,
        name: str,
        owner: Environment | Reactor,
        process,
        proxy: ServiceProxy,
        event_name: str,
        config: TransactorConfig,
    ) -> None:
        super().__init__(name, owner, process, config)
        self.proxy = proxy
        self.event = proxy.interface.event(event_name)
        #: Event data appears here, in tag order.
        self.out = self.output("out")
        self._arrival_action = self.physical_action("event_arrival")
        self._data_names = [name for name, _ in self.event.data]
        self.received = 0
        proxy.subscribe_raw(event_name, self._on_notification)
        self.reaction(
            "deliver",
            triggers=[self._arrival_action],
            effects=[self.out],
            body=self._deliver_event,
        )

    def _on_notification(self, data: dict, tag: Tag | None) -> None:
        """Kernel context: one notification from the modified binding."""
        # Drain the RX bypass (the binding deposited the same tag there).
        bypass_tag = self.process.endpoint.rx_bypass.collect()
        if tag is None:
            tag = bypass_tag
        self.received += 1
        value = unwrap_payload(self._data_names, data)
        self._deliver(self._arrival_action, value, tag)

    def _deliver_event(self, ctx) -> None:
        ctx.set(self.out, ctx.get(self._arrival_action))
