"""The client method transactor (Figure 3, left).

Bridges a reactor-side method invocation onto a regular service proxy:

* an event with tag ``tc`` on the ``request`` input port triggers the
  sending reaction (deadline ``Dc``), which deposits ``tc + Dc`` in the
  TX timestamp bypass (step 2) and invokes the proxy method (step 3);
* when the response arrives, the modified binding deposits its tag into
  the RX bypass (step 18); the transactor's completion hook collects it
  (step 21) and schedules the arrival action at ``ts + Ds + L + E``
  (step 20 with the safe-to-process offset), whose reaction finally
  produces the result on the ``response`` output port (step 22).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.ara.proxy import ServiceProxy, wrap_payload
from repro.dear.stp import TransactorConfig
from repro.dear.transactor import Transactor
from repro.reactors.base import Reactor
from repro.reactors.environment import Environment


@dataclass(frozen=True, slots=True)
class MethodReply:
    """The value delivered on the ``response`` port."""

    value: Any = None
    error: BaseException | None = None

    @property
    def ok(self) -> bool:
        """Whether the call succeeded."""
        return self.error is None


class ClientMethodTransactor(Transactor):
    """Interacts with one method of a service interface, as a client."""

    def __init__(
        self,
        name: str,
        owner: Environment | Reactor,
        process,
        proxy: ServiceProxy,
        method_name: str,
        config: TransactorConfig,
    ) -> None:
        super().__init__(name, owner, process, config)
        self.proxy = proxy
        self.method = proxy.interface.method(method_name)
        #: Reactor-side call trigger: set this port to invoke the method.
        self.request = self.input("request")
        #: Reactor-side result: a :class:`MethodReply` appears here.
        self.response = self.output("response")
        self._reply_action = self.physical_action("reply_arrival")
        self.reaction(
            "send",
            triggers=[self.request],
            body=self._send_body,
            deadline=self._sending_deadline(),
        )
        self.reaction(
            "deliver",
            triggers=[self._reply_action],
            effects=[self.response],
            body=self._deliver_reply,
        )

    # -- sending (reactor -> middleware) ------------------------------------

    def _send_body(self, ctx, late: bool = False) -> None:
        tag_out = self._outgoing_tag(ctx, late)
        arguments = wrap_payload(
            self.method.argument_names,
            self.request.get(),
            f"method {self.method.name!r}",
        )
        # Step (2): tag into the bypass; steps (3)-(5): the proxy call,
        # during which the modified binding collects and attaches the tag.
        self.process.endpoint.tx_bypass.deposit(tag_out)
        future = self.proxy.call(self.method.name, **arguments)
        if not self.method.fire_and_forget:
            # Fire-and-forget methods have no response message, hence no
            # arrival event; everything else loops back via _on_reply.
            future.then(self._on_reply)

    # -- receiving (middleware -> reactor) -------------------------------------

    def _on_reply(self, future) -> None:
        """Kernel context, synchronously after the binding's RX deposit."""
        tag = self.process.endpoint.rx_bypass.collect()  # step (21)
        try:
            reply = MethodReply(value=future.result())
        except BaseException as error:  # noqa: BLE001 - forwarded, not hidden
            reply = MethodReply(error=error)
        self._deliver(self._reply_action, reply, tag)

    def _deliver_reply(self, ctx) -> None:
        ctx.set(self.response, ctx.get(self._reply_action))
