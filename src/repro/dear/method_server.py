"""The server method transactor (Figure 3, right).

Bridges incoming method invocations into the server's reactor network:

* the modified binding extracts the tag of an incoming request and
  deposits it in the RX bypass (step 7); the transactor's interceptor
  (the "interrupt" of step 9) collects it (step 10) and schedules the
  arrival action at ``tc + Dc + L + E``;
* the arrival reaction forwards a :class:`MethodCall` on the
  ``request_out`` port to the server-logic reactor (step 11);
* the logic eventually produces a reply on the ``response_in`` port
  (step 12); the sending reaction (deadline ``Ds``) deposits
  ``ts + Ds`` in the TX bypass and returns the value through the
  skeleton (steps 13-17).

Several transactors can serve methods of the same skeleton; a shared
router installed as the skeleton's request interceptor dispatches by
method id (methods without a transactor fall through to the skeleton's
normal processing mode).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.ara.proxy import unwrap_payload, wrap_payload
from repro.ara.skeleton import ServiceSkeleton
from repro.dear.stp import TransactorConfig
from repro.dear.transactor import Transactor
from repro.errors import DearError
from repro.reactors.base import Reactor
from repro.reactors.environment import Environment
from repro.someip.runtime import IncomingRequest


@dataclass(frozen=True, slots=True)
class MethodCall:
    """The value forwarded to the server logic for one invocation."""

    call_id: int
    arguments: Any


@dataclass(frozen=True, slots=True)
class MethodReturn:
    """Optional explicit-correlation reply value for ``response_in``.

    Plain (non-``MethodReturn``) values on ``response_in`` reply to the
    oldest outstanding call (FIFO correlation).
    """

    call_id: int
    value: Any = None


class _DearRequestRouter:
    """Routes intercepted skeleton requests to per-method transactors."""

    def __init__(self, skeleton: ServiceSkeleton) -> None:
        self._by_method_id: dict[int, "ServerMethodTransactor"] = {}
        skeleton.intercept_requests(self)

    def register(self, method_id: int, transactor: "ServerMethodTransactor") -> None:
        if method_id in self._by_method_id:
            raise DearError(
                f"method id 0x{method_id:04x} already has a transactor"
            )
        self._by_method_id[method_id] = transactor

    def __call__(self, request: IncomingRequest) -> bool:
        transactor = self._by_method_id.get(request.header.method_id)
        if transactor is None:
            return False
        transactor._on_request(request)
        return True


def _router_for(skeleton: ServiceSkeleton) -> _DearRequestRouter:
    router = getattr(skeleton, "_dear_router", None)
    if router is None:
        router = _DearRequestRouter(skeleton)
        skeleton._dear_router = router
    return router


class ServerMethodTransactor(Transactor):
    """Interacts with one method of a service interface, as the server."""

    def __init__(
        self,
        name: str,
        owner: Environment | Reactor,
        process,
        skeleton: ServiceSkeleton,
        method_name: str,
        config: TransactorConfig,
    ) -> None:
        super().__init__(name, owner, process, config)
        self.skeleton = skeleton
        self.method = skeleton.interface.method(method_name)
        #: Forwards :class:`MethodCall` values to the server logic.
        self.request_out = self.output("request_out")
        #: The server logic's replies enter here.
        self.response_in = self.input("response_in")
        self._arrival_action = self.physical_action("request_arrival")
        self._pending: dict[int, IncomingRequest] = {}
        self._pending_order: list[int] = []
        self._next_call_id = 1
        _router_for(skeleton).register(self.method.method_id, self)
        self.reaction(
            "forward",
            triggers=[self._arrival_action],
            effects=[self.request_out],
            body=self._forward,
        )
        self.reaction(
            "reply",
            triggers=[self.response_in],
            body=self._send_body,
            deadline=self._sending_deadline(),
        )

    # -- receiving (middleware -> reactor) ------------------------------------

    def _on_request(self, request: IncomingRequest) -> None:
        """Kernel context: the 'interrupt' of Figure 3, step (9)."""
        bypass_tag = self.process.endpoint.rx_bypass.collect()  # step (10)
        tag = request.tag if request.tag is not None else bypass_tag
        arguments = unwrap_payload(
            self.method.argument_names,
            self.method.request_spec.from_bytes(request.payload),
        )
        call_id = self._next_call_id
        self._next_call_id += 1
        if not request.fire_and_forget:
            # Fire-and-forget calls expect no reply, so nothing to track.
            self._pending[call_id] = request
            self._pending_order.append(call_id)
        self._deliver(self._arrival_action, MethodCall(call_id, arguments), tag)

    def _forward(self, ctx) -> None:
        ctx.set(self.request_out, ctx.get(self._arrival_action))

    # -- sending the reply (reactor -> middleware) ---------------------------------

    def _send_body(self, ctx, late: bool = False) -> None:
        value = self.response_in.get()
        if isinstance(value, MethodReturn):
            call_id, result = value.call_id, value.value
        else:
            if not self._pending_order:
                raise DearError(
                    f"{self.fqn}: reply produced with no outstanding call"
                )
            call_id, result = self._pending_order[0], value
        request = self._pending.pop(call_id, None)
        if request is None:
            raise DearError(f"{self.fqn}: unknown call id {call_id}")
        self._pending_order.remove(call_id)
        tag_out = self._outgoing_tag(ctx, late)
        payload = self.method.response_spec.to_bytes(
            wrap_payload(
                self.method.return_names, result, f"method {self.method.name!r}"
            )
        )
        # Steps (13)-(17): tag via the bypass path (reply carries it
        # explicitly through the binding), response over the network.
        request.reply(payload, tag=tag_out)

    @property
    def outstanding_calls(self) -> int:
        """Invocations forwarded to the logic but not yet replied to."""
        return len(self._pending)
