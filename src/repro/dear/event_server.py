"""The server event transactor (publisher side).

Takes values from the reactor network on its ``inp`` port and publishes
them as AP event notifications, tagged ``t + D`` (via the timestamp
bypass and the modified binding).
"""

from __future__ import annotations

from repro.ara.skeleton import ServiceSkeleton
from repro.dear.stp import TransactorConfig
from repro.dear.transactor import Transactor
from repro.reactors.base import Reactor
from repro.reactors.environment import Environment


class ServerEventTransactor(Transactor):
    """Publishes one AP event from the reactor network."""

    def __init__(
        self,
        name: str,
        owner: Environment | Reactor,
        process,
        skeleton: ServiceSkeleton,
        event_name: str,
        config: TransactorConfig,
    ) -> None:
        super().__init__(name, owner, process, config)
        self.skeleton = skeleton
        self.event = skeleton.interface.event(event_name)
        #: Values set here are published to all subscribers.
        self.inp = self.input("inp")
        self.published = 0
        self.reaction(
            "send",
            triggers=[self.inp],
            body=self._send_body,
            deadline=self._sending_deadline(),
        )

    def _send_body(self, ctx, late: bool = False) -> None:
        tag_out = self._outgoing_tag(ctx, late)
        self.published += 1
        self.skeleton.send_event(self.event.name, self.inp.get(), tag=tag_out)
