"""Base class shared by the four DEAR transactors.

A transactor is an ordinary reactor (Section III.B) that bridges one
element of a service interface.  The base class centralizes the pieces
they all need:

* access to the owning :class:`~repro.ara.process.AraProcess`, whose
  endpoint must be *tag-aware* (the modified SOME/IP binding);
* the arrival path: turning a received ``(payload, tag)`` into a
  reactor event at ``tag + L + E`` (or applying the untagged policy);
* the departure path: computing the outgoing tag ``t + D`` and running
  the sending reaction under its deadline;
* error accounting — every violated assumption is an *observable*,
  counted error, never silent misbehaviour.
"""

from __future__ import annotations

from typing import Any

from repro.errors import DearError, UntaggedMessageError
from repro.ara.process import AraProcess
from repro.obs import context as obs_context
from repro.obs.bus import TRACK_DEAR
from repro.obs.flows import (
    CAUSE_DEADLINE,
    CAUSE_LATE,
    LAYER_DEAR,
    attribute_drop,
    flow_id_of,
)
from repro.reactors.action import PhysicalAction
from repro.reactors.base import Reactor
from repro.reactors.environment import Environment
from repro.reactors.reaction import Deadline
from repro.dear.stp import DeadlineFault, LatePolicy, TransactorConfig, UntaggedPolicy
from repro.time.tag import Tag

#: Sentinel: no in-bound value received yet (LAST_KNOWN policy).
_NO_VALUE = object()


class Transactor(Reactor):
    """Common machinery for DEAR transactors."""

    def __init__(
        self,
        name: str,
        owner: Environment | Reactor,
        process: AraProcess,
        config: TransactorConfig,
    ) -> None:
        super().__init__(name, owner)
        if not process.endpoint.tag_aware:
            raise DearError(
                f"transactor {name!r} needs a tag-aware endpoint; create "
                f"the AraProcess with tag_aware=True"
            )
        self.process = process
        self.config = config
        #: Messages received with a tag that was no longer safe to process
        #: (latency/clock assumptions violated).
        self.stp_violations = 0
        #: Messages dropped (or force-tagged) due to a sending deadline miss.
        self.deadline_misses = 0
        #: Untagged messages rejected under the FAIL policy.
        self.untagged_rejected = 0
        #: Late messages discarded / replaced under a non-PROCESS policy.
        self.late_handled = 0
        self._last_in_bound: Any = _NO_VALUE

    # -- arrival path -----------------------------------------------------------

    def _arrival_tag(self, tag: Tag | None) -> Tag | None:
        """Compute the safe-to-process tag for a received message.

        Returns ``None`` when the message must be handled by the
        untagged policy instead (caller dispatches accordingly).
        """
        if tag is None:
            return None
        return Tag(tag.time + self.config.stp.release_delay_ns, tag.microstep)

    def _deliver(self, action: PhysicalAction, value: Any, tag: Tag | None) -> None:
        """Kernel context: inject a received message into the program.

        Tagged messages are inserted at ``tag + L + E``; the scheduler's
        wait-until-physical-time rule supplies the safe-to-process delay.
        Untagged messages either fail (default) or fall back to
        physical-time tagging, which treats them like sporadic sensor
        input (the paper's backward-compatibility mode).
        """
        arrival = self._arrival_tag(tag)
        o = obs_context.ACTIVE
        if arrival is None:
            if self.config.untagged is UntaggedPolicy.FAIL:
                self.untagged_rejected += 1
                if o.enabled:
                    o.metrics.counter("dear.untagged_rejected").inc()
                raise UntaggedMessageError(
                    f"transactor {self.fqn} received an untagged message"
                )
            if o.enabled:
                o.metrics.counter("dear.untagged_fallback").inc()
            action.schedule(value)
            return
        if o.enabled:
            scheduler = self.environment.scheduler
            now = scheduler._obs_now()
            wait = self.config.stp.stp_wait_ns(
                arrival.time, scheduler.physical_time()
            )
            o.metrics.counter("dear.messages_delivered").inc()
            o.metrics.histogram("dear.stp_wait_ns").observe(wait)
            o.bus.span(
                TRACK_DEAR,
                f"stp-wait {self.fqn}",
                now,
                now + wait,
                o.wall_ns(),
                release_time=arrival.time,
            )
            flows = o.flows
            if flows is not None and flows.current is not None:
                # Still on the NIC-deliver kernel chain: the frame's flow
                # is current.  The hop timestamp is ingress; the STP wait
                # until ``arrival`` shows up in the dear->reactor segment.
                flows.hop(flows.current, LAYER_DEAR, f"ingress {self.fqn}", now)
        scheduler = self.environment.scheduler
        policy = self.config.late_policy
        if policy is not LatePolicy.PROCESS and arrival <= scheduler.current_tag:
            # Same lateness condition schedule_at_tag would apply; the
            # graceful-degradation policies intercept before scheduling.
            self._handle_late(action, value, tag, arrival)
            return
        _tag, late = scheduler.schedule_at_tag(action, value, arrival)
        if late:
            self.stp_violations += 1
            self.environment.trace.record(
                self.environment.scheduler.current_tag, "stp-violation", self.fqn
            )
            if o.enabled:
                o.metrics.counter("dear.stp_violations").inc()
                o.bus.instant(
                    TRACK_DEAR,
                    f"stp-violation {self.fqn}",
                    self.environment.scheduler._obs_now(),
                    o.wall_ns(),
                )
        elif policy is LatePolicy.LAST_KNOWN:
            self._last_in_bound = value

    def _handle_late(
        self, action: PhysicalAction, value: Any, tag: Tag | None, arrival: Tag
    ) -> None:
        """Apply the configured non-PROCESS late-message policy.

        Always counts the STP violation (the bound *was* broken); what
        changes per policy is the fate of the payload.  Every branch
        leaves a policy-specific record in the environment trace, so a
        degradation decision is part of the run's fingerprint — explicit
        fault handling, never silent nondeterminism.
        """
        scheduler = self.environment.scheduler
        current = scheduler.current_tag
        self.stp_violations += 1
        self.late_handled += 1
        self.environment.trace.record(current, "stp-violation", self.fqn)
        policy = self.config.late_policy
        o = obs_context.ACTIVE
        if o.enabled:
            o.metrics.counter("dear.stp_violations").inc()
            o.metrics.counter(f"dear.late_{policy.value}").inc()
            o.bus.instant(
                TRACK_DEAR,
                f"stp-violation {self.fqn} ({policy.value})",
                scheduler._obs_now(),
                o.wall_ns(),
            )
        if policy is LatePolicy.DROP:
            self.environment.trace.record(current, "late-dropped", self.fqn)
            if o.enabled:
                attribute_drop(o, LAYER_DEAR, CAUSE_LATE, scheduler._obs_now())
            return
        if policy is LatePolicy.LAST_KNOWN:
            if self._last_in_bound is _NO_VALUE:
                self.environment.trace.record(current, "late-dropped", self.fqn)
                if o.enabled:
                    attribute_drop(o, LAYER_DEAR, CAUSE_LATE, scheduler._obs_now())
                return
            self.environment.trace.record(current, "late-substituted", self.fqn)
            if o.enabled:
                # The late payload itself is discarded (an older value is
                # substituted), so the late frame's flow ends here.
                attribute_drop(o, LAYER_DEAR, CAUSE_LATE, scheduler._obs_now())
            scheduler.schedule_at_tag(action, self._last_in_bound, arrival)
            return
        self.environment.trace.record(current, "deadline-fault", self.fqn)
        scheduler.schedule_at_tag(
            action, DeadlineFault(tag=tag, value=value), arrival
        )

    # -- departure path ------------------------------------------------------------

    def _departure_tag(self, tag: Tag) -> Tag:
        """The tag attached to an outgoing message: ``t + D``."""
        return Tag(tag.time + self.config.deadline_ns, tag.microstep)

    def _sending_deadline(self) -> Deadline:
        """The deadline guarding a sending reaction.

        On violation the handler counts the miss; the message is dropped
        (default) or the subclass's ``_send_late`` fallback runs.
        """
        return Deadline(self.config.deadline_ns, handler=self._on_deadline_miss)

    def _on_deadline_miss(self, ctx) -> None:
        self.deadline_misses += 1
        self.environment.trace.record(ctx.tag, "send-deadline-miss", self.fqn)
        o = obs_context.ACTIVE
        if o.enabled:
            o.metrics.counter("dear.send_deadline_misses").inc()
            o.bus.instant(
                TRACK_DEAR,
                f"send-deadline-miss {self.fqn}",
                self.environment.scheduler._obs_now(),
                o.wall_ns(),
                dropped=self.config.drop_on_deadline_miss,
            )
        if not self.config.drop_on_deadline_miss:
            self._send_body(ctx, late=True)
        elif o.enabled:
            # The outgoing message is dropped; reaction context has no
            # current flow, but the transactor's input port still holds
            # the value that would have been sent — self-correlate.
            flow = None
            inp = getattr(self, "inp", None)
            if inp is not None:
                try:
                    flow = flow_id_of(inp.get())
                except Exception:
                    flow = None
            attribute_drop(
                o,
                LAYER_DEAR,
                CAUSE_DEADLINE,
                self.environment.scheduler._obs_now(),
                flow_id=flow,
            )

    def _outgoing_tag(self, ctx, late: bool) -> Tag:
        """Tag for an outgoing message.

        Normally ``t + D``.  After a deadline miss (``late=True``, only
        reachable with ``drop_on_deadline_miss=False``) the message is
        tagged from current physical time instead, which keeps the
        receiver's safe-to-process reasoning sound at the price of a
        physically-determined (hence nondeterministic) tag — the
        deliberate trade-off of Section IV.B.
        """
        if late:
            return Tag(ctx.physical_time(), 0)
        return self._departure_tag(ctx.tag)

    def _send_body(self, ctx, late: bool = False) -> None:
        """Subclass hook: the actual sending logic."""
        raise NotImplementedError
