"""DEAR — Discrete Events for AUTOSAR (the paper's contribution).

DEAR composes deterministic SWCs out of reactors while keeping the
standard AP service interfaces: special reactors called **transactors**
translate between reactor ports and proxies/skeletons, a **timestamp
bypass** smuggles tags past the standard API into the (modified)
SOME/IP binding, and PTIDES-style **safe-to-process** delays
(``t + D + L + E``) preserve tag-order processing across the network
(Section III of the paper).

The four transactors of Figure 3:

* :class:`~repro.dear.method_client.ClientMethodTransactor`
* :class:`~repro.dear.method_server.ServerMethodTransactor`
* :class:`~repro.dear.event_client.ClientEventTransactor`  (subscriber)
* :class:`~repro.dear.event_server.ServerEventTransactor`  (publisher)

Fields combine one event transactor and two method transactors
(:mod:`repro.dear.fields`), and :mod:`repro.dear.codegen` generates the
full transactor set for a service interface — the paper's "can be
automatically generated" claim.
"""

from repro.dear.stp import (
    DeadlineFault,
    LatePolicy,
    StpConfig,
    TransactorConfig,
    UntaggedPolicy,
)
from repro.dear.transactor import Transactor
from repro.dear.method_client import ClientMethodTransactor, MethodReply
from repro.dear.method_server import MethodCall, MethodReturn, ServerMethodTransactor
from repro.dear.event_client import ClientEventTransactor
from repro.dear.event_server import ServerEventTransactor
from repro.dear.fields import ClientFieldTransactors, ServerFieldTransactors
from repro.dear.codegen import generate_client_transactors, generate_server_transactors

__all__ = [
    "DeadlineFault",
    "LatePolicy",
    "StpConfig",
    "TransactorConfig",
    "UntaggedPolicy",
    "Transactor",
    "ClientMethodTransactor",
    "ServerMethodTransactor",
    "MethodCall",
    "MethodReturn",
    "MethodReply",
    "ClientEventTransactor",
    "ServerEventTransactor",
    "ClientFieldTransactors",
    "ServerFieldTransactors",
    "generate_client_transactors",
    "generate_server_transactors",
]
