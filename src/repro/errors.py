"""Exception hierarchy for the ``repro`` library.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can distinguish library failures from programming errors in user
code.  A few exceptions double as *observable error events* in the sense of
the paper: for instance :class:`DeadlineViolation` is what the reactor
runtime raises (or reports to a handler) when a reaction is invoked after
physical time exceeded ``tag + deadline``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel detected an inconsistency."""


class DeadlockError(SimulationError):
    """No runnable process remains although processes are still blocked."""


class NetworkError(ReproError):
    """A network-substrate failure (unknown address, closed endpoint...)."""


class SomeIpError(ReproError):
    """A SOME/IP protocol failure."""


class MalformedMessageError(SomeIpError):
    """A SOME/IP message could not be parsed."""


class UnknownServiceError(SomeIpError):
    """A message referenced a service that is not offered."""


class SerializationError(SomeIpError):
    """A payload could not be serialized or deserialized."""


class AraError(ReproError):
    """An error in the ARA (Runtime for Adaptive Applications) layer."""


class ServiceNotAvailableError(AraError):
    """``FindService`` could not locate a matching service instance."""


class FutureError(AraError):
    """Misuse of an ``ara.core`` future or promise."""


class ReactorError(ReproError):
    """An error in the reactor runtime."""


class AssemblyError(ReactorError):
    """The reactor program is ill-formed (bad connection, cycle...)."""


class CausalityError(AssemblyError):
    """The reaction graph contains a zero-delay cycle."""


class SchedulingError(ReactorError):
    """An event or action was scheduled in an invalid way."""


class DeadlineViolation(ReactorError):
    """A reaction started after physical time exceeded ``tag + deadline``.

    In the reactor model this is an *observable error* rather than silent
    misbehaviour; the runtime invokes the deadline handler if one is
    registered and raises this exception otherwise.
    """

    def __init__(self, reaction_name: str, lag_ns: int) -> None:
        super().__init__(
            f"deadline violated for reaction {reaction_name!r}: "
            f"physical time lagged the tag by {lag_ns} ns past the deadline"
        )
        self.reaction_name = reaction_name
        self.lag_ns = lag_ns


class DearError(ReproError):
    """An error in the DEAR integration layer."""


class UntaggedMessageError(DearError):
    """A transactor received a message without a tag.

    The paper specifies that the default behaviour of transactors is to
    *fail* when receiving untagged messages, unless explicitly configured
    to fall back to tagging them with the physical arrival time.
    """
