"""Schedulable triggers: timers, logical and physical actions.

*Logical actions* are scheduled by reactions and produce events at
``current tag + max(min_delay + extra_delay, 0)`` (a zero total delay
advances the microstep).  *Physical actions* are scheduled from outside
the reactor program — interrupt handlers, middleware receive paths —
and are tagged with the physical time observed at scheduling, which is
how sporadic inputs enter the deterministic world (Section III.A).

Timers are syntactic sugar for a self-rescheduling logical action.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.reactors.base import Reactor


class TriggerBase:
    """Common bookkeeping for anything that can trigger reactions."""

    def __init__(self, name: str, owner: "Reactor") -> None:
        self.name = name
        self.owner = owner
        self.triggered_reactions: list[Any] = []
        self._value: Any = None
        self._present: bool = False

    @property
    def fqn(self) -> str:
        """Fully qualified name."""
        return f"{self.owner.fqn}.{self.name}"

    @property
    def is_present(self) -> bool:
        """Whether this trigger fired at the current tag."""
        return self._present

    def get(self) -> Any:
        """The value carried by the current event (``None`` if absent)."""
        return self._value

    def _put(self, value: Any) -> None:
        self._value = value
        self._present = True

    def _clear(self) -> None:
        self._value = None
        self._present = False

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.fqn!r})"


class Startup(TriggerBase):
    """Fires exactly once, at the first tag of the execution."""

    def __init__(self, owner: "Reactor") -> None:
        super().__init__("startup", owner)


class Shutdown(TriggerBase):
    """Fires exactly once, at the final tag of the execution."""

    def __init__(self, owner: "Reactor") -> None:
        super().__init__("shutdown", owner)


class Timer(TriggerBase):
    """Fires at ``offset`` and then every ``period`` (if periodic)."""

    def __init__(
        self, name: str, owner: "Reactor", offset: int, period: int | None
    ) -> None:
        super().__init__(name, owner)
        if offset < 0:
            raise ValueError("timer offset must be non-negative")
        if period is not None and period <= 0:
            raise ValueError("timer period must be positive")
        self.offset = offset
        self.period = period


class LogicalAction(TriggerBase):
    """An action scheduled by reactions, in logical time."""

    is_physical = False

    def __init__(self, name: str, owner: "Reactor", min_delay: int = 0) -> None:
        super().__init__(name, owner)
        if min_delay < 0:
            raise ValueError("min_delay must be non-negative")
        self.min_delay = min_delay


class PhysicalAction(TriggerBase):
    """An action scheduled from outside, tagged with physical time."""

    is_physical = True

    def __init__(self, name: str, owner: "Reactor", min_delay: int = 0) -> None:
        super().__init__(name, owner)
        if min_delay < 0:
            raise ValueError("min_delay must be non-negative")
        self.min_delay = min_delay

    def schedule(self, value: Any = None, extra_delay: int = 0) -> "Any":
        """Schedule from outside the reactor program (kernel/thread context).

        The event's tag is ``max(physical_now + min_delay + extra_delay,
        just after the last processed tag)``.  Returns the tag assigned.
        """
        return self.owner.environment.scheduler.schedule_physical(
            self, value, extra_delay
        )
