"""Reactions: the executable units of a reactor.

A reaction declares its *triggers* (events that invoke it), *sources*
(ports it may additionally read) and *effects* (ports it may set and
actions it may schedule).  These declarations are what make the
dependency graph static and the execution deterministic: the scheduler
never has to guess what a reaction might touch.

A reaction may carry a :class:`Deadline`: if physical time exceeds
``tag + deadline`` when the reaction is about to execute, the deadline
*handler* runs instead of the body — a timing fault becomes an
observable error rather than silent misbehaviour (Sections III.A, IV.B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.errors import SchedulingError
from repro.time.tag import Tag

if TYPE_CHECKING:
    from repro.reactors.action import LogicalAction, PhysicalAction
    from repro.reactors.base import Reactor
    from repro.reactors.ports import Port
    from repro.reactors.scheduler import ReactorScheduler


@dataclass(frozen=True)
class Deadline:
    """A physical-time deadline on a reaction.

    *handler(ctx)* is invoked instead of the reaction body when the
    reaction starts more than *duration_ns* of physical time after its
    tag.  If *handler* is ``None``, the runtime raises
    :class:`repro.errors.DeadlineViolation`.
    """

    duration_ns: int
    handler: Callable[["ReactionContext"], None] | None = None

    def __post_init__(self) -> None:
        if self.duration_ns < 0:
            raise ValueError("deadline must be non-negative")


def _flatten_multiports(elements: Sequence[Any]) -> list[Any]:
    """Expand multiports into their channels (order preserved)."""
    from repro.reactors.ports import Multiport

    flattened: list[Any] = []
    for element in elements:
        if isinstance(element, Multiport):
            flattened.extend(element.channels)
        else:
            flattened.append(element)
    return flattened


class Reaction:
    """One reaction of a reactor."""

    def __init__(
        self,
        name: str,
        owner: "Reactor",
        index: int,
        triggers: Sequence[Any],
        sources: Sequence[Any],
        effects: Sequence[Any],
        body: Callable[["ReactionContext"], None],
        deadline: Deadline | None,
        exec_time: int | Callable[[Any], int],
    ) -> None:
        if not triggers:
            raise SchedulingError(f"reaction {name!r} has no triggers")
        self.name = name
        self.owner = owner
        self.index = index
        self.triggers = _flatten_multiports(triggers)
        self.sources = _flatten_multiports(sources)
        self.effects = _flatten_multiports(effects)
        self.body = body
        self.deadline = deadline
        self.exec_time = exec_time
        #: Fully qualified name (the reactor tree is fixed at build time).
        self.fqn = f"{owner.fqn}.{name}"
        #: APG level, assigned at assembly.
        self.level: int = -1
        #: Stable tie-break key within a level, assigned at assembly.
        self.order_key: int = 0
        #: Statistics.
        self.invocations = 0
        self.deadline_violations = 0
        #: Whether this reaction is already on the scheduler's ready heap
        #: for the current tag (replaces a per-tag membership set).
        self._queued = False
        #: Identity sets for the context's access checks — O(1) instead
        #: of scanning the declaration lists on every get/set.
        self._readable = frozenset(self.triggers) | frozenset(self.sources)
        self._effect_set = frozenset(self.effects)
        for trigger in self.triggers:
            trigger.triggered_reactions.append(self)

    def sample_exec_time(self, rng: Any) -> int:
        """Modelled execution cost for one invocation."""
        if callable(self.exec_time):
            return int(self.exec_time(rng))
        return int(self.exec_time)

    def __repr__(self) -> str:
        return f"Reaction({self.fqn!r}, level={self.level})"


class ReactionContext:
    """The API a reaction body uses to interact with the runtime.

    The scheduler reuses one mutable instance across invocations
    (reaction bodies run to completion without nesting), so holding a
    context past the body's return is not supported.
    """

    __slots__ = ("_scheduler", "_reaction", "tag")

    def __init__(self, scheduler: "ReactorScheduler", reaction: Reaction, tag: Tag):
        self._scheduler = scheduler
        self._reaction = reaction
        self.tag = tag

    # -- time -----------------------------------------------------------------

    @property
    def logical_time(self) -> int:
        """The time component of the current tag."""
        return self.tag.time

    def physical_time(self) -> int:
        """Current physical time (platform clock, or tag time in fast mode)."""
        return self._scheduler.physical_time()

    def lag(self) -> int:
        """How far physical time is ahead of the current tag."""
        return self.physical_time() - self.tag.time

    # -- ports --------------------------------------------------------------------

    def get(self, port: "Port | Any") -> Any:
        """Read a trigger/source port or action value at the current tag."""
        if port not in self._reaction._readable:
            raise SchedulingError(
                f"reaction {self._reaction.fqn} reads {port.fqn} without "
                f"declaring it as a trigger or source"
            )
        return port.get()

    def is_present(self, port: "Port | Any") -> bool:
        """Whether a declared trigger/source carries a value at this tag."""
        if port not in self._reaction._readable:
            raise SchedulingError(
                f"reaction {self._reaction.fqn} tests {port.fqn} without "
                f"declaring it as a trigger or source"
            )
        return port.is_present

    def set(self, port: "Port", value: Any = None) -> None:
        """Set a declared effect port at the current tag."""
        if port not in self._reaction._effect_set:
            raise SchedulingError(
                f"reaction {self._reaction.fqn} sets {port.fqn} without "
                f"declaring it as an effect"
            )
        self._scheduler.set_port(port, value, self.tag)

    # -- actions --------------------------------------------------------------------

    def schedule(
        self,
        action: "LogicalAction | PhysicalAction",
        value: Any = None,
        extra_delay: int = 0,
    ) -> Tag:
        """Schedule a declared-effect action relative to the current tag."""
        if action not in self._reaction._effect_set:
            raise SchedulingError(
                f"reaction {self._reaction.fqn} schedules {action.fqn} "
                f"without declaring it as an effect"
            )
        return self._scheduler.schedule_logical(action, value, extra_delay, self.tag)

    # -- control ----------------------------------------------------------------------

    def request_stop(self) -> None:
        """Ask the runtime to shut down at the next microstep."""
        self._scheduler.request_stop()

    def __repr__(self) -> str:
        return f"ReactionContext({self._reaction.fqn!r} @ {self.tag})"
