"""Reactor ports and connections.

Reactors communicate **only** through ports connected by channels —
one of the structural differences from plain actors that makes the
communication topology explicit and lets the runtime derive the acyclic
precedence graph (Section III.A of the paper).

A connection may carry a logical delay (``after``): events crossing it
arrive ``after`` later in logical time, which also breaks precedence
cycles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import AssemblyError

if TYPE_CHECKING:
    from repro.reactors.base import Reactor


class Port:
    """Base class for reactor ports."""

    direction = "port"

    def __init__(self, name: str, owner: "Reactor") -> None:
        self.name = name
        self.owner = owner
        #: The port feeding this one, if any (set by Environment.connect).
        self.upstream: "Port | None" = None
        #: Ports fed by this one through zero-delay connections.
        self.downstream: list["Port"] = []
        #: Ports fed by this one through delayed connections (port, delay).
        self.delayed_downstream: list[tuple["Port", int]] = []
        #: Reactions triggered by this port becoming present.
        self.triggered_reactions: list[Any] = []
        #: Reactions that declare this port as a source (read-only use).
        self.dependent_reactions: list[Any] = []
        # Runtime state: value at the current tag.
        self._value: Any = None
        self._present: bool = False

    # -- identity ---------------------------------------------------------

    @property
    def fqn(self) -> str:
        """Fully qualified name."""
        return f"{self.owner.fqn}.{self.name}"

    # -- runtime value access ------------------------------------------------

    @property
    def is_present(self) -> bool:
        """Whether the port carries a value at the current tag."""
        return self._present

    def get(self) -> Any:
        """The value at the current tag (``None`` if absent)."""
        return self._value

    def _put(self, value: Any) -> None:
        self._value = value
        self._present = True

    def _clear(self) -> None:
        self._value = None
        self._present = False

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.fqn!r})"


class Input(Port):
    """An input port: receives values from one upstream connection."""

    direction = "input"


class Output(Port):
    """An output port: set by reactions, fans out to downstream ports."""

    direction = "output"


class Multiport:
    """A fixed-width bank of ports treated as one logical interface.

    Channels are ordinary ports named ``name[i]``; a multiport appearing
    in a reaction's triggers/sources/effects stands for all of its
    channels.  Widths are fixed at declaration, as in the reactor model.
    """

    def __init__(self, name: str, owner, width: int, port_cls: type) -> None:
        if width < 1:
            raise ValueError("multiport width must be at least 1")
        self.name = name
        self.owner = owner
        self.channels: list[Port] = [
            port_cls(f"{name}[{index}]", owner) for index in range(width)
        ]

    @property
    def width(self) -> int:
        """Number of channels."""
        return len(self.channels)

    @property
    def fqn(self) -> str:
        """Fully qualified name of the bank."""
        return f"{self.owner.fqn}.{self.name}"

    def __len__(self) -> int:
        return len(self.channels)

    def __iter__(self):
        return iter(self.channels)

    def __getitem__(self, index: int) -> Port:
        return self.channels[index]

    def values(self) -> list[Any]:
        """Current values of all channels (``None`` where absent)."""
        return [channel.get() for channel in self.channels]

    def present_channels(self) -> list[int]:
        """Indices of the channels carrying a value at the current tag."""
        return [
            index
            for index, channel in enumerate(self.channels)
            if channel.is_present
        ]

    def __repr__(self) -> str:
        return f"Multiport({self.fqn!r}, width={self.width})"


def validate_connection(src: Port, dst: Port) -> None:
    """Check that connecting *src* -> *dst* is structurally legal.

    Legal shapes (with containment):

    * output -> input of a *different* reactor (sibling-level channel);
    * input -> input of a *contained* reactor (parent delegates inward);
    * output -> output of the *containing* reactor (child delegates out).
    """
    if dst.upstream is not None:
        raise AssemblyError(
            f"port {dst.fqn} already has an upstream connection "
            f"from {dst.upstream.fqn}"
        )
    if src is dst:
        raise AssemblyError(f"cannot connect port {src.fqn} to itself")
    if isinstance(src, Output) and isinstance(dst, Input):
        if src.owner is dst.owner:
            raise AssemblyError(
                f"cannot connect output {src.fqn} to input of the same "
                f"reactor; use a logical action instead"
            )
        return
    if isinstance(src, Input) and isinstance(dst, Input):
        if dst.owner.container is not src.owner:
            raise AssemblyError(
                f"input-to-input connection {src.fqn} -> {dst.fqn} must "
                f"target a directly contained reactor"
            )
        return
    if isinstance(src, Output) and isinstance(dst, Output):
        if src.owner.container is not dst.owner:
            raise AssemblyError(
                f"output-to-output connection {src.fqn} -> {dst.fqn} must "
                f"come from a directly contained reactor"
            )
        return
    raise AssemblyError(
        f"illegal connection {src.direction} {src.fqn} -> "
        f"{dst.direction} {dst.fqn}"
    )
