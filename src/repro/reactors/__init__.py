"""A reactor-model runtime (the paper's proposed programming model).

Reactors [Lohstroh et al., DAC'19 / CyPhy'19] are deterministic-by-
default actors: stateful components whose **reactions** are triggered by
tagged events and executed in tag order, with logically-instantaneous
semantics and an acyclic precedence graph (APG) resolving simultaneity.
Explicit nondeterminism enters only through **physical actions**, which
are tagged with physical time on arrival.

This package implements:

* :mod:`repro.reactors.base` — reactors and their containment hierarchy;
* :mod:`repro.reactors.ports` — input/output ports and connections
  (including delayed connections);
* :mod:`repro.reactors.action` — timers, logical and physical actions,
  startup/shutdown triggers;
* :mod:`repro.reactors.reaction` — reactions with declared triggers,
  sources and effects, deadlines, and execution-time models;
* :mod:`repro.reactors.graph` — APG construction, causality-cycle
  detection and level assignment;
* :mod:`repro.reactors.environment` — assembly and validation;
* :mod:`repro.reactors.scheduler` — the tag-ordered event scheduler with
  two drivers: *fast* (logical time only, for pure reactor programs) and
  *sim-embedded* (runs as a thread on a simulated platform, coupling
  tags to the platform's physical clock — deadlines and safe-to-process
  waits become real);
* :mod:`repro.reactors.telemetry` — the logical trace used to *check*
  determinism.
"""

from repro.reactors.base import Reactor
from repro.reactors.ports import Input, Multiport, Output, Port
from repro.reactors.action import (
    LogicalAction,
    PhysicalAction,
    Shutdown,
    Startup,
    Timer,
)
from repro.reactors.reaction import Deadline, Reaction, ReactionContext
from repro.reactors.environment import Environment
from repro.reactors.telemetry import Trace, TraceRecord

__all__ = [
    "Reactor",
    "Port",
    "Input",
    "Output",
    "Multiport",
    "Timer",
    "LogicalAction",
    "PhysicalAction",
    "Startup",
    "Shutdown",
    "Reaction",
    "ReactionContext",
    "Deadline",
    "Environment",
    "Trace",
    "TraceRecord",
]
