"""The acyclic precedence graph (APG).

The communication topology of a reactor program translates into a
precedence graph over reactions that drives execution (Section III.A).
Edges come from two rules:

* **priority**: reactions of the same reactor are totally ordered by
  declaration index;
* **communication**: a reaction that (possibly) writes a port precedes
  every reaction that is triggered by — or reads — any port reachable
  from it through *zero-delay* connections.  Delayed connections do not
  create edges; the delay breaks the causality loop.

Levels are longest-path depths; the scheduler executes reactions of one
tag in level order.  A cycle means the program has a zero-delay causal
loop and is rejected with :class:`repro.errors.CausalityError`.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.errors import CausalityError
from repro.reactors.base import Reactor
from repro.reactors.ports import Port
from repro.reactors.reaction import Reaction


def zero_delay_closure(port: Port) -> list[Port]:
    """All ports reachable from *port* via zero-delay connections
    (including *port* itself)."""
    seen: list[Port] = []
    seen_set = {port}
    queue = deque([port])
    while queue:
        current = queue.popleft()
        seen.append(current)
        for downstream in current.downstream:
            if downstream not in seen_set:
                seen_set.add(downstream)
                queue.append(downstream)
    return seen


def build_edges(reactors: Iterable[Reactor]) -> dict[Reaction, set[Reaction]]:
    """Build the precedence edges for all reactions of *reactors*."""
    edges: dict[Reaction, set[Reaction]] = {}
    all_reactions: list[Reaction] = []
    for top in reactors:
        all_reactions.extend(top.all_reactions())
    for reaction in all_reactions:
        edges[reaction] = set()
    # Priority edges within each reactor.
    for top in reactors:
        for reactor in top.all_reactors():
            ordered = reactor.reactions
            for earlier, later in zip(ordered, ordered[1:]):
                edges[earlier].add(later)
    # Communication edges.
    for reaction in all_reactions:
        for effect in reaction.effects:
            if not isinstance(effect, Port):
                continue
            for port in zero_delay_closure(effect):
                for downstream in port.triggered_reactions:
                    if downstream is not reaction:
                        edges[reaction].add(downstream)
                for reader in port.dependent_reactions:
                    if reader is not reaction:
                        edges[reaction].add(reader)
    return edges


def assign_levels(edges: dict[Reaction, set[Reaction]]) -> None:
    """Topologically sort and assign longest-path levels.

    Raises :class:`CausalityError` when the graph has a cycle, naming
    the reactions involved.
    """
    indegree: dict[Reaction, int] = {reaction: 0 for reaction in edges}
    for targets in edges.values():
        for target in targets:
            indegree[target] += 1
    queue = deque(
        reaction for reaction, degree in indegree.items() if degree == 0
    )
    for reaction in queue:
        reaction.level = 0
    processed = 0
    while queue:
        reaction = queue.popleft()
        processed += 1
        for target in edges[reaction]:
            if reaction.level + 1 > target.level:
                target.level = reaction.level + 1
            indegree[target] -= 1
            if indegree[target] == 0:
                queue.append(target)
    if processed != len(edges):
        stuck = sorted(
            (reaction.fqn for reaction, degree in indegree.items() if degree > 0)
        )
        raise CausalityError(
            "zero-delay causality cycle involving reactions: " + ", ".join(stuck)
        )
