"""Environment: assembly, validation and execution entry points.

An :class:`Environment` owns a reactor program: top-level reactors, the
connections between their ports, and the scheduler that executes it.
After construction and :meth:`Environment.connect` calls, the program is
frozen by :meth:`Environment.assemble` (implicit in the run methods),
which validates connections, builds the APG and assigns levels.

Run modes:

* :meth:`Environment.execute` — fast mode, logical time only;
* :meth:`Environment.start` — spawn the scheduler as a thread on a
  simulated platform; tags couple to the platform's physical clock.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import AssemblyError, ReactorError
from repro.reactors.graph import assign_levels, build_edges
from repro.reactors.ports import Port, validate_connection
from repro.reactors.scheduler import ReactorScheduler
from repro.reactors.telemetry import Trace

if TYPE_CHECKING:
    from repro.reactors.base import Reactor
    from repro.sim.platform import Platform
    from repro.sim.process import SimThread


class Environment:
    """Container and execution context for one reactor program.

    Args:
        name: diagnostic name (also namespaces sim-mode RNG streams).
        timeout: optional logical duration after which the program shuts
            down (measured from startup).
        trace_enabled: record the logical trace (on by default; turn off
            for long benchmark runs where only counters matter).
    """

    def __init__(
        self,
        name: str = "main",
        timeout: int | None = None,
        trace_enabled: bool = True,
        trace_origin: int | None = None,
    ) -> None:
        self.name = name
        self.timeout_ns = timeout
        self.trace = Trace(trace_enabled)
        #: When set, trace tags are normalized against this fixed origin
        #: instead of the runtime's (possibly jittered) start time.  Use
        #: for programs whose tags are anchored to external inputs (for
        #: example physical sensor arrivals) rather than to startup.
        self.trace_origin = trace_origin
        self.scheduler = ReactorScheduler(self)
        self._top_level: list["Reactor"] = []
        self._assembled = False

    # -- construction --------------------------------------------------------

    def _register_top_level(self, reactor: "Reactor") -> None:
        self._top_level.append(reactor)

    def _check_mutable(self) -> None:
        if self._assembled:
            raise AssemblyError(
                f"environment {self.name!r} is already assembled; reactors "
                f"and connections must be created before execution"
            )

    def connect(self, src: Port, dst: Port, after: int | None = None) -> None:
        """Connect *src* to *dst*, optionally with a logical delay.

        ``after=None`` is a zero-delay connection (creates an APG edge);
        ``after=n`` delivers events *n* nanoseconds later in logical time
        (``after=0`` delays by one microstep and, like any delayed
        connection, breaks causality cycles).
        """
        self._check_mutable()
        validate_connection(src, dst)
        dst.upstream = src
        if after is None:
            src.downstream.append(dst)
        else:
            if after < 0:
                raise AssemblyError("connection delay must be non-negative")
            src.delayed_downstream.append((dst, after))

    def connect_multiports(self, src, dst, after: int | None = None) -> None:
        """Connect two equal-width multiports channel by channel."""
        if len(src) != len(dst):
            raise AssemblyError(
                f"multiport width mismatch: {len(src)} vs {len(dst)}"
            )
        for src_channel, dst_channel in zip(src, dst):
            self.connect(src_channel, dst_channel, after=after)

    # -- assembly ------------------------------------------------------------------

    def assemble(self) -> None:
        """Freeze the program: validate, build the APG, assign levels."""
        if self._assembled:
            return
        if not self._top_level:
            raise AssemblyError(f"environment {self.name!r} has no reactors")
        self._validate_names()
        for reaction in self.all_reactions():
            for source in reaction.sources:
                if isinstance(source, Port):
                    source.dependent_reactions.append(reaction)
        edges = build_edges(self._top_level)
        assign_levels(edges)
        for order, reaction in enumerate(self.all_reactions()):
            reaction.order_key = order
        self._assembled = True

    def _validate_names(self) -> None:
        seen: set[str] = set()
        for reactor in self.all_reactors():
            if reactor.fqn in seen:
                raise AssemblyError(f"duplicate reactor name {reactor.fqn!r}")
            seen.add(reactor.fqn)
            local: set[str] = set()
            elements = (
                [port.name for port in reactor._inputs]
                + [port.name for port in reactor._outputs]
                + [action.name for action in reactor._actions]
                + [timer.name for timer in reactor._timers]
                + [reaction.name for reaction in reactor._reactions]
            )
            for name in elements:
                if name in local:
                    raise AssemblyError(
                        f"duplicate element name {name!r} in reactor "
                        f"{reactor.fqn!r}"
                    )
                local.add(name)

    # -- traversal -------------------------------------------------------------------

    @property
    def top_level(self) -> list["Reactor"]:
        """Top-level reactors of this environment."""
        return list(self._top_level)

    def all_reactors(self) -> list["Reactor"]:
        """Every reactor in the program."""
        result: list["Reactor"] = []
        for top in self._top_level:
            result.extend(top.all_reactors())
        return result

    def all_reactions(self) -> list[Any]:
        """Every reaction, in stable assembly order."""
        result: list[Any] = []
        for top in self._top_level:
            result.extend(top.all_reactions())
        return result

    # -- execution ---------------------------------------------------------------------

    def execute(self) -> None:
        """Fast mode: run to completion in logical time."""
        self.assemble()
        self.scheduler.run_fast()

    def start(self, platform: "Platform", workers: int = 1) -> "SimThread":
        """Sim mode: run as a thread on *platform*; returns the thread.

        The environment's logical time origin is the platform's local
        clock when the thread first runs; deadlines, physical actions and
        safe-to-process waits are measured against that clock.

        With ``workers > 1``, independent reactions of the same APG level
        execute concurrently on that many worker threads (bounded, of
        course, by the platform's core count) — logically identical to
        sequential execution, but with lower physical lag.
        """
        if workers < 1:
            raise ReactorError("workers must be at least 1")
        self.assemble()
        return platform.spawn(
            f"reactor.{self.name}",
            self.scheduler.sim_thread_body(platform, workers),
        )

    def request_stop(self) -> None:
        """Shut the program down at the next opportunity."""
        self.scheduler.request_stop()

    @property
    def terminated(self) -> bool:
        """Whether the program has completed shutdown."""
        return self.scheduler.terminated

    def __repr__(self) -> str:
        return (
            f"Environment({self.name!r}, reactors={len(self.all_reactors())}, "
            f"assembled={self._assembled})"
        )
