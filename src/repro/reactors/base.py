"""Reactors and their containment hierarchy.

A :class:`Reactor` owns ports, actions, timers, nested reactors and
reactions.  Subclasses declare their elements in ``__init__`` using the
factory methods (:meth:`Reactor.input`, :meth:`Reactor.output`,
:meth:`Reactor.timer`, :meth:`Reactor.logical_action`,
:meth:`Reactor.physical_action`, :meth:`Reactor.reaction`), then the
environment validates and assembles the program.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.errors import AssemblyError
from repro.reactors.action import (
    LogicalAction,
    PhysicalAction,
    Shutdown,
    Startup,
    Timer,
)
from repro.reactors.ports import Input, Output
from repro.reactors.reaction import Deadline, Reaction

if TYPE_CHECKING:
    from repro.reactors.environment import Environment


class Reactor:
    """One reactor: state + ports + actions + reactions (+ children)."""

    def __init__(
        self,
        name: str,
        owner: "Environment | Reactor",
    ) -> None:
        from repro.reactors.environment import Environment

        self.name = name
        if isinstance(owner, Reactor):
            self.container: Reactor | None = owner
            self.environment: "Environment" = owner.environment
            owner._children.append(self)
        elif isinstance(owner, Environment):
            self.container = None
            self.environment = owner
            owner._register_top_level(self)
        else:
            raise AssemblyError(
                f"reactor owner must be an Environment or Reactor, "
                f"got {type(owner).__name__}"
            )
        self._children: list[Reactor] = []
        self._inputs: list[Input] = []
        self._outputs: list[Output] = []
        self._actions: list[LogicalAction | PhysicalAction] = []
        self._timers: list[Timer] = []
        self._reactions: list[Reaction] = []
        self.startup = Startup(self)
        self.shutdown = Shutdown(self)
        self.environment._check_mutable()

    # -- identity ---------------------------------------------------------

    @property
    def fqn(self) -> str:
        """Fully qualified name (dot-separated path from the top level)."""
        if self.container is None:
            return self.name
        return f"{self.container.fqn}.{self.name}"

    @property
    def children(self) -> list["Reactor"]:
        """Directly contained reactors."""
        return list(self._children)

    @property
    def reactions(self) -> list[Reaction]:
        """This reactor's reactions in declaration (priority) order."""
        return list(self._reactions)

    # -- element factories ----------------------------------------------------

    def input(self, name: str) -> Input:
        """Declare an input port."""
        port = Input(name, self)
        self._inputs.append(port)
        return port

    def output(self, name: str) -> Output:
        """Declare an output port."""
        port = Output(name, self)
        self._outputs.append(port)
        return port

    def input_multiport(self, name: str, width: int) -> "Multiport":
        """Declare a bank of *width* input ports named ``name[i]``."""
        from repro.reactors.ports import Multiport

        bank = Multiport(name, self, width, Input)
        self._inputs.extend(bank.channels)
        return bank

    def output_multiport(self, name: str, width: int) -> "Multiport":
        """Declare a bank of *width* output ports named ``name[i]``."""
        from repro.reactors.ports import Multiport

        bank = Multiport(name, self, width, Output)
        self._outputs.extend(bank.channels)
        return bank

    def timer(self, name: str, offset: int = 0, period: int | None = None) -> Timer:
        """Declare a timer firing at ``offset`` and then every ``period``.

        ``period=None`` means the timer fires exactly once.
        """
        timer = Timer(name, self, offset, period)
        self._timers.append(timer)
        return timer

    def logical_action(self, name: str, min_delay: int = 0) -> LogicalAction:
        """Declare a logical action (scheduled from within reactions)."""
        action = LogicalAction(name, self, min_delay)
        self._actions.append(action)
        return action

    def physical_action(self, name: str, min_delay: int = 0) -> PhysicalAction:
        """Declare a physical action (scheduled from outside the program).

        Its events are tagged with the *physical* time at which they are
        scheduled — the reactor model's controlled entry point for
        environment-driven nondeterminism (sensors, interrupts, untagged
        network input).
        """
        action = PhysicalAction(name, self, min_delay)
        self._actions.append(action)
        return action

    def reaction(
        self,
        name: str,
        triggers: Sequence[Any],
        body: Callable,
        sources: Sequence[Any] = (),
        effects: Sequence[Any] = (),
        deadline: Deadline | None = None,
        exec_time: int | Callable[[Any], int] = 0,
    ) -> Reaction:
        """Declare a reaction.

        Reactions of one reactor are mutually exclusive and — when
        triggered at the same tag — execute in declaration order, as the
        reactor model requires.

        Args:
            name: reaction name (unique within the reactor).
            triggers: ports/actions/timers/startup/shutdown that invoke it.
            body: ``body(ctx)`` called with a
                :class:`~repro.reactors.reaction.ReactionContext`.
            sources: ports it may read without being triggered by them.
            effects: ports it may set and actions it may schedule.
            deadline: optional physical-time deadline with handler.
            exec_time: modelled execution cost in ns (int, or a callable
                drawing from an RNG stream) — only meaningful when the
                environment runs embedded in the platform simulation.
        """
        reaction = Reaction(
            name=name,
            owner=self,
            index=len(self._reactions),
            triggers=list(triggers),
            sources=list(sources),
            effects=list(effects),
            body=body,
            deadline=deadline,
            exec_time=exec_time,
        )
        self._reactions.append(reaction)
        return reaction

    # -- traversal ----------------------------------------------------------------

    def all_reactors(self) -> list["Reactor"]:
        """This reactor and all transitively contained reactors."""
        result = [self]
        for child in self._children:
            result.extend(child.all_reactors())
        return result

    def all_reactions(self) -> list[Reaction]:
        """All reactions in this subtree."""
        result = list(self._reactions)
        for child in self._children:
            result.extend(child.all_reactions())
        return result

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.fqn!r})"
