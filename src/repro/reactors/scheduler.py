"""The tag-ordered reactor scheduler.

Executes the reactor program event by event: at each tag, all
simultaneous events become present triggers, the triggered reactions
run in APG level order (ties broken by a stable assembly order, so the
logical behaviour is identical for every platform seed), ports are
cleared, and the next tag is processed.

Two drivers share this core:

* :meth:`ReactorScheduler.run_fast` — logical time only; physical time
  is defined to equal the current tag.  For pure reactor programs and
  unit tests.
* :meth:`ReactorScheduler.sim_thread_body` — a generator executed as a
  simulated-platform thread.  Events are processed only once the
  platform's physical clock passes their tag (the reactor model's
  in-order processing rule for sporadically scheduled actions), reaction
  bodies consume simulated CPU time, and deadlines are measured against
  the physical clock — faithfully reproducing how the paper's C++
  runtime behaves on its evaluation boards.

Hot-path notes (the sim-kernel throughput overhaul): event records are
mutable ``__slots__`` objects recycled through a freelist, ready-queue
membership is a flag on the reaction instead of a side set, one mutable
:class:`ReactionContext` is reused across invocations, and the per-tag
dispatch loops are inlined batches rather than per-reaction method
calls.  None of this changes the order of reactions, trace records or
RNG draws — bit-exactness is pinned by the kernel-fingerprint
regression tests.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any

from repro.errors import DeadlineViolation, ReactorError, SchedulingError
from repro.obs import context as obs_context
from repro.obs.bus import TRACK_REACTORS
from repro.reactors.action import LogicalAction, PhysicalAction, Timer
from repro.reactors.ports import Port
from repro.reactors.reaction import Reaction, ReactionContext
from repro.time.tag import FOREVER, NEVER, Tag

if TYPE_CHECKING:
    from repro.reactors.environment import Environment


class _Event:
    """A scheduled occurrence of a trigger (or delayed port value).

    Mutable and recycled through the scheduler's freelist — one of the
    two per-event allocations the throughput overhaul removed (the
    other being the ready-set entry).
    """

    __slots__ = ("target", "value")

    def __init__(self, target: Any, value: Any) -> None:
        self.target = target  # TriggerBase or Port
        self.value = value


class ReactorScheduler:
    """Event queue + per-tag execution for one environment."""

    def __init__(self, environment: "Environment") -> None:
        self._env = environment
        self._queue: list[tuple[Tag, int, _Event]] = []
        self._sequence = 0
        self._current_tag: Tag = NEVER
        self._start_time: int = 0
        self._stop_tag: Tag = FOREVER
        self._started = False
        self._terminated = False
        self._physical_fast = 0
        #: Ports/triggers to clear once the current tag completes.
        self._to_clear: list[Any] = []
        self._ready: list[tuple[int, int, Reaction]] = []
        #: Freelist of recycled event records.
        self._event_pool: list[_Event] = []
        #: Reusable invocation context (bodies never nest or retain it).
        self._ctx = ReactionContext(self, None, NEVER)
        self.tags_processed = 0
        self.reactions_executed = 0
        # Sim-mode plumbing, populated by sim_thread_body.
        self._platform = None
        self._mutex = None
        self._condvar = None
        # Multi-worker execution: effects of concurrently running
        # reactions are buffered per reaction and applied in APG order.
        self._active_buffer: list | None = None

    # -- introspection ------------------------------------------------------

    @property
    def current_tag(self) -> Tag:
        """The tag currently (or most recently) being processed."""
        return self._current_tag

    @property
    def start_time(self) -> int:
        """Logical time origin (physical time at startup in sim mode)."""
        return self._start_time

    @property
    def terminated(self) -> bool:
        """Whether shutdown has completed."""
        return self._terminated

    def physical_time(self) -> int:
        """Physical time: the platform clock, or the tag time in fast mode."""
        if self._platform is not None:
            return self._platform.local_now()
        return self._physical_fast

    # -- event insertion -----------------------------------------------------------

    def _push(self, tag: Tag, target: Any, value: Any) -> None:
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.target = target
            event.value = value
        else:
            event = _Event(target, value)
        heapq.heappush(self._queue, (tag, self._sequence, event))
        self._sequence += 1

    def _next_tag(self) -> Tag | None:
        if not self._queue:
            return None
        return self._queue[0][0]

    def schedule_logical(
        self,
        action: LogicalAction | PhysicalAction,
        value: Any,
        extra_delay: int,
        current: Tag,
    ) -> Tag:
        """Schedule an action from within a reaction."""
        if extra_delay < 0:
            raise SchedulingError("extra_delay must be non-negative")
        if isinstance(action, PhysicalAction):
            return self.schedule_physical(action, value, extra_delay)
        tag = current.delay(action.min_delay + extra_delay)
        if self._active_buffer is not None:
            self._active_buffer.append(("event", tag, action, value))
        else:
            self._push(tag, action, value)
        return tag

    def schedule_physical(
        self, action: PhysicalAction, value: Any, extra_delay: int = 0
    ) -> Tag:
        """Schedule a physical action from outside the reactor program.

        Tagged with the physical time observed now (plus delays), clamped
        to be after the last processed tag so events are never inserted
        into the program's past.
        """
        if extra_delay < 0:
            raise SchedulingError("extra_delay must be non-negative")
        time = self.physical_time() + action.min_delay + extra_delay
        tag = Tag(max(time, self._start_time), 0)
        if tag <= self._current_tag:
            tag = self._current_tag.delay(0)
        o = obs_context.ACTIVE
        if o.enabled and o.flows is not None:
            o.flows.bind_event(value)
        self._push(tag, action, value)
        self._wake()
        return tag

    def schedule_at_tag(
        self, action: LogicalAction | PhysicalAction, value: Any, tag: Tag
    ) -> tuple[Tag, bool]:
        """Insert an event with an *explicit* tag from outside the program.

        This is the PTIDES-style arrival path used by DEAR transactors: a
        network message carries tag ``t``; the receiving transactor
        inserts an event at ``t + L + E`` and the scheduler's rule of not
        processing events before physical time passes their tag provides
        the safe-to-process wait.

        If *tag* is not after the last processed tag, the bounded-latency
        / clock-sync assumption was violated; the event is re-tagged to
        the earliest possible tag and the second return value is ``True``
        so the caller can surface the observable error.
        """
        late = False
        if tag <= self._current_tag:
            tag = self._current_tag.delay(0)
            late = True
        o = obs_context.ACTIVE
        if o.enabled and o.flows is not None:
            o.flows.bind_event(value)
        self._push(tag, action, value)
        self._wake()
        return tag, late

    def set_port(self, port: Port, value: Any, tag: Tag) -> None:
        """Set *port* at *tag* and propagate through connections.

        Under multi-worker execution the effect is buffered and applied
        after the level barrier, in APG order, so concurrent reactions
        produce the same logical behaviour as sequential execution.
        """
        if self._active_buffer is not None:
            self._active_buffer.append(("set", port, value, tag))
            return
        self._propagate(port, value, tag)

    def request_stop(self) -> None:
        """Stop at the earliest opportunity (next microstep)."""
        candidate = (
            self._current_tag.delay(0)
            if self._current_tag > NEVER
            else Tag(self._start_time, 0)
        )
        if candidate < self._stop_tag:
            self._stop_tag = candidate
        self._wake()

    def _wake(self) -> None:
        """Wake the sim-mode scheduler thread, if any."""
        if self._platform is not None and self._condvar is not None:
            self._platform.scheduler.external_notify_all(self._condvar)

    # -- startup -------------------------------------------------------------------

    def _initialize(self, start_time: int) -> None:
        if self._started:
            raise ReactorError("environment already executed")
        self._started = True
        self._start_time = start_time
        self._physical_fast = start_time
        if self._env.trace_origin is not None:
            self._env.trace.origin = self._env.trace_origin
        else:
            self._env.trace.origin = start_time
        if self._env.timeout_ns is not None:
            self._stop_tag = min(
                self._stop_tag, Tag(start_time + self._env.timeout_ns, 0)
            )
        start_tag = Tag(start_time, 0)
        for reactor in self._env.all_reactors():
            if reactor.startup.triggered_reactions:
                self._push(start_tag, reactor.startup, None)
            for timer in reactor._timers:
                self._push(Tag(start_time + timer.offset, 0), timer, None)

    # -- per-tag processing ------------------------------------------------------------

    def _pop_tag_events(self, tag: Tag) -> list[_Event]:
        queue = self._queue
        pop = heapq.heappop
        events = []
        while queue and queue[0][0] == tag:
            events.append(pop(queue)[2])
        return events

    def _propagate(self, port: Port, value: Any, tag: Tag) -> None:
        """Make *port* (and its zero-delay closure) present with *value*."""
        trace = self._env.trace
        to_clear = self._to_clear
        stack = [port]
        while stack:
            current = stack.pop()
            current._put(value)
            to_clear.append(current)
            if trace.enabled:
                trace.port_set(tag, current.fqn, value)
            for reaction in current.triggered_reactions:
                if not reaction._queued:
                    reaction._queued = True
                    heapq.heappush(
                        self._ready, (reaction.level, reaction.order_key, reaction)
                    )
            stack.extend(current.downstream)
            for downstream, delay in current.delayed_downstream:
                self._push(tag.delay(delay), downstream, value)

    def _enqueue_reaction(self, reaction: Reaction) -> None:
        if reaction._queued:
            return
        reaction._queued = True
        heapq.heappush(self._ready, (reaction.level, reaction.order_key, reaction))

    def _begin_tag(self, tag: Tag, events: list[_Event]) -> None:
        """Mark triggers present (shutdown merged in); recycle *events*."""
        self._current_tag = tag
        self.tags_processed += 1
        if tag >= self._stop_tag:
            for reactor in self._env.all_reactors():
                if reactor.shutdown.triggered_reactions:
                    reactor.shutdown._put(None)
                    self._to_clear.append(reactor.shutdown)
                    for reaction in reactor.shutdown.triggered_reactions:
                        self._enqueue_reaction(reaction)
        o = obs_context.ACTIVE
        flows = o.flows if o.enabled else None
        to_clear = self._to_clear
        for event in events:
            if flows is not None:
                flow = flows.event_arrived(event.value)
                if flow is not None:
                    flows.hop(
                        flow, "reactor", f"tag {self._env.name}", self._obs_now()
                    )
            target = event.target
            if isinstance(target, Port):
                self._propagate(target, event.value, tag)
                continue
            target._put(event.value)
            to_clear.append(target)
            for reaction in target.triggered_reactions:
                self._enqueue_reaction(reaction)
            if isinstance(target, Timer) and target.period is not None:
                self._push(tag.delay(target.period), target, None)
        pool = self._event_pool
        for event in events:
            event.target = None
            event.value = None
            pool.append(event)

    def _finish_tag(self) -> None:
        for element in self._to_clear:
            element._clear()
        self._to_clear.clear()

    def _obs_now(self) -> int:
        """Global simulation time for event stamps (tag time in fast mode)."""
        if self._platform is not None:
            return self._platform.sim.now
        return self._physical_fast

    def _next_ready_reaction(self) -> Reaction | None:
        if not self._ready:
            return None
        _level, _order, reaction = heapq.heappop(self._ready)
        reaction._queued = False
        return reaction

    def _invoke(self, reaction: Reaction, tag: Tag, record_trace: bool = True) -> bool:
        """Run one reaction body (or its deadline handler).

        Returns ``True`` when the body ran (``False``: deadline handler).
        With ``record_trace=False`` the "reaction" trace record is left
        to the caller — the multi-worker path emits it at the ordered
        effect-application phase so traces are independent of worker
        completion order.
        """
        context = self._ctx
        context._reaction = reaction
        context.tag = tag
        reaction.invocations += 1
        self.reactions_executed += 1
        o = obs_context.ACTIVE
        if o.enabled:
            o.metrics.counter("reactor.reactions").inc()
            o.metrics.histogram("reactor.lag_ns").observe(
                max(self.physical_time() - tag.time, 0)
            )
        deadline = reaction.deadline
        if deadline is not None:
            lag = self.physical_time() - tag.time
            if lag > deadline.duration_ns:
                reaction.deadline_violations += 1
                self._env.trace.deadline_miss(tag, reaction.fqn, lag)
                if o.enabled:
                    o.metrics.counter("reactor.deadline_misses").inc()
                    o.bus.instant(
                        TRACK_REACTORS,
                        f"deadline-miss {reaction.fqn}",
                        self._obs_now(),
                        o.wall_ns(),
                        lag_ns=lag,
                        deadline_ns=deadline.duration_ns,
                    )
                if deadline.handler is None:
                    raise DeadlineViolation(reaction.fqn, lag)
                deadline.handler(context)
                return False
            if o.enabled:
                o.metrics.histogram("reactor.deadline_slack_ns").observe(
                    deadline.duration_ns - lag
                )
        if record_trace:
            trace = self._env.trace
            if trace.enabled:
                trace.reaction(tag, reaction.fqn)
        reaction.body(context)
        return True

    # -- fast driver -------------------------------------------------------------------

    def run_fast(self) -> None:
        """Run to completion in logical time (no platform).

        The per-tag reaction batch is drained in one inlined dispatch
        loop — the fast-mode path the sim driver's zero-cost batches
        generalize.
        """
        self._initialize(start_time=0)
        ready = self._ready
        pop = heapq.heappop
        invoke = self._invoke
        while True:
            tag = self._next_tag()
            if tag is None:
                # Queue drained: stop at the configured point, or right
                # after the last processed tag if none was configured.
                if self._stop_tag == FOREVER:
                    self._stop_tag = (
                        self._current_tag.delay(0)
                        if self._current_tag > NEVER
                        else Tag(self._start_time, 0)
                    )
                tag = self._stop_tag
            if tag >= self._stop_tag:
                tag = self._stop_tag
            if tag.time > self._physical_fast:
                self._physical_fast = tag.time
            self._begin_tag(tag, self._pop_tag_events(tag))
            while ready:
                reaction = pop(ready)[2]
                reaction._queued = False
                invoke(reaction, tag)
            self._finish_tag()
            if tag >= self._stop_tag:
                break
        self._terminated = True

    # -- sim driver --------------------------------------------------------------------

    def sim_thread_body(self, platform, workers: int = 1):
        """Generator: the scheduler loop as a simulated-platform thread.

        With ``workers > 1``, independent reactions of one APG level run
        concurrently on a pool of worker threads — the paper's
        "transparently exploiting concurrency in the APG".  Effects are
        buffered per reaction and applied at the level barrier in APG
        order, so the logical behaviour (and trace) is identical to
        sequential execution; only physical timing improves.

        Zero-cost reactions batch through the same inlined loop as
        :meth:`run_fast`; only reactions with a modelled execution cost
        pay a coroutine switch (the ``Compute`` yield that advances the
        platform clock — required for exact deadline/lag semantics).
        """
        from repro.sim.process import (
            Acquire,
            Compute,
            Release,
            Wait,
            WaitUntil,
        )

        self._platform = platform
        self._mutex = platform.mutex(f"{self._env.name}.rt.mutex")
        self._condvar = platform.condvar(f"{self._env.name}.rt.cv")
        exec_rng = platform.rng(f"reactor.exec.{self._env.name}")
        pool = _WorkerPool(self, platform, workers) if workers > 1 else None
        self._initialize(start_time=platform.local_now())
        ready = self._ready
        pop = heapq.heappop
        invoke = self._invoke
        while True:
            yield Acquire(self._mutex)
            tag = self._next_tag()
            if tag is None or tag > self._stop_tag:
                if self._stop_tag != FOREVER:
                    tag = self._stop_tag
                else:
                    # Idle: wait for a physical action or a stop request.
                    yield Wait(self._condvar, self._mutex)
                    yield Release(self._mutex)
                    continue
            if tag.time > platform.local_now():
                yield WaitUntil(self._condvar, self._mutex, tag.time)
                yield Release(self._mutex)
                continue  # re-evaluate: an earlier event may have arrived
            events = self._pop_tag_events(tag)
            yield Release(self._mutex)
            self._begin_tag(tag, events)
            if pool is None:
                o = obs_context.ACTIVE
                while ready:
                    reaction = pop(ready)[2]
                    reaction._queued = False
                    cost = reaction.sample_exec_time(exec_rng)
                    if cost > 0:
                        yield Compute(cost)
                    invoke(reaction, tag)
                    if o.enabled:
                        now = platform.sim.now
                        o.bus.span(
                            TRACK_REACTORS,
                            reaction.fqn,
                            now - cost,
                            now,
                            o.wall_ns(),
                            tag_time=tag.time,
                            cost_ns=cost,
                        )
            else:
                yield from self._run_tag_parallel(pool, tag, exec_rng)
            self._finish_tag()
            if tag >= self._stop_tag:
                break
        if pool is not None:
            pool.shutdown()
        self._terminated = True

    def _pop_level_batch(self) -> list[Reaction]:
        """Pop all ready reactions sharing the lowest level, in APG order."""
        ready = self._ready
        if not ready:
            return []
        level = ready[0][0]
        batch = []
        while ready and ready[0][0] == level:
            reaction = heapq.heappop(ready)[2]
            reaction._queued = False
            batch.append(reaction)
        return batch

    def _run_tag_parallel(self, pool: "_WorkerPool", tag: Tag, exec_rng):
        """Process one tag level by level on the worker pool."""
        while True:
            batch = self._pop_level_batch()
            if not batch:
                return
            # Costs are sampled here, in deterministic APG order, so the
            # RNG stream consumption does not depend on worker timing.
            jobs = [
                (reaction, reaction.sample_exec_time(exec_rng)) for reaction in batch
            ]
            results = yield from pool.run_level(jobs, tag)
            # Barrier passed: record and apply in APG order, so the trace
            # and effect application are independent of worker timing.
            for reaction, buffer, body_ran in results:
                if body_ran:
                    self._env.trace.reaction(tag, reaction.fqn)
                for effect in buffer:
                    if effect[0] == "set":
                        _kind, port, value, set_tag = effect
                        self._propagate(port, value, set_tag)
                    else:
                        _kind, event_tag, action, value = effect
                        self._push(event_tag, action, value)


class _WorkerPool:
    """Worker threads executing one APG level's reactions concurrently.

    The scheduler hands a level's reactions (with pre-sampled costs) to
    the pool and blocks until all of them completed.  Each worker runs
    ``Compute(cost)`` and then the reaction body with effect buffering
    enabled; the buffers are returned to the scheduler for ordered
    application.
    """

    def __init__(self, scheduler: ReactorScheduler, platform, workers: int):
        from repro.sim.sync import MessageQueue

        self._scheduler = scheduler
        self._platform = platform
        self._jobs: MessageQueue = platform.queue(
            f"{scheduler._env.name}.rt.jobs"
        )
        self._mutex = platform.mutex(f"{scheduler._env.name}.rt.batch.mutex")
        self._done_cv = platform.condvar(f"{scheduler._env.name}.rt.batch.cv")
        self._outstanding = 0
        self._results: list[tuple[Reaction, list]] = []
        self._workers = workers
        for index in range(workers):
            platform.spawn(
                f"reactor.{scheduler._env.name}.worker{index}", self._worker_loop()
            )

    def run_level(self, jobs, tag: Tag):
        """Generator (scheduler thread): run *jobs*, return their buffers."""
        from repro.sim.process import Acquire, Release, Wait

        self._outstanding = len(jobs)
        self._results = []
        for reaction, cost in jobs:
            self._jobs.post((reaction, cost, tag))
        yield Acquire(self._mutex)
        while self._outstanding > 0:
            yield Wait(self._done_cv, self._mutex)
        yield Release(self._mutex)
        results = self._results
        self._results = []
        results.sort(key=lambda item: item[0].order_key)
        return results

    def _worker_loop(self):
        from repro.sim.process import Acquire, Compute, Notify, Release

        scheduler = self._scheduler
        while True:
            job = yield from self._jobs.get()
            if job is None:
                return
            reaction, cost, tag = job
            if cost > 0:
                yield Compute(cost)
            buffer: list = []
            scheduler._active_buffer = buffer
            try:
                # _invoke runs atomically between yields, so the shared
                # reusable context is safe for workers too.
                body_ran = scheduler._invoke(reaction, tag, record_trace=False)
            finally:
                scheduler._active_buffer = None
            o = obs_context.ACTIVE
            if o.enabled:
                now = self._platform.sim.now
                o.bus.span(
                    TRACK_REACTORS,
                    reaction.fqn,
                    now - cost,
                    now,
                    o.wall_ns(),
                    tag_time=tag.time,
                    cost_ns=cost,
                )
            yield Acquire(self._mutex)
            self._results.append((reaction, buffer, body_ran))
            self._outstanding -= 1
            yield Notify(self._done_cv)
            yield Release(self._mutex)

    def shutdown(self) -> None:
        """Stop the workers (one queue sentinel per worker)."""
        for _ in range(self._workers):
            self._jobs.post(None)
