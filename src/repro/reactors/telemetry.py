"""Logical execution traces.

Determinism is a property we *check*, not just claim: every environment
records a logical trace — which reactions executed at which tags, what
values ports carried, which deadlines were violated.  Two runs of a
deterministic program (whatever the seed driving the platform
simulation) must produce byte-identical trace fingerprints; the
deterministic-brake-assistant benchmark asserts exactly that.

Physical quantities (lag, execution times) are deliberately excluded
from the fingerprint: they legitimately differ between runs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any

from repro.time.tag import Tag


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One logical event in the trace."""

    tag: Tag
    kind: str  # "reaction" | "set" | "deadline-miss" | "stop"
    name: str
    value: str = ""

    def line(self) -> str:
        """Canonical one-line rendering (input to the fingerprint)."""
        tag = self.tag
        return f"{tag.time}.{tag.microstep} {self.kind} {self.name} {self.value}"


class Trace:
    """An append-only logical trace with a stable fingerprint.

    Tags are stored relative to :attr:`origin` (the environment's logical
    start time), so traces of the same program are comparable between
    runs even when OS jitter shifted the moment the runtime started.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.origin = 0
        self.records: list[TraceRecord] = []

    def record(self, tag: Tag, kind: str, name: str, value: Any = "") -> None:
        """Append a record (no-op when disabled)."""
        if not self.enabled:
            return
        normalized = Tag(tag.time - self.origin, tag.microstep)
        self.records.append(
            TraceRecord(normalized, kind, name, repr(value) if value != "" else "")
        )

    def reaction(self, tag: Tag, name: str) -> None:
        """Record a reaction execution."""
        self.record(tag, "reaction", name)

    def port_set(self, tag: Tag, name: str, value: Any) -> None:
        """Record a port being set."""
        self.record(tag, "set", name, value)

    def deadline_miss(self, tag: Tag, name: str, lag_ns: int) -> None:
        """Record a deadline violation (an observable error)."""
        self.record(tag, "deadline-miss", name, lag_ns)

    def fingerprint(self) -> str:
        """SHA-256 over the canonical rendering of all records."""
        digest = hashlib.sha256()
        for record in self.records:
            digest.update(record.line().encode())
            digest.update(b"\n")
        return digest.hexdigest()

    def lines(self) -> list[str]:
        """Human-readable rendering."""
        return [record.line() for record in self.records]

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return f"Trace(records={len(self.records)}, enabled={self.enabled})"
