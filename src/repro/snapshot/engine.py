"""Copy-on-write world snapshots via a fork server.

Why processes, not serialization
--------------------------------

A running world is made of *live generator coroutines*: every simulated
thread — app stages, SOME/IP middleware, sync primitives — is a Python
generator suspended mid-``yield``, holding its locals and call stack
inside the interpreter.  Generators cannot be pickled or deep-copied,
so a field-by-field ``WorldSnapshot`` (time wheel, scheduler tiers,
reactor heaps, switch queues, SD state, RNG positions...) is impossible
to build faithfully in pure Python.  What *can* capture all of it,
wholesale and bit-exactly, is the operating system: ``os.fork()``
duplicates the entire interpreter — every bucket, heap, pooled event,
in-flight frame and PRF counter — behind copy-on-write page tables.  A
snapshot here is therefore a **holder**: a forked child frozen at a
decision index, blocked on a control socket; ``fork(snapshot)`` forks
the holder again and resumes the copy under a different decision
suffix.

Why this is sound
-----------------

The kernel and everything above it are deterministic functions of the
root seed; the *only* way two runs of the same context (experiment,
scenario, seed, fault plan, code version) can diverge is through an
explicit decision vector — preemption delays consumed by
:class:`repro.explore.decisions.InterventionController`, or fault-trace
membership consumed by :class:`repro.faults.injector.FaultInjector` in
replay mode.  Capture happens *before* decision ``k`` is consumed, so a
holder's state depends only on decisions ``< k``; any probe agreeing on
that prefix can adopt the holder's state and replay only its own
suffix: O(ΔT) instead of O(T).

The protocol
------------

One orchestrator (the caller's process) and three transient roles::

    orchestrator ── fork ──> runner (cold run, t=0)
        runner ── fork at decision k ──> holder (frozen; serves forks)
            holder ── fork per RUN msg ──> continuation (runs suffix)

* the runner executes ``run(checkpointer)``; at each planned capture
  index the decision source calls ``checkpointer.reached(k, adopt)``,
  which forks a holder and registers its control socket with the
  orchestrator over an inherited SEQPACKET pair (fd passing);
* a RUN message carries the probe's decision payload, its remaining
  capture plan and a fresh result-pipe fd; the holder forks a
  continuation, which installs the new suffix via ``adopt(payload)``
  and simply *returns* from ``reached`` — resuming the simulation
  mid-flight with the probe's decisions;
* results come back as one framed pickle on the result pipe; children
  always leave via ``os._exit`` so no pytest/atexit machinery runs
  twice;
* eviction, crash cleanup and engine shutdown are all "close the
  control socket": the holder's blocking ``recv`` EOFs and it exits.

Every failure degrades to a from-scratch in-process run — snapshots are
an accelerator, never a correctness dependency.
"""

from __future__ import annotations

import hashlib
import os
import signal
import sys
import time
import traceback
from typing import Any, Callable, Iterable, Sequence

from repro.snapshot import ipc
from repro.snapshot.store import SnapshotStats, SnapshotStore, _Holder

__all__ = [
    "SnapshotEngine",
    "Checkpointer",
    "NullCheckpointer",
    "RemoteRunError",
    "ScheduleDecisions",
    "MembershipDecisions",
    "MAX_CAPTURES_PER_RUN",
]

#: Holder processes one run may spawn (keeps registration traffic far
#: below the control socket's buffer and bounds resident holders).
MAX_CAPTURES_PER_RUN = 32


class RemoteRunError(RuntimeError):
    """The experiment raised inside a forked execution.

    Carries the child's formatted traceback; the exception class itself
    does not survive the process boundary.
    """


def _digest(material: Any) -> str:
    return hashlib.sha256(repr(material).encode()).hexdigest()[:16]


# ---------------------------------------------------------------------------
# Decision vectors (what prefixes are keyed and forked on).
# ---------------------------------------------------------------------------


class ScheduleDecisions:
    """Sparse per-site preemption delays as a prefix-keyed vector.

    Index space = preemption-site ordinals; the decision at site ``s``
    is the injected delay (0 everywhere except the schedule's points).
    Capture points sit at the schedule's own sites: ddmin probes and
    PCT siblings agree with the parent run exactly up to their first
    differing point, so those are the highest-reuse instants.
    """

    __slots__ = ("pairs",)

    def __init__(self, schedule: Any) -> None:
        self.pairs = tuple(
            sorted((p.site, p.delay_ns) for p in schedule.preemptions)
        )

    def capture_indices(self) -> list[int]:
        return [site for site, _delay in self.pairs]

    def prefix_digest(self, index: int) -> str:
        return _digest([pair for pair in self.pairs if pair[0] < index])

    def payload(self) -> dict[int, int]:
        return dict(self.pairs)

    def span(self) -> int:
        return self.pairs[-1][0] + 1 if self.pairs else 0


class MembershipDecisions:
    """Fault-trace membership bits as a prefix-keyed vector.

    Index space = the chronological order of the *original* fired-fault
    trace (the ddmin universe); the decision at index ``i`` is whether
    record ``i`` stays in the replay table.  A record's membership
    cannot affect the run before its own firing site, so probes
    agreeing on bits ``< k`` are bit-identical up to record ``k``.
    """

    __slots__ = ("bits",)

    def __init__(self, bits: Sequence[int]) -> None:
        self.bits = tuple(1 if bit else 0 for bit in bits)

    def capture_indices(self) -> list[int]:
        return list(range(len(self.bits)))

    def prefix_digest(self, index: int) -> str:
        return _digest(self.bits[:index])

    def payload(self) -> tuple[int, ...]:
        return self.bits

    def span(self) -> int:
        return len(self.bits)


# ---------------------------------------------------------------------------
# The in-run capture hook.
# ---------------------------------------------------------------------------


class NullCheckpointer:
    """No-op hook: decision sources run exactly as without snapshots."""

    __slots__ = ()

    def wants(self, index: int) -> bool:
        return False

    def reached(self, index: int, adopt: Callable[[Any], None]) -> None:
        pass


class Checkpointer:
    """Lives inside a runner/continuation; forks holders on demand.

    Decision sources gate on :meth:`wants` (a set lookup — the hot path
    stays hot) and call :meth:`reached` with an ``adopt(payload)``
    closure that re-targets the live source at the new decision suffix.
    ``reached`` returns twice per capture, in two different processes:
    immediately in the runner (which keeps executing), and once per
    future fork in a fresh continuation child (which resumes the
    simulation under the adopted suffix).
    """

    __slots__ = ("context", "result_fd", "resumed_ns", "_plan", "_reg")

    def __init__(
        self,
        context: str,
        plan: dict[int, str],
        reg: Any,
        result_fd: int,
    ) -> None:
        self.context = context
        self.result_fd = result_fd
        #: ``monotonic_ns`` at continuation resume (fork latency probe).
        self.resumed_ns: int | None = None
        self._plan = plan
        self._reg = reg

    def wants(self, index: int) -> bool:
        return index in self._plan

    def reached(self, index: int, adopt: Callable[[Any], None]) -> None:
        digest = self._plan.pop(index, None)
        if digest is None:
            return
        sys.stdout.flush()
        sys.stderr.flush()
        started = time.monotonic_ns()
        ctrl_run, ctrl_hold = ipc.seqpacket_pair()
        pid = os.fork()
        if pid:
            # Still the runner: hand the holder's control socket up to
            # the orchestrator and keep executing.  Best-effort — a
            # full registration channel abandons the capture (the
            # holder EOFs and exits when ctrl_run closes below).
            ctrl_hold.close()
            try:
                message = (
                    self.context,
                    index,
                    digest,
                    time.monotonic_ns() - started,
                )
                ipc.send_msg(self._reg, message, fds=(ctrl_run.fileno(),))
            except (OSError, BlockingIOError, ipc.SnapshotIpcError):
                pass
            finally:
                ctrl_run.close()
            return
        # The holder: never touches the simulation again.  Its children
        # are auto-reaped, its parent's result pipe is released so a
        # crashed sibling cannot wedge the orchestrator's read, and EOF
        # on the control socket is the one and only exit signal.
        ctrl_run.close()
        signal.signal(signal.SIGCHLD, signal.SIG_IGN)
        os.close(self.result_fd)
        self._plan = {}
        while True:
            received = ipc.recv_msg(ctrl_hold)
            if received is None:
                os._exit(0)
            (payload, plan), fds = received
            child = os.fork()
            if child == 0:
                # The continuation: adopt the probe's suffix and resume
                # the simulation by returning from this very frame.
                ctrl_hold.close()
                self._plan = dict(plan)
                self.result_fd = fds[0]
                self.resumed_ns = time.monotonic_ns()
                adopt(payload)
                return
            for fd in fds:
                os.close(fd)


# ---------------------------------------------------------------------------
# The engine.
# ---------------------------------------------------------------------------


class SnapshotEngine:
    """Execute decision-vector runs, forking from shared-prefix holders.

    ``execute(context, decisions, run)`` is the whole API: *run* is any
    ``(checkpointer) -> picklable`` callable (closures welcome — fork
    carries them for free); *decisions* is a
    :class:`ScheduleDecisions`/:class:`MembershipDecisions`-shaped
    vector; *context* strings together everything outside the vector
    that defines the run (experiment, scenario, seed, fault plan, code
    fingerprint).  Identical context + matching decision prefix ⇒ the
    engine forks the deepest matching holder instead of re-running the
    prefix.
    """

    def __init__(
        self,
        store: SnapshotStore | None = None,
        enabled: bool = True,
        max_captures_per_run: int = MAX_CAPTURES_PER_RUN,
        write_ledger: bool = True,
    ) -> None:
        self.supported = ipc.SUPPORTED
        self.enabled = enabled
        # Not `store or ...`: an empty store is len() == 0, hence falsy.
        self.store = store if store is not None else SnapshotStore()
        self.max_captures_per_run = max_captures_per_run
        self.write_ledger = write_ledger
        self._reg_recv: Any = None
        self._reg_send: Any = None
        if self.active:
            self._reg_recv, self._reg_send = ipc.seqpacket_pair()
            self._reg_recv.setblocking(False)
            # Registration must never block a runner mid-simulation: a
            # full channel raises and the capture is abandoned instead.
            self._reg_send.setblocking(False)

    @property
    def active(self) -> bool:
        """Whether executions may actually capture and fork."""
        return self.supported and self.enabled

    @property
    def stats(self) -> SnapshotStats:
        return self.store.stats

    # -- execution -----------------------------------------------------------

    def execute(self, context: str, decisions: Any, run: Callable[[Any], Any]):
        """Run once under *decisions*, forking a shared prefix if any.

        Returns whatever *run* returned (round-tripped through pickle).
        An exception inside the experiment re-raises here as
        :class:`RemoteRunError` carrying the child's traceback.
        """
        stats = self.stats
        stats.total_decisions += decisions.span()
        if not self.active:
            stats.inline += 1
            return run(NullCheckpointer())
        holder = self.store.best(context, decisions.prefix_digest)
        plan = self._capture_plan(context, decisions, after=holder)
        try:
            if holder is None:
                stats.misses += 1
                envelope = self._run_cold(context, plan, run)
            else:
                envelope = self._run_forked(holder, decisions, plan)
        finally:
            self._drain_registrations()
            if self.write_ledger:
                self.store.write_ledger()
        if envelope is None:
            # The child died without a result (crash, protocol break):
            # degrade to a plain in-process run.
            stats.failures += 1
            if holder is not None:
                self.store.discard(holder)
            return run(NullCheckpointer())
        kind, value, resumed_ns, started_ns = envelope
        if holder is not None:
            stats.fork_hits += 1
            stats.reused_decisions += holder.index
            if resumed_ns is not None:
                stats.fork_ns_total += max(0, resumed_ns - started_ns)
        if kind == "err":
            raise RemoteRunError(value)
        return value

    def _capture_plan(
        self, context: str, decisions: Any, after: _Holder | None
    ) -> dict[int, str]:
        """Capture indices this execution should register holders at."""
        floor = after.index if after is not None else -1
        plan: dict[int, str] = {}
        for index in decisions.capture_indices():
            if index <= floor:
                continue
            digest = decisions.prefix_digest(index)
            if not self.store.has(context, index, digest):
                plan[index] = digest
            if len(plan) >= self.max_captures_per_run:
                break
        return plan

    def _run_cold(
        self, context: str, plan: dict[int, str], run: Callable[[Any], Any]
    ):
        result_read, result_write = os.pipe()
        sys.stdout.flush()
        sys.stderr.flush()
        started_ns = time.monotonic_ns()
        pid = os.fork()
        if pid == 0:
            # The runner.  Drop every orchestrator-side fd first so
            # holders forked below cannot keep each other (or us) alive.
            os.close(result_read)
            self._reg_recv.close()
            for fd in self.store.inherited_fds():
                try:
                    os.close(fd)
                except OSError:
                    pass
            checkpointer = Checkpointer(context, plan, self._reg_send, result_write)
            self._finish_child(checkpointer, run)
        os.close(result_write)
        try:
            envelope = ipc.read_framed(result_read)
        finally:
            os.close(result_read)
            os.waitpid(pid, 0)
        return self._with_start(envelope, started_ns)

    def _run_forked(self, holder: _Holder, decisions: Any, plan: dict[int, str]):
        result_read, result_write = os.pipe()
        started_ns = time.monotonic_ns()
        try:
            ipc.send_msg(
                holder.ctrl,
                (decisions.payload(), plan),
                fds=(result_write,),
            )
        except OSError:
            os.close(result_read)
            os.close(result_write)
            return None
        os.close(result_write)
        try:
            envelope = ipc.read_framed(result_read)
        finally:
            os.close(result_read)
        return self._with_start(envelope, started_ns)

    @staticmethod
    def _with_start(envelope, started_ns: int):
        if envelope is None:
            return None
        kind, value, resumed_ns = envelope
        return kind, value, resumed_ns, started_ns

    def _finish_child(self, checkpointer: Checkpointer, run) -> None:
        """Runner/continuation epilogue: ship the result, then vanish.

        Continuations forked from holders resume *inside* ``run`` and
        return into this very frame, so the result fd is read from the
        checkpointer (the RUN message re-targets it), not from a local.
        """
        try:
            try:
                value = run(checkpointer)
                envelope = ("ok", value, checkpointer.resumed_ns)
            except BaseException:
                envelope = ("err", traceback.format_exc(), checkpointer.resumed_ns)
            try:
                ipc.write_framed(checkpointer.result_fd, envelope)
            except (OSError, ValueError):
                pass
        finally:
            os._exit(0)

    def _drain_registrations(self) -> None:
        if self._reg_recv is None:
            return
        while True:
            try:
                received = ipc.recv_msg(self._reg_recv)
            except (BlockingIOError, OSError):
                return
            if received is None:
                return
            (context, index, digest, capture_ns), fds = received
            if not fds:
                continue
            ctrl = ipc.adopt_socket(fds[0])
            for extra in fds[1:]:
                os.close(extra)
            self.store.put(
                _Holder(context, index, digest, ctrl, capture_ns=capture_ns)
            )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Evict every holder and close the registration channel."""
        self._drain_registrations()
        self.store.close()
        for sock in (self._reg_recv, self._reg_send):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
        self._reg_recv = self._reg_send = None
        if self.write_ledger:
            self.store.write_ledger()

    def __enter__(self) -> "SnapshotEngine":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()


def context_key(*parts: Any, extra: Iterable[Any] = ()) -> str:
    """A stable context string from heterogeneous identifying parts."""
    material = [repr(part) for part in parts] + [repr(p) for p in extra]
    return _digest("|".join(material))
