"""Snapshot/fork execution: copy-on-write world checkpoints.

Re-running a world from t=0 for every explore schedule, ddmin probe or
fault replay costs O(n·T) even when the executions share a long common
prefix.  This package captures a run's complete state at a decision
instant — as a frozen, copy-on-write child process — and forks it to
execute only the differing suffix: O(ΔT) per execution.

* :mod:`repro.snapshot.engine` — the fork server: runners, holders,
  continuations, and the decision-vector abstractions
  (:class:`ScheduleDecisions`, :class:`MembershipDecisions`);
* :mod:`repro.snapshot.store` — the LRU holder store keyed by
  ``(context, index, decision-prefix digest)`` with the
  ``snapshot-ledger/v1`` stats file under ``.repro_cache/snapshots/``;
* :mod:`repro.snapshot.ipc` — SEQPACKET messaging, fd passing and
  framed result pipes.

On platforms without ``os.fork`` the engine stays importable and every
execution runs inline from scratch — same results, no speedup.
"""

from repro.snapshot.engine import (
    Checkpointer,
    MembershipDecisions,
    NullCheckpointer,
    RemoteRunError,
    ScheduleDecisions,
    SnapshotEngine,
    context_key,
)
from repro.snapshot.ipc import SUPPORTED as SNAPSHOTS_SUPPORTED
from repro.snapshot.store import SnapshotStats, SnapshotStore

__all__ = [
    "SnapshotEngine",
    "SnapshotStore",
    "SnapshotStats",
    "Checkpointer",
    "NullCheckpointer",
    "RemoteRunError",
    "ScheduleDecisions",
    "MembershipDecisions",
    "context_key",
    "SNAPSHOTS_SUPPORTED",
]
