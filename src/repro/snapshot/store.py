"""The LRU snapshot store: live holders keyed by decision-trace prefix.

A stored snapshot is a *holder process* — a child frozen at decision
index ``k`` of some run, blocked on its control socket.  The key is
``(context, k, prefix_digest)`` where ``context`` identifies everything
outside the decision vector (experiment, scenario, base seed, fault
plan, code fingerprint) and ``prefix_digest`` hashes the decisions
consumed *before* index ``k``.  Because every source of divergence
between two runs of the same context flows through the decision vector
(preemption delays, fault-replay membership), equal prefixes imply
bit-identical process state at ``k`` — which is what makes a fork from
the deepest shared-prefix holder byte-equivalent to replaying the
prefix from t=0.

Eviction is the cheapest operation in the subsystem: closing our end of
the holder's control socket EOFs its blocking ``recv`` and the process
exits.  The same mechanism cleans up after a crashed orchestrator — no
daemon, no pidfile, no stale state on disk.

What lives under ``.repro_cache/snapshots/`` is therefore *not* the
snapshots themselves (they are process-resident and die with the
session) but the store's ledger: hit/miss/capture/eviction counters and
the holder index, written as ``snapshot-ledger/v1`` JSON so runs and CI
can attribute their speedups.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.obs import fleet

__all__ = ["SnapshotStats", "SnapshotStore", "default_capacity"]

DEFAULT_CAPACITY = 16


def default_capacity() -> int:
    """Holder-process cap from ``REPRO_SNAPSHOT_CAPACITY`` (default 16)."""
    try:
        value = int(os.environ.get("REPRO_SNAPSHOT_CAPACITY", ""))
    except ValueError:
        return DEFAULT_CAPACITY
    return max(1, value) if value else DEFAULT_CAPACITY


@dataclass
class SnapshotStats:
    """Accounting for one engine/store lifetime."""

    #: Executions answered by forking a holder.
    fork_hits: int = 0
    #: Executions that ran from t=0 (no usable shared-prefix holder).
    misses: int = 0
    #: Executions that bypassed the engine (disabled or unsupported).
    inline: int = 0
    #: Holder processes captured.
    captures: int = 0
    #: Holders evicted under LRU pressure (shutdown teardown not counted).
    evictions: int = 0
    #: Forked executions that failed mid-protocol and re-ran inline.
    failures: int = 0
    #: Sum of fork indices — decisions *not* re-executed thanks to COW.
    reused_decisions: int = 0
    #: Sum of decision-vector spans across engine executions.
    total_decisions: int = 0
    capture_ns_total: int = 0
    fork_ns_total: int = 0

    @property
    def capture_ns_mean(self) -> float:
        return self.capture_ns_total / self.captures if self.captures else 0.0

    @property
    def fork_ns_mean(self) -> float:
        return self.fork_ns_total / self.fork_hits if self.fork_hits else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "fork_hits": self.fork_hits,
            "misses": self.misses,
            "inline": self.inline,
            "captures": self.captures,
            "evictions": self.evictions,
            "failures": self.failures,
            "reused_decisions": self.reused_decisions,
            "total_decisions": self.total_decisions,
            "capture_ns_mean": round(self.capture_ns_mean),
            "fork_ns_mean": round(self.fork_ns_mean),
        }

    def describe(self) -> str:
        """One report line: where the executions came from."""
        runs = self.fork_hits + self.misses + self.inline
        return (
            f"snapshots: {self.fork_hits}/{runs} run(s) forked from a "
            f"holder ({self.misses} cold, {self.inline} inline), "
            f"{self.captures} captured, {self.evictions} evicted, "
            f"{self.reused_decisions} decision(s) reused"
        )


@dataclass
class _Holder:
    """Orchestrator-side handle on one frozen holder process."""

    context: str
    index: int
    digest: str
    ctrl: Any  # the control socket; closing it evicts the holder
    capture_ns: int = 0
    forks: int = 0


@dataclass
class SnapshotStore:
    """LRU of live holders plus the on-disk stats ledger."""

    capacity: int = field(default_factory=default_capacity)
    cache_dir: str | Path | None = None
    stats: SnapshotStats = field(default_factory=SnapshotStats)

    def __post_init__(self) -> None:
        self._holders: OrderedDict[tuple[str, int, str], _Holder] = OrderedDict()

    def __len__(self) -> int:
        return len(self._holders)

    def has(self, context: str, index: int, digest: str) -> bool:
        return (context, index, digest) in self._holders

    def put(self, holder: _Holder) -> None:
        """Adopt a freshly registered holder, evicting LRU overflow."""
        key = (holder.context, holder.index, holder.digest)
        existing = self._holders.pop(key, None)
        if existing is not None:
            self._evict(existing)
        self._holders[key] = holder
        self.stats.captures += 1
        self.stats.capture_ns_total += holder.capture_ns
        f = fleet.ACTIVE
        if f.enabled:
            f.inc("fleet.snapshot_store.captures")
        while len(self._holders) > self.capacity:
            _key, evicted = self._holders.popitem(last=False)
            self._evict(evicted)

    def best(
        self, context: str, digest_for: Callable[[int], str]
    ) -> _Holder | None:
        """The deepest holder whose captured prefix matches the probe.

        *digest_for(k)* is the probe's own prefix digest at index *k*;
        a holder is usable iff the probe would have made exactly the
        decisions the holder's run made before its capture point.
        """
        best: _Holder | None = None
        for (ctx, index, digest), holder in self._holders.items():
            if ctx != context:
                continue
            if best is not None and index <= best.index:
                continue
            if digest_for(index) == digest:
                best = holder
        if best is not None:
            self._holders.move_to_end((best.context, best.index, best.digest))
            best.forks += 1
        f = fleet.ACTIVE
        if f.enabled:
            f.inc(
                "fleet.snapshot_store.fork_hits"
                if best is not None
                else "fleet.snapshot_store.fork_misses"
            )
        return best

    def discard(self, holder: _Holder) -> None:
        """Drop a holder that failed mid-protocol."""
        self._holders.pop((holder.context, holder.index, holder.digest), None)
        self._evict(holder)

    def _evict(self, holder: _Holder, count: bool = True) -> None:
        try:
            holder.ctrl.close()
        except OSError:
            pass
        if count:
            self.stats.evictions += 1
            f = fleet.ACTIVE
            if f.enabled:
                f.inc("fleet.snapshot_store.evictions")

    def inherited_fds(self) -> list[int]:
        """Control-socket fds a forked child must close immediately.

        A cold-run child inherits our end of every holder's control
        socket; if a long-lived holder forked inside that child kept
        them open, eviction-by-EOF would silently stop working.
        """
        fds = []
        for holder in self._holders.values():
            try:
                fds.append(holder.ctrl.fileno())
            except OSError:
                continue
        return fds

    def close(self) -> None:
        """Release every holder (their processes exit on EOF).

        Teardown is not LRU pressure, so it does not count as eviction —
        a post-``close`` report still shows how the store behaved live.
        """
        while self._holders:
            _key, holder = self._holders.popitem(last=False)
            self._evict(holder, count=False)

    # -- the on-disk ledger --------------------------------------------------

    def ledger(self) -> dict[str, Any]:
        return {
            "format": "snapshot-ledger/v1",
            "capacity": self.capacity,
            "stats": self.stats.as_dict(),
            "holders": [
                {
                    "context": holder.context[:96],
                    "index": holder.index,
                    "digest": holder.digest,
                    "capture_ns": holder.capture_ns,
                    "forks": holder.forks,
                }
                for holder in self._holders.values()
            ],
        }

    def write_ledger(self) -> Path | None:
        """Persist the ledger under ``<cache_dir>/snapshots/``."""
        base = self.cache_dir or os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
        path = Path(base) / "snapshots" / "ledger.json"
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(self.ledger(), indent=2, sort_keys=True))
        except OSError:
            return None
        return path
