"""Process plumbing for the snapshot engine.

The snapshot subsystem keeps *live* copy-on-write checkpoints: a
``WorldSnapshot`` is a paused child process frozen mid-run, and a fork
is ``os.fork()`` — the kernel's page-table copy-on-write does the
actual state duplication.  That needs three small primitives, all
POSIX-only and kept here so :mod:`repro.snapshot.engine` reads as
protocol, not plumbing:

* **message sockets** — ``AF_UNIX``/``SOCK_SEQPACKET`` socketpairs:
  datagram-like message boundaries *plus* stream-like EOF on close,
  which is what makes "evict a snapshot" as simple as closing our end
  of its control socket;
* **fd passing** — ``socket.send_fds``/``recv_fds`` (SCM_RIGHTS), used
  to hand a freshly captured holder's control socket up to the
  orchestrator and to hand a result pipe down into a forked
  continuation;
* **framed pipes** — length-prefixed pickles over a plain ``os.pipe``
  for run results, which can be larger than one datagram.

Everything degrades cleanly: :data:`SUPPORTED` is ``False`` on
platforms without ``fork``/``SEQPACKET``/fd-passing (Windows, some
macOS builds), and the engine then runs every execution in-process
from scratch — correct, just without the O(ΔT) speedup.
"""

from __future__ import annotations

import os
import pickle
import socket
import struct
from typing import Any

__all__ = [
    "SUPPORTED",
    "SnapshotIpcError",
    "seqpacket_pair",
    "send_msg",
    "recv_msg",
    "adopt_socket",
    "write_framed",
    "read_framed",
]

#: Whether this platform can host live process snapshots at all.
SUPPORTED = (
    hasattr(os, "fork")
    and hasattr(socket, "AF_UNIX")
    and hasattr(socket, "SOCK_SEQPACKET")
    and hasattr(socket, "send_fds")
    and hasattr(socket, "recv_fds")
)

#: One control/registration message must fit one packet.  Decision
#: vectors are sparse site/delay pairs or membership bits — kilobytes,
#: not megabytes; results travel over framed pipes instead.
MAX_MSG = 1 << 20

_LEN = struct.Struct(">Q")


class SnapshotIpcError(RuntimeError):
    """A snapshot control channel broke mid-conversation."""


def seqpacket_pair() -> tuple[socket.socket, socket.socket]:
    """A connected ``AF_UNIX``/``SOCK_SEQPACKET`` socket pair."""
    return socket.socketpair(socket.AF_UNIX, socket.SOCK_SEQPACKET)


def adopt_socket(fd: int) -> socket.socket:
    """Wrap a received raw fd back into a SEQPACKET socket object."""
    return socket.socket(socket.AF_UNIX, socket.SOCK_SEQPACKET, fileno=fd)


def send_msg(sock: socket.socket, obj: Any, fds: tuple[int, ...] = ()) -> None:
    """Send one pickled message (optionally with attached fds)."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_MSG:
        raise SnapshotIpcError(
            f"snapshot message of {len(payload)} bytes exceeds {MAX_MSG}"
        )
    if fds:
        socket.send_fds(sock, [payload], list(fds))
    else:
        sock.send(payload)


def recv_msg(
    sock: socket.socket, max_fds: int = 4
) -> tuple[Any, list[int]] | None:
    """Receive one message; ``None`` on EOF (peer closed = eviction)."""
    payload, fds, _flags, _addr = socket.recv_fds(sock, MAX_MSG, max_fds)
    if not payload:
        for fd in fds:
            os.close(fd)
        return None
    return pickle.loads(payload), list(fds)


def write_framed(fd: int, obj: Any) -> None:
    """Write one length-prefixed pickle to a raw pipe fd."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    data = _LEN.pack(len(payload)) + payload
    view = memoryview(data)
    while view:
        view = view[os.write(fd, view) :]


def _read_exactly(fd: int, count: int) -> bytes | None:
    chunks: list[bytes] = []
    while count:
        chunk = os.read(fd, count)
        if not chunk:
            return None
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def read_framed(fd: int) -> Any | None:
    """Read one framed pickle; ``None`` on EOF (writer died silently)."""
    header = _read_exactly(fd, _LEN.size)
    if header is None:
        return None
    payload = _read_exactly(fd, _LEN.unpack(header)[0])
    if payload is None:
        return None
    return pickle.loads(payload)
