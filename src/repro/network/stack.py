"""Per-platform network interfaces and sockets.

A :class:`NetworkInterface` is a platform's NIC: it owns the port
namespace and hands received frames to bound :class:`Socket` objects.
Delivery happens in kernel-event context (a "NIC interrupt"); the socket
posts the payload into a simulated-thread message queue, from which
middleware threads read — the same structure as a real UDP stack under a
SOME/IP daemon.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import NetworkError
from repro.network.switch import CorruptedPayload, Frame, Switch
from repro.obs import context as obs_context
from repro.obs.bus import TRACK_NETWORK
from repro.obs.flows import (
    CAUSE_FCS,
    CAUSE_QUEUE_OVERFLOW,
    CAUSE_UNBOUND_PORT,
    LAYER_NIC,
    LAYER_SOCKET,
    attribute_drop,
)
from repro.sim.platform import Platform
from repro.sim.sync import MessageQueue


class Socket:
    """A datagram socket bound to ``(host, port)``.

    Received payloads land in :attr:`rx`, a message queue readable from
    simulated threads with ``yield from socket.rx.get()``.  Alternatively
    an ``on_receive`` callback (kernel context — must not block) can be
    installed; it is invoked *instead of* queueing.
    """

    def __init__(
        self,
        interface: "NetworkInterface",
        port: int,
        rx_capacity: int | None = None,
    ) -> None:
        self._interface = interface
        self.port = port
        self.rx: MessageQueue = interface.platform.queue(
            name=f"sock{port}.rx", capacity=rx_capacity, overflow="drop-new"
        )
        self.on_receive: Callable[[Frame], None] | None = None
        self.received = 0
        self.sent = 0
        #: Frames the rx queue's drop-new overflow policy discarded.
        self.rx_dropped = 0

    @property
    def host(self) -> str:
        """The host this socket lives on."""
        return self._interface.host

    def send(
        self, dst_host: str, dst_port: int, payload: Any, size_bytes: int
    ) -> None:
        """Send *payload* to ``(dst_host, dst_port)``.

        Callable from both thread context and kernel context; transmission
        is asynchronous (fire-and-forget), like ``sendto`` on a datagram
        socket that never blocks.
        """
        self.sent += 1
        self._interface.transmit(
            Frame(
                src_host=self.host,
                src_port=self.port,
                dst_host=dst_host,
                dst_port=dst_port,
                payload=payload,
                size_bytes=size_bytes,
            )
        )

    def _deliver(self, frame: Frame) -> None:
        self.received += 1
        if self.on_receive is not None:
            self.on_receive(frame)
        elif not self.rx.post(frame):
            self.rx_dropped += 1
            o = obs_context.ACTIVE
            if o.enabled:
                o.metrics.counter("net.socket_rx_dropped").inc()
                o.bus.instant(
                    TRACK_NETWORK,
                    f"rx-overflow {self.host}:{self.port}",
                    self._interface.platform.sim.now,
                    o.wall_ns(),
                )
                attribute_drop(
                    o,
                    LAYER_SOCKET,
                    CAUSE_QUEUE_OVERFLOW,
                    self._interface.platform.sim.now,
                )

    def close(self) -> None:
        """Unbind the socket from its interface."""
        self._interface._unbind(self.port)


class NetworkInterface:
    """A platform's NIC, registered with the switch."""

    def __init__(self, platform: Platform, switch: Switch) -> None:
        self.platform = platform
        self._switch = switch
        self._sockets: dict[int, Socket] = {}
        self._next_ephemeral = 49152
        #: Frames discarded on arrival because their payload was
        #: corrupted in flight (an FCS/checksum failure).
        self.fcs_dropped = 0
        switch.register(self)
        platform.attachments["nic"] = self

    @property
    def host(self) -> str:
        """The host name (the platform name)."""
        return self.platform.name

    def bind(self, port: int | None = None, rx_capacity: int | None = None) -> Socket:
        """Create a socket on *port* (or an ephemeral port if ``None``)."""
        if port is None:
            port = self._next_ephemeral
            while port in self._sockets:
                port += 1
            self._next_ephemeral = port + 1
        if port in self._sockets:
            raise NetworkError(f"port {port} already bound on {self.host!r}")
        socket = Socket(self, port, rx_capacity)
        self._sockets[port] = socket
        return socket

    def transmit(self, frame: Frame) -> None:
        """Hand a frame to the switch."""
        self._switch.send(frame)

    def deliver(self, frame: Frame) -> None:
        """Called by the switch when a frame arrives for this host."""
        o = obs_context.ACTIVE
        flows = o.flows if o.enabled else None
        swapped = False
        previous = None
        if flows is not None:
            # Re-establish the frame's flow as the current kernel-chain
            # flow for the synchronous delivery path below (socket ->
            # SOME/IP dispatch -> DEAR transactor ingress).
            flow = flows.frame_arrived(frame)
            if flow is not None:
                previous = flows.swap_current(flow)
                swapped = True
                flows.hop(
                    flow,
                    LAYER_NIC,
                    f"rx {self.host}:{frame.dst_port}",
                    self.platform.sim.now,
                )
        try:
            if isinstance(frame.payload, CorruptedPayload):
                # A corrupted frame fails the FCS check and never reaches
                # a socket — corruption manifests as (counted) loss.
                self.fcs_dropped += 1
                if o.enabled:
                    o.metrics.counter("net.fcs_dropped").inc()
                    o.bus.instant(
                        TRACK_NETWORK,
                        f"fcs-drop {self.host}:{frame.dst_port}",
                        self.platform.sim.now,
                        o.wall_ns(),
                    )
                    attribute_drop(o, LAYER_NIC, CAUSE_FCS, self.platform.sim.now)
                return
            socket = self._sockets.get(frame.dst_port)
            if socket is None:
                # Real stacks drop datagrams for unbound ports.
                if o.enabled:
                    attribute_drop(
                        o, LAYER_NIC, CAUSE_UNBOUND_PORT, self.platform.sim.now
                    )
                return
            socket._deliver(frame)
        finally:
            if swapped:
                flows.restore_current(previous)

    def _unbind(self, port: int) -> None:
        self._sockets.pop(port, None)

    def __repr__(self) -> str:
        return f"NetworkInterface({self.host!r}, ports={sorted(self._sockets)})"
