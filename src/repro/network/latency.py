"""Latency distributions for links and switches.

Each model's :meth:`~LatencyModel.sample` draws one delay in nanoseconds
from the stream passed in, and :meth:`~LatencyModel.bound` reports an
upper bound (when one exists) — the ``L`` that the DEAR safe-to-process
rule needs.  Models whose tail is unbounded report a high quantile and
are intended for experiments that *violate* the bounded-latency
assumption on purpose.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, fields
from typing import Any, Protocol


class LatencyModel(Protocol):
    """A distribution of one-way transport delays."""

    def sample(self, rng: random.Random) -> int:
        """Draw one delay in nanoseconds."""
        ...

    def bound(self) -> int:
        """An upper bound (or high quantile) on the delay, in nanoseconds."""
        ...


@dataclass(frozen=True, slots=True)
class ConstantLatency:
    """Always exactly *value_ns*."""

    value_ns: int

    def sample(self, rng: random.Random) -> int:
        return self.value_ns

    def bound(self) -> int:
        return self.value_ns


@dataclass(frozen=True, slots=True)
class UniformLatency:
    """Uniform between *low_ns* and *high_ns* inclusive."""

    low_ns: int
    high_ns: int

    def __post_init__(self) -> None:
        if not 0 <= self.low_ns <= self.high_ns:
            raise ValueError("need 0 <= low <= high")

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.low_ns, self.high_ns)

    def bound(self) -> int:
        return self.high_ns


@dataclass(frozen=True, slots=True)
class GammaLatency:
    """A base delay plus a gamma-distributed tail.

    Shaped like real LAN latency: a hard floor (propagation +
    store-and-forward) with a right-skewed queueing tail.  ``bound``
    reports ``base + tail_cut_ns`` and samples are truncated there, so the
    model is compatible with the paper's bounded-latency assumption while
    still having a realistic shape.
    """

    base_ns: int
    shape: float = 2.0
    scale_ns: int = 50_000
    tail_cut_sigma: float = 8.0

    def _tail_cut(self) -> int:
        mean = self.shape * self.scale_ns
        sigma = math.sqrt(self.shape) * self.scale_ns
        return int(mean + self.tail_cut_sigma * sigma)

    def sample(self, rng: random.Random) -> int:
        tail = int(rng.gammavariate(self.shape, self.scale_ns))
        return self.base_ns + min(tail, self._tail_cut())

    def bound(self) -> int:
        return self.base_ns + self._tail_cut()


@dataclass(frozen=True, slots=True)
class SpikyLatency:
    """A base model with occasional large spikes.

    Used to model transient congestion and to test what happens when the
    actual delay exceeds the ``L`` assumed by safe-to-process analysis:
    ``bound`` deliberately reports only the base model's bound.
    """

    base: LatencyModel
    spike_probability: float
    spike_ns: int

    def sample(self, rng: random.Random) -> int:
        delay = self.base.sample(rng)
        if rng.random() < self.spike_probability:
            delay += self.spike_ns
        return delay

    def bound(self) -> int:
        return self.base.bound()


_LATENCY_MODELS: dict[str, type] = {
    cls.__name__: cls
    for cls in (ConstantLatency, UniformLatency, GammaLatency, SpikyLatency)
}


def latency_model_to_dict(model: LatencyModel) -> dict:
    """JSON form of any of the built-in latency models."""
    name = type(model).__name__
    if name not in _LATENCY_MODELS:
        raise ValueError(
            f"cannot serialize latency model {name!r}; "
            f"known: {sorted(_LATENCY_MODELS)}"
        )
    out: dict[str, Any] = {"model": name}
    for f in fields(model):
        value = getattr(model, f.name)
        out[f.name] = (
            latency_model_to_dict(value) if f.name == "base" else value
        )
    return out


def latency_model_from_dict(data: dict) -> LatencyModel:
    """Inverse of :func:`latency_model_to_dict`."""
    kwargs = dict(data)
    name = kwargs.pop("model")
    cls = _LATENCY_MODELS.get(name)
    if cls is None:
        raise ValueError(f"unknown latency model {name!r}")
    if "base" in kwargs:
        kwargs["base"] = latency_model_from_dict(kwargs["base"])
    return cls(**kwargs)
