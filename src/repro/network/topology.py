"""First-class network topologies: :class:`TopologySpec`.

A topology names the ECUs (*nodes*), the switches, and the links that
join them.  Every link may carry its own :class:`LatencyModel` and
serialization rate, so a fabric can mix fast local legs with a slow
shared trunk.  Routing is deterministic: breadth-first shortest path
over the switch graph with lexicographic tie-breaking, so the same
topology always yields the same route for a given (src, dst) pair — a
precondition for the repo's bit-reproducibility guarantees.

The historical single-:class:`~repro.network.switch.Switch` world is the
*trivial* instance — one switch, every node one hop away, no per-link
overrides — and :class:`~repro.network.switch.Switch` treats it exactly
like the legacy configuration, draw for draw.

``latency_bound`` sums per-link bounds plus the MTU serialization time
along the worst route.  It deliberately excludes output-queue waits:
contention beyond the declared ``L`` must surface as flagged STP
violations (the same policy as :class:`SpikyLatency.bound`), not be
hidden inside an inflated bound.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import NetworkError
from repro.network.latency import (
    LatencyModel,
    latency_model_from_dict,
    latency_model_to_dict,
)

__all__ = ["Link", "Route", "TopologySpec"]

_MTU_BYTES = 1500


@dataclass(frozen=True)
class Link:
    """One full-duplex cable between two named endpoints.

    ``latency`` and ``ns_per_byte`` override the fabric-wide defaults
    (the enclosing :class:`~repro.network.switch.SwitchConfig` values)
    for this link only; ``None`` inherits.
    """

    a: str
    b: str
    latency: LatencyModel | None = None
    ns_per_byte: int | None = None

    def __post_init__(self) -> None:
        if not self.a or not self.b:
            raise NetworkError("link endpoints need names")
        if self.a == self.b:
            raise NetworkError(f"link cannot loop {self.a!r} onto itself")

    @property
    def key(self) -> tuple[str, str]:
        """Direction-independent identity of this link."""
        return (self.a, self.b) if self.a <= self.b else (self.b, self.a)

    def other(self, endpoint: str) -> str:
        """The endpoint opposite *endpoint*."""
        return self.b if endpoint == self.a else self.a

    def to_dict(self) -> dict:
        out: dict = {"a": self.a, "b": self.b}
        if self.latency is not None:
            out["latency"] = latency_model_to_dict(self.latency)
        if self.ns_per_byte is not None:
            out["ns_per_byte"] = self.ns_per_byte
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Link":
        latency = data.get("latency")
        return cls(
            a=data["a"],
            b=data["b"],
            latency=None if latency is None else latency_model_from_dict(latency),
            ns_per_byte=data.get("ns_per_byte"),
        )


@dataclass(frozen=True)
class Route:
    """The deterministic path one frame takes through a fabric."""

    links: tuple[Link, ...]
    switches: tuple[str, ...]

    @property
    def link_keys(self) -> tuple[tuple[str, str], ...]:
        return tuple(link.key for link in self.links)


@dataclass(frozen=True)
class TopologySpec:
    """Nodes, switches and links of one experiment's network fabric.

    Invariants enforced at construction: names are unique across nodes
    and switches, every link endpoint is known, every link touches at
    least one switch (node-to-node cables would bypass the fabric), each
    node hangs off exactly one switch port, and the whole fabric is
    connected.
    """

    nodes: tuple[str, ...]
    switches: tuple[str, ...] = ("sw0",)
    links: tuple[Link, ...] = ()
    _adjacency: dict = field(
        default_factory=dict, init=False, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", tuple(self.nodes))
        object.__setattr__(self, "switches", tuple(self.switches))
        object.__setattr__(self, "links", tuple(self.links))
        if not self.nodes:
            raise NetworkError("a topology needs at least one node")
        if not self.switches:
            raise NetworkError("a topology needs at least one switch")
        names = list(self.nodes) + list(self.switches)
        if len(set(names)) != len(names):
            raise NetworkError("node/switch names must be unique")
        node_set, switch_set = set(self.nodes), set(self.switches)
        seen_keys: set[tuple[str, str]] = set()
        node_degree: dict[str, int] = {n: 0 for n in self.nodes}
        adjacency: dict[str, list[tuple[str, Link]]] = {n: [] for n in names}
        for link in self.links:
            for end in (link.a, link.b):
                if end not in node_set and end not in switch_set:
                    raise NetworkError(f"link endpoint {end!r} is not declared")
            if link.a in node_set and link.b in node_set:
                raise NetworkError(
                    f"link {link.a!r}--{link.b!r} bypasses the fabric: "
                    "every link must touch a switch"
                )
            if link.key in seen_keys:
                raise NetworkError(f"duplicate link {link.key}")
            seen_keys.add(link.key)
            for end in (link.a, link.b):
                if end in node_degree:
                    node_degree[end] += 1
            adjacency[link.a].append((link.b, link))
            adjacency[link.b].append((link.a, link))
        for node, degree in node_degree.items():
            if degree != 1:
                raise NetworkError(
                    f"node {node!r} must attach to exactly one switch "
                    f"(has {degree} links)"
                )
        for name in adjacency:
            adjacency[name].sort(key=lambda pair: pair[0])
        object.__setattr__(self, "_adjacency", adjacency)
        reached = self._reachable(names[0])
        if len(reached) != len(names):
            missing = sorted(set(names) - reached)
            raise NetworkError(f"fabric is not connected: unreachable {missing}")

    def _reachable(self, start: str) -> set[str]:
        seen = {start}
        queue = deque([start])
        while queue:
            here = queue.popleft()
            for neighbour, _ in self._adjacency[here]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    queue.append(neighbour)
        return seen

    # -- shape --------------------------------------------------------------

    @property
    def is_trivial(self) -> bool:
        """True when this fabric behaves exactly like the legacy switch.

        One switch, no per-link latency or bandwidth overrides: every
        node is one hop away and the enclosing ``SwitchConfig`` knobs
        describe the whole network, so the legacy single-draw hot path
        applies unchanged.
        """
        return len(self.switches) == 1 and all(
            link.latency is None and link.ns_per_byte is None
            for link in self.links
        )

    # -- routing ------------------------------------------------------------

    def route(self, src: str, dst: str) -> Route:
        """The deterministic shortest path from *src* to *dst*.

        BFS over the fabric with neighbours visited in sorted name
        order, so ties always break the same way on every host and
        every run.
        """
        for end in (src, dst):
            if end not in self._adjacency:
                raise NetworkError(f"unknown endpoint {end!r}")
        if src == dst:
            return Route(links=(), switches=())
        parents: dict[str, tuple[str, Link]] = {}
        seen = {src}
        queue = deque([src])
        while queue:
            here = queue.popleft()
            if here == dst:
                break
            for neighbour, link in self._adjacency[here]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    parents[neighbour] = (here, link)
                    queue.append(neighbour)
        if dst not in seen:
            raise NetworkError(f"no route from {src!r} to {dst!r}")
        links: list[Link] = []
        here = dst
        while here != src:
            prev, link = parents[here]
            links.append(link)
            here = prev
        links.reverse()
        switch_set = set(self.switches)
        ordered: list[str] = [src]
        for link in links:
            ordered.append(link.other(ordered[-1]))
        switches = tuple(name for name in ordered if name in switch_set)
        return Route(links=tuple(links), switches=switches)

    # -- bounds -------------------------------------------------------------

    def latency_bound(
        self,
        default_latency: LatencyModel,
        default_ns_per_byte: int,
        mtu_bytes: int = _MTU_BYTES,
    ) -> int:
        """Worst-case end-to-end transport bound over any node pair.

        Sums each route link's latency bound plus MTU serialization at
        the link's rate.  Queueing waits at shared links are excluded on
        purpose — see the module docstring.
        """
        worst = 0
        for i, src in enumerate(self.nodes):
            for dst in self.nodes[i + 1 :]:
                total = 0
                for link in self.route(src, dst).links:
                    model = link.latency or default_latency
                    rate = (
                        link.ns_per_byte
                        if link.ns_per_byte is not None
                        else default_ns_per_byte
                    )
                    total += model.bound() + mtu_bytes * rate
                worst = max(worst, total)
        return worst

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format": "topology/v1",
            "nodes": list(self.nodes),
            "switches": list(self.switches),
            "links": [link.to_dict() for link in self.links],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TopologySpec":
        if data.get("format") != "topology/v1":
            raise ValueError(f"not a topology: {data.get('format')!r}")
        return cls(
            nodes=tuple(data.get("nodes", ())),
            switches=tuple(data.get("switches", ("sw0",))),
            links=tuple(Link.from_dict(entry) for entry in data.get("links", ())),
        )

    # -- constructors -------------------------------------------------------

    @classmethod
    def trivial(cls, nodes: tuple[str, ...], switch: str = "sw0") -> "TopologySpec":
        """The legacy shape: every node on one switch, no overrides."""
        return cls.star(nodes, switch=switch)

    @classmethod
    def star(
        cls,
        nodes: tuple[str, ...],
        switch: str = "sw0",
        latency: LatencyModel | None = None,
        ns_per_byte: int | None = None,
    ) -> "TopologySpec":
        """All *nodes* on a single *switch*, sharing one link profile."""
        return cls(
            nodes=tuple(nodes),
            switches=(switch,),
            links=tuple(
                Link(node, switch, latency=latency, ns_per_byte=ns_per_byte)
                for node in nodes
            ),
        )

    @classmethod
    def chain(
        cls,
        groups: tuple[tuple[str, ...], ...],
        switch_prefix: str = "sw",
        trunk_latency: LatencyModel | None = None,
        trunk_ns_per_byte: int | None = None,
    ) -> "TopologySpec":
        """A linear fabric: one switch per group, trunks in between.

        ``groups[i]``'s nodes hang off switch ``f"{switch_prefix}{i}"``;
        consecutive switches are joined by trunk links carrying the
        given overrides (the classic shared-uplink shape).
        """
        switches = tuple(f"{switch_prefix}{i}" for i in range(len(groups)))
        links: list[Link] = []
        nodes: list[str] = []
        for i, group in enumerate(groups):
            for node in group:
                nodes.append(node)
                links.append(Link(node, switches[i]))
        for left, right in zip(switches, switches[1:]):
            links.append(
                Link(
                    left,
                    right,
                    latency=trunk_latency,
                    ns_per_byte=trunk_ns_per_byte,
                )
            )
        return cls(nodes=tuple(nodes), switches=switches, links=tuple(links))
