"""A store-and-forward switch connecting the platforms.

Frames are addressed ``(host, port) -> (host, port)``.  The switch draws
a transport delay per frame from its latency models, optionally enforces
per-flow FIFO (TCP-like) ordering, and can drop frames with a configured
probability.  Same-host traffic takes a loopback path with its own
(small) latency model — local SOME/IP communication still costs time, as
it does through a real loopback interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any

from repro.errors import NetworkError
from repro.network.latency import GammaLatency, LatencyModel, UniformLatency
from repro.network.topology import Route, TopologySpec
from repro.obs import context as obs_context
from repro.obs.bus import TRACK_NETWORK
from repro.obs.flows import (
    CAUSE_RANDOM_DROP,
    FAULT_DROP_CAUSES,
    LAYER_SWITCH,
    attribute_drop,
)
from repro.sim.core import Simulator
from repro.time.duration import US

if TYPE_CHECKING:
    from repro.network.stack import NetworkInterface


@dataclass(frozen=True, slots=True)
class Frame:
    """One datagram in flight."""

    src_host: str
    src_port: int
    dst_host: str
    dst_port: int
    payload: Any
    size_bytes: int


@dataclass(frozen=True, slots=True)
class CorruptedPayload:
    """A payload mangled in flight by an injected corruption fault.

    Real NICs drop frames whose checksum fails; the receiving
    :class:`NetworkInterface` does the same (and counts it), so a
    corruption is observable loss — never silently delivered data.
    """

    original: Any


@dataclass(frozen=True, slots=True)
class SwitchConfig:
    """Behavioural knobs of the network.

    ``in_order`` selects per-flow FIFO delivery (a flow is one
    ``(src_host, dst_host)`` pair).  The paper notes AP does not formally
    require in-order delivery; both settings are therefore interesting.

    ``topology`` selects a multi-switch fabric (see
    :class:`~repro.network.topology.TopologySpec`).  ``None`` — or a
    trivial topology — keeps the legacy single-switch behaviour, draw
    for draw; a non-trivial fabric routes each frame hop by hop with
    per-link latency, serialization and output-queue contention.
    """

    latency: LatencyModel = field(
        default_factory=lambda: GammaLatency(base_ns=200 * US, scale_ns=50 * US)
    )
    loopback_latency: LatencyModel = field(
        default_factory=lambda: UniformLatency(10 * US, 80 * US)
    )
    in_order: bool = True
    drop_probability: float = 0.0
    #: Serialization delay per byte (8 ns/byte ~ 1 Gbit/s), applied per frame.
    ns_per_byte: int = 8
    topology: TopologySpec | None = None


class Switch:
    """The network fabric: routes frames between registered interfaces."""

    def __init__(self, sim: Simulator, rng, config: SwitchConfig | None = None):
        self._sim = sim
        self._rng = rng
        self.config = config or SwitchConfig()
        topology = self.config.topology
        #: Non-trivial fabric, or ``None`` for the legacy hot path.
        self._fabric: TopologySpec | None = (
            topology if topology is not None and not topology.is_trivial else None
        )
        #: Resolved (src, dst) -> Route cache (routing is deterministic).
        self._routes: dict[tuple[str, str], Route] = {}
        #: Per-link output-queue horizon: when the link is next free.
        self._link_busy: dict[tuple[str, str], int] = {}
        self._interfaces: dict[str, "NetworkInterface"] = {}
        #: Last scheduled arrival per (src_host, dst_host) flow, for FIFO.
        self._flow_horizon: dict[tuple[str, str], int] = {}
        #: Installed fault injector (``repro.faults``), or ``None``.
        self._faults = None
        self.frames_sent = 0
        self.frames_dropped = 0
        self.total_bytes = 0

    def attach_faults(self, injector) -> None:
        """Install a fault injector consulted once per frame.

        The injector is asked *after* the latency draw, so installing a
        plan never perturbs the ``net`` stream's draw order — a dropped
        frame still consumes exactly the delay sample it would have used.
        """
        self._faults = injector

    def register(self, interface: "NetworkInterface") -> None:
        """Attach a platform's network interface to the switch."""
        if interface.host in self._interfaces:
            raise NetworkError(f"host {interface.host!r} already registered")
        if self._fabric is not None and interface.host not in self._fabric.nodes:
            raise NetworkError(
                f"host {interface.host!r} is not a node of the topology"
            )
        self._interfaces[interface.host] = interface

    def hosts(self) -> list[str]:
        """Names of the registered hosts."""
        return sorted(self._interfaces)

    def latency_bound(self) -> int:
        """Upper bound on one-way transport delay, for safe-to-process ``L``.

        Includes the serialization term for a generous frame size (1500 B
        MTU), so a configuration can use this directly as its ``L``.  On
        a fabric, the bound is the worst route's per-link sum (queueing
        waits excluded — see :mod:`repro.network.topology`).
        """
        loop = self.config.loopback_latency.bound() + 1500 * self.config.ns_per_byte
        if self._fabric is not None:
            return max(
                self._fabric.latency_bound(
                    self.config.latency, self.config.ns_per_byte
                ),
                loop,
            )
        wire = max(self.config.latency.bound(), self.config.loopback_latency.bound())
        return wire + 1500 * self.config.ns_per_byte

    def send(self, frame: Frame) -> None:
        """Route *frame* to its destination host with a sampled delay."""
        destination = self._interfaces.get(frame.dst_host)
        if destination is None:
            raise NetworkError(f"unknown destination host {frame.dst_host!r}")
        self.frames_sent += 1
        self.total_bytes += frame.size_bytes
        o = obs_context.ACTIVE
        if o.enabled:
            o.metrics.counter("net.frames_sent").inc()
        if (
            self.config.drop_probability > 0.0
            and self._rng.random() < self.config.drop_probability
        ):
            self.frames_dropped += 1
            if o.enabled:
                o.metrics.counter("net.frames_dropped").inc()
                o.bus.instant(
                    TRACK_NETWORK,
                    f"drop {frame.src_host}->{frame.dst_host}",
                    self._sim.now,
                    o.wall_ns(),
                    dst_port=frame.dst_port,
                    bytes=frame.size_bytes,
                )
                attribute_drop(o, LAYER_SWITCH, CAUSE_RANDOM_DROP, self._sim.now)
            return
        route: Route | None = None
        if frame.src_host == frame.dst_host:
            delay = self.config.loopback_latency.sample(self._rng)
            delay += frame.size_bytes * self.config.ns_per_byte
        elif self._fabric is not None:
            delay, route = self._fabric_delay(frame)
        else:
            delay = self.config.latency.sample(self._rng)
            delay += frame.size_bytes * self.config.ns_per_byte
        # Faults are consulted after the latency draw(s) so the ``net``
        # stream's sequence is identical with and without a plan.
        verdict = None if self._faults is None else self._faults.on_send(
            frame, self._sim.now, route=route
        )
        if verdict is not None:
            if verdict.drop is not None:
                self.frames_dropped += 1
                if o.enabled:
                    o.metrics.counter("net.frames_dropped").inc()
                    o.bus.instant(
                        TRACK_NETWORK,
                        f"{verdict.drop} {frame.src_host}->{frame.dst_host}",
                        self._sim.now,
                        o.wall_ns(),
                        dst_port=frame.dst_port,
                        bytes=frame.size_bytes,
                    )
                    attribute_drop(
                        o,
                        LAYER_SWITCH,
                        FAULT_DROP_CAUSES.get(verdict.drop, verdict.drop),
                        self._sim.now,
                    )
                return
            if verdict.corrupt:
                frame = replace(frame, payload=CorruptedPayload(frame.payload))
            delay += verdict.extra_delay_ns
        arrival = self._sim.now + delay
        in_order = self.config.in_order and not (
            verdict is not None and verdict.bypass_fifo
        )
        if in_order:
            flow = (frame.src_host, frame.dst_host)
            horizon = self._flow_horizon.get(flow, 0)
            if arrival <= horizon:
                arrival = horizon + 1
            self._flow_horizon[flow] = arrival
        if o.enabled:
            o.metrics.histogram("net.latency_ns").observe(arrival - self._sim.now)
            o.bus.span(
                TRACK_NETWORK,
                f"{frame.src_host}->{frame.dst_host}",
                self._sim.now,
                arrival,
                o.wall_ns(),
                bytes=frame.size_bytes,
                dst_port=frame.dst_port,
            )
            flows = o.flows
            if flows is not None and flows.current is not None:
                # Register the *final* frame object (after any corrupt
                # replacement); a duplicate verdict delivers the same
                # object twice, hence a second in-flight registration.
                flows.hop(
                    flows.current,
                    LAYER_SWITCH,
                    f"{frame.src_host}->{frame.dst_host}",
                    self._sim.now,
                )
                flows.frame_sent(frame, flows.current)
                if verdict is not None and verdict.duplicate_delay_ns is not None:
                    flows.frame_sent(frame, flows.current)
        self._sim.post_at(arrival, lambda: destination.deliver(frame))
        if verdict is not None and verdict.duplicate_delay_ns is not None:
            self._sim.post_at(
                arrival + verdict.duplicate_delay_ns,
                lambda: destination.deliver(frame),
            )

    def _fabric_delay(self, frame: Frame) -> tuple[int, Route]:
        """Store-and-forward delay over the frame's deterministic route.

        Each hop pays serialization at the link's rate (queueing behind
        frames already committed to the link's output port) plus one
        draw from the link's latency model, in route order — so the
        ``net`` stream's draw sequence is a pure function of the frame
        sequence, independent of wall effects.
        """
        pair = (frame.src_host, frame.dst_host)
        route = self._routes.get(pair)
        if route is None:
            route = self._fabric.route(frame.src_host, frame.dst_host)
            self._routes[pair] = route
        cursor = self._sim.now
        for link in route.links:
            rate = (
                link.ns_per_byte
                if link.ns_per_byte is not None
                else self.config.ns_per_byte
            )
            start = max(cursor, self._link_busy.get(link.key, 0))
            serialization = frame.size_bytes * rate
            self._link_busy[link.key] = start + serialization
            model = link.latency or self.config.latency
            cursor = start + serialization + model.sample(self._rng)
        return cursor - self._sim.now, route

    def __repr__(self) -> str:
        return (
            f"Switch(hosts={self.hosts()}, sent={self.frames_sent}, "
            f"dropped={self.frames_dropped})"
        )
