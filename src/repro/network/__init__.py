"""Simulated network substrate.

Models the paper's evaluation network (two boards on an Ethernet switch)
and, more importantly, the **third source of nondeterminism**: message
transport with unpredictable delay and — unless a flow is configured
in-order — possible reordering.

Layers:

* :mod:`repro.network.latency` — pluggable delay distributions;
* :mod:`repro.network.topology` — multi-switch fabrics with per-link
  latency/bandwidth and deterministic routing;
* :mod:`repro.network.switch` — a store-and-forward switch routing frames
  between hosts (plus a loopback path for same-host traffic);
* :mod:`repro.network.stack` — per-platform network interfaces and
  datagram sockets that deliver into simulated-thread message queues.
"""

from repro.network.latency import (
    ConstantLatency,
    GammaLatency,
    LatencyModel,
    SpikyLatency,
    UniformLatency,
    latency_model_from_dict,
    latency_model_to_dict,
)
from repro.network.switch import CorruptedPayload, Frame, Switch, SwitchConfig
from repro.network.stack import NetworkInterface, Socket
from repro.network.topology import Link, Route, TopologySpec

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "GammaLatency",
    "SpikyLatency",
    "latency_model_to_dict",
    "latency_model_from_dict",
    "CorruptedPayload",
    "Frame",
    "Switch",
    "SwitchConfig",
    "Link",
    "Route",
    "TopologySpec",
    "NetworkInterface",
    "Socket",
]
