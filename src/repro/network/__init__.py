"""Simulated network substrate.

Models the paper's evaluation network (two boards on an Ethernet switch)
and, more importantly, the **third source of nondeterminism**: message
transport with unpredictable delay and — unless a flow is configured
in-order — possible reordering.

Layers:

* :mod:`repro.network.latency` — pluggable delay distributions;
* :mod:`repro.network.switch` — a store-and-forward switch routing frames
  between hosts (plus a loopback path for same-host traffic);
* :mod:`repro.network.stack` — per-platform network interfaces and
  datagram sockets that deliver into simulated-thread message queues.
"""

from repro.network.latency import (
    ConstantLatency,
    GammaLatency,
    LatencyModel,
    SpikyLatency,
    UniformLatency,
)
from repro.network.switch import CorruptedPayload, Frame, Switch, SwitchConfig
from repro.network.stack import NetworkInterface, Socket

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "GammaLatency",
    "SpikyLatency",
    "CorruptedPayload",
    "Frame",
    "Switch",
    "SwitchConfig",
    "NetworkInterface",
    "Socket",
]
