"""Distributed sweep service: multi-host scenario campaigns over HTTP.

:class:`SweepRunner` (PR 1) fans one sweep over a local process pool;
this package turns sweeps into *campaigns* served by a shared worker
fleet, the workload shape of the paper's evaluation (100k-frame ×
20-run sweeps) run as heavy-traffic infrastructure:

* :mod:`repro.service.store` — a content-addressed result store
  generalizing the JSONL sweep cache: records keyed on
  spec-hash × code-fingerprint, advisory-locked atomic appends safe for
  concurrent writers, torn-line tolerance and compaction, so a
  re-submitted campaign is a pure cache hit across hosts.
* :mod:`repro.service.coordinator` — accepts
  :class:`~repro.harness.ScenarioSpec` campaign submissions, shards
  them into per-seed-chunk jobs and runs the job queue: lease/heartbeat
  tracking, retry with exponential backoff, per-job timeouts,
  worker-death requeue and terminal failure capture
  (:class:`~repro.harness.SeedOutcome`-compatible, never silent).
* :mod:`repro.service.worker` — the worker loop: registers with the
  coordinator, leases jobs under a heartbeat, executes them through the
  existing ``SweepRunner.run_spec`` path and streams results back.
* :mod:`repro.service.http` — the ``sweep-service/v1`` JSON API
  (stdlib ``http.server``; submit/status/result/report/workers plus the
  worker-facing lease endpoints), the matching
  :class:`~repro.service.http.HttpClient`, and
  :class:`~repro.service.http.LocalService`, the one-host mode that
  spawns in-process workers over loopback HTTP so every driver and
  test can exercise the full distributed path.

The fleet observes itself through :mod:`repro.obs.fleet`: coordinator,
workers, stores and the sweep engine feed a process-global metrics
registry served as Prometheus text at ``GET /metrics``, job lifecycles
are stamped into per-campaign timelines renderable as a Perfetto fleet
trace, and every campaign report embeds a cross-worker
``fleet-metrics/v1`` merge.  Telemetry is enabled by the service entry
points (``REPRO_FLEET_TELEMETRY=0`` opts out) and never perturbs
experiment results.

The core invariant — property-tested in ``tests/test_service.py`` —
is that a campaign merged from any number of workers on any number of
hosts is **byte-identical** to ``SweepRunner.run_spec`` on one host:
results merge in seed order exactly as the local engine merges them.
"""

from repro.service.coordinator import (
    Campaign,
    Coordinator,
    CoordinatorConfig,
    Job,
)
from repro.service.http import (
    HttpClient,
    LocalClient,
    LocalService,
    ServiceError,
    ServiceServer,
    merged_values,
    seed_outcomes,
    serve,
)
from repro.service.store import ResultStore, spec_record_key
from repro.service.worker import Worker, execute_job

PROTOCOL = "sweep-service/v1"

__all__ = [
    "PROTOCOL",
    "Campaign",
    "Coordinator",
    "CoordinatorConfig",
    "HttpClient",
    "Job",
    "LocalClient",
    "LocalService",
    "ResultStore",
    "ServiceError",
    "ServiceServer",
    "Worker",
    "execute_job",
    "merged_values",
    "seed_outcomes",
    "serve",
    "spec_record_key",
]
