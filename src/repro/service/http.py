"""The ``sweep-service/v1`` HTTP API, clients, and local mode.

Pure stdlib (``http.server`` + ``json`` + ``urllib``): no new
dependencies.  Every response is a JSON object carrying
``"protocol": "sweep-service/v1"``.

Client-facing endpoints::

    GET  /v1/ping               liveness + protocol version
    POST /v1/submit             {"spec": <scenario-spec/v1>} -> status
    GET  /v1/status/<campaign>  campaign progress counts
    GET  /v1/result/<campaign>  merged wire outcomes in seed order
    GET  /v1/report/<campaign>  full post-mortem (jobs, retries, store)
    GET  /v1/campaigns          every campaign's status
    GET  /v1/workers            registered workers + last-seen

Worker-facing endpoints (the lease protocol)::

    POST /v1/register           {"info": {...}} -> {"worker": id}
    POST /v1/lease              {"worker": id} -> {"job": {...} | null}
    POST /v1/heartbeat          {"worker": id, "job": id}
    POST /v1/complete           {"worker": id, "job": id, "outcomes": [...]}
    POST /v1/fail               {"worker": id, "job": id, "error": str}

:class:`HttpClient` and :class:`LocalClient` expose the same method
surface, so :class:`~repro.service.worker.Worker` and the CLI are
transport-agnostic.  :class:`LocalService` is the one-host mode: a real
HTTP server on loopback plus N in-process worker threads talking to it
over HTTP — the full distributed path, exercisable in any test.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any

from repro.harness.config import ScenarioSpec
from repro.harness.sweep import SeedOutcome, SweepError, _decode_value
from repro.obs import fleet
from repro.service.coordinator import Coordinator, CoordinatorConfig
from repro.service.store import ResultStore

__all__ = [
    "HttpClient",
    "LocalClient",
    "LocalService",
    "ServiceError",
    "ServiceServer",
    "seed_outcomes",
    "merged_values",
    "serve",
]

PROTOCOL = "sweep-service/v1"


# ---------------------------------------------------------------------------
# Result decoding (shared by clients, CLI and tests).
# ---------------------------------------------------------------------------


def seed_outcomes(result: dict) -> list[SeedOutcome]:
    """Decode a ``/v1/result`` document into :class:`SeedOutcome` list.

    The outcomes arrive in seed order; this is the inverse of the
    worker-side encoding, so the values are exactly what
    ``SweepRunner.run_spec`` would have produced locally.
    """
    if result.get("status") != "done":
        raise ValueError(f"campaign not done: {result.get('status')!r}")
    outcomes = []
    for wire in result["outcomes"]:
        value = None
        if wire.get("error") is None:
            value = _decode_value(wire["encoding"], wire["payload"])
        outcomes.append(
            SeedOutcome(
                seed=wire["seed"],
                value=value,
                error=wire.get("error"),
                cached=bool(wire.get("cached")),
                elapsed_s=float(wire.get("elapsed_s") or 0.0),
            )
        )
    return outcomes


def merged_values(result: dict) -> list[Any]:
    """Values in seed order; raises :class:`SweepError` on failures."""
    outcomes = seed_outcomes(result)
    failures = [outcome for outcome in outcomes if not outcome.ok]
    if failures:
        raise SweepError(result.get("campaign", "campaign"), failures)
    return [outcome.value for outcome in outcomes]


# ---------------------------------------------------------------------------
# Server.
# ---------------------------------------------------------------------------


class ServiceServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one :class:`Coordinator`."""

    daemon_threads = True
    coordinator: Coordinator
    thread: threading.Thread | None = None
    #: monotonic time of the last *client* request served (submit,
    #: status/result/report reads).  Worker chatter (lease polling,
    #: heartbeats) is excluded, so drain logic can tell "a client is
    #: still reading results" from "idle workers are polling".
    last_request: float = 0.0

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def shutdown(self) -> None:  # idempotent for LocalService.close()
        super().shutdown()
        if self.thread is not None and self.thread.is_alive():
            self.thread.join(timeout=5.0)


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: ServiceServer

    def log_message(self, format: str, *args) -> None:
        pass  # the coordinator's report is the observable surface

    # -- plumbing ------------------------------------------------------------

    def _send(self, payload: dict, status: int = 200) -> None:
        body = json.dumps({"protocol": PROTOCOL, **payload}).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        data = json.loads(raw or b"{}")
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    def _send_text(self, body: str, content_type: str, status: int = 200) -> None:
        raw = body.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(raw)))
        self.end_headers()
        self.wfile.write(raw)

    def _dispatch(self, handler) -> None:
        tail = self.path.split("?")[0].rstrip("/").rsplit("/", 1)[-1]
        # Worker chatter and scrapers don't count as client activity —
        # a Prometheus poller must not keep a draining server alive.
        if tail not in ("lease", "heartbeat", "metrics"):
            self.server.last_request = time.monotonic()
        try:
            handler()
        except KeyError as exc:
            self._send({"error": str(exc)}, status=404)
        except (ValueError, TypeError) as exc:
            self._send({"error": str(exc)}, status=400)
        except Exception as exc:  # never leak a stack as HTML
            self._send({"error": f"{type(exc).__name__}: {exc}"}, status=500)

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch(self._get)

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch(self._post)

    def _get(self) -> None:
        coordinator = self.server.coordinator
        parts = [part for part in self.path.split("?")[0].split("/") if part]
        if parts == ["metrics"]:
            # Prometheus text exposition of the coordinator-process
            # fleet registry (empty but valid when telemetry is off).
            self._send_text(
                fleet.prometheus_text(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif parts == ["v1", "ping"]:
            self._send({"ok": True})
        elif parts == ["v1", "workers"]:
            self._send({"workers": coordinator.workers()})
        elif parts == ["v1", "campaigns"]:
            self._send({"campaigns": coordinator.campaigns()})
        elif len(parts) == 3 and parts[0] == "v1":
            kind, campaign_id = parts[1], parts[2]
            if kind == "status":
                self._send(coordinator.status(campaign_id))
            elif kind == "result":
                self._send(coordinator.result(campaign_id))
            elif kind == "report":
                self._send(coordinator.report(campaign_id))
            else:
                self._send({"error": f"unknown endpoint {self.path!r}"}, 404)
        else:
            self._send({"error": f"unknown endpoint {self.path!r}"}, 404)

    def _post(self) -> None:
        coordinator = self.server.coordinator
        parts = [part for part in self.path.split("?")[0].split("/") if part]
        if len(parts) != 2 or parts[0] != "v1":
            self._send({"error": f"unknown endpoint {self.path!r}"}, 404)
            return
        body = self._body()
        action = parts[1]
        if action == "submit":
            spec = ScenarioSpec.from_dict(body["spec"])
            self._send(coordinator.submit(spec))
        elif action == "register":
            self._send({"worker": coordinator.register(body.get("info"))})
        elif action == "lease":
            job = coordinator.lease(_required(body, "worker"))
            self._send({"job": job})
        elif action == "heartbeat":
            self._send(
                coordinator.heartbeat(
                    _required(body, "worker"), _required(body, "job")
                )
            )
        elif action == "complete":
            self._send(
                coordinator.complete(
                    _required(body, "worker"),
                    _required(body, "job"),
                    body.get("outcomes") or [],
                    exec_info=body.get("exec"),
                    telemetry=body.get("telemetry"),
                )
            )
        elif action == "fail":
            self._send(
                coordinator.fail(
                    _required(body, "worker"),
                    _required(body, "job"),
                    body.get("error") or "worker-reported failure",
                )
            )
        else:
            self._send({"error": f"unknown endpoint {self.path!r}"}, 404)


def _required(body: dict, field: str) -> Any:
    value = body.get(field)
    if value is None:
        raise ValueError(f"missing required field {field!r}")
    return value


def serve(
    coordinator: Coordinator, host: str = "127.0.0.1", port: int = 0
) -> ServiceServer:
    """Start the HTTP API on a background thread; returns the server.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.url``).  Call ``server.shutdown()`` to stop.
    """
    server = ServiceServer((host, port), _Handler)
    server.coordinator = coordinator
    thread = threading.Thread(
        target=server.serve_forever, name="sweep-service-http", daemon=True
    )
    server.thread = thread
    thread.start()
    return server


# ---------------------------------------------------------------------------
# Clients.
# ---------------------------------------------------------------------------


class HttpClient:
    """Coordinator client over HTTP (stdlib ``urllib``)."""

    def __init__(self, base_url: str, timeout_s: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    def _request(self, path: str, body: dict | None = None) -> dict:
        url = f"{self.base_url}{path}"
        data = None if body is None else json.dumps(body).encode()
        request = urllib.request.Request(
            url,
            data=data,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as reply:
                payload = json.loads(reply.read())
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read())
            except ValueError:
                payload = {"error": str(exc)}
            raise ServiceError(
                exc.code, payload.get("error", str(exc))
            ) from None
        if payload.get("protocol") != PROTOCOL:
            raise ServiceError(
                502, f"not a sweep service: protocol {payload.get('protocol')!r}"
            )
        return payload

    # -- liveness ------------------------------------------------------------

    def ping(self) -> bool:
        try:
            return bool(self._request("/v1/ping").get("ok"))
        except (OSError, ServiceError):
            return False

    def connect(self, timeout_s: float = 30.0, poll_s: float = 0.2) -> None:
        """Wait for the coordinator to come up (CI race absorber)."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.ping():
                return
            time.sleep(poll_s)
        raise ServiceError(
            503, f"no sweep service at {self.base_url} after {timeout_s:.0f}s"
        )

    # -- client surface ------------------------------------------------------

    def submit(self, spec: ScenarioSpec) -> dict:
        return self._request("/v1/submit", {"spec": spec.to_dict()})

    def status(self, campaign_id: str) -> dict:
        return self._request(f"/v1/status/{campaign_id}")

    def result(self, campaign_id: str) -> dict:
        return self._request(f"/v1/result/{campaign_id}")

    def report(self, campaign_id: str) -> dict:
        return self._request(f"/v1/report/{campaign_id}")

    def campaigns(self) -> list[dict]:
        return self._request("/v1/campaigns")["campaigns"]

    def workers(self) -> list[dict]:
        return self._request("/v1/workers")["workers"]

    def metrics_text(self) -> str:
        """The coordinator's ``GET /metrics`` Prometheus exposition."""
        url = f"{self.base_url}/metrics"
        with urllib.request.urlopen(url, timeout=self.timeout_s) as reply:
            return reply.read().decode("utf-8")

    def wait(
        self,
        campaign_id: str,
        timeout_s: float = 600.0,
        poll_s: float = 0.1,
    ) -> dict:
        """Poll until the campaign is done; returns the result document."""
        deadline = time.monotonic() + timeout_s
        while True:
            result = self.result(campaign_id)
            if result.get("status") == "done":
                return result
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"campaign {campaign_id} still {result.get('status')!r} "
                    f"after {timeout_s:.0f}s ({result.get('pending')} pending)"
                )
            time.sleep(poll_s)

    # -- worker surface ------------------------------------------------------

    def register(self, info: dict | None = None) -> str:
        return self._request("/v1/register", {"info": info or {}})["worker"]

    def lease(self, worker_id: str) -> dict | None:
        return self._request("/v1/lease", {"worker": worker_id})["job"]

    def heartbeat(self, worker_id: str, job_id: str) -> dict:
        return self._request(
            "/v1/heartbeat", {"worker": worker_id, "job": job_id}
        )

    def complete(
        self,
        worker_id: str,
        job_id: str,
        outcomes: list[dict],
        exec_info: dict | None = None,
        telemetry: dict | None = None,
    ) -> dict:
        body: dict[str, Any] = {
            "worker": worker_id,
            "job": job_id,
            "outcomes": outcomes,
        }
        if exec_info is not None:
            body["exec"] = exec_info
        if telemetry is not None:
            body["telemetry"] = telemetry
        return self._request("/v1/complete", body)

    def fail(self, worker_id: str, job_id: str, error: str) -> dict:
        return self._request(
            "/v1/fail", {"worker": worker_id, "job": job_id, "error": error}
        )


class ServiceError(RuntimeError):
    """An HTTP-level service error (status code + message)."""

    def __init__(self, status: int, message: str):
        self.status = status
        super().__init__(f"[{status}] {message}")


class LocalClient:
    """The same client surface, directly against an in-process
    :class:`Coordinator` — no sockets, for unit tests and benchmarks."""

    def __init__(self, coordinator: Coordinator):
        self.coordinator = coordinator

    def ping(self) -> bool:
        return True

    def connect(self, timeout_s: float = 0.0, poll_s: float = 0.0) -> None:
        pass

    def submit(self, spec: ScenarioSpec) -> dict:
        return self.coordinator.submit(spec)

    def status(self, campaign_id: str) -> dict:
        return self.coordinator.status(campaign_id)

    def result(self, campaign_id: str) -> dict:
        return self.coordinator.result(campaign_id)

    def report(self, campaign_id: str) -> dict:
        return self.coordinator.report(campaign_id)

    def campaigns(self) -> list[dict]:
        return self.coordinator.campaigns()

    def workers(self) -> list[dict]:
        return self.coordinator.workers()

    def metrics_text(self) -> str:
        return fleet.prometheus_text()

    def wait(
        self, campaign_id: str, timeout_s: float = 600.0, poll_s: float = 0.05
    ) -> dict:
        deadline = time.monotonic() + timeout_s
        while True:
            result = self.coordinator.result(campaign_id)
            if result.get("status") == "done":
                return result
            if time.monotonic() >= deadline:
                raise TimeoutError(f"campaign {campaign_id} timed out")
            time.sleep(poll_s)

    def register(self, info: dict | None = None) -> str:
        return self.coordinator.register(info)

    def lease(self, worker_id: str) -> dict | None:
        return self.coordinator.lease(worker_id)

    def heartbeat(self, worker_id: str, job_id: str) -> dict:
        return self.coordinator.heartbeat(worker_id, job_id)

    def complete(
        self,
        worker_id: str,
        job_id: str,
        outcomes: list[dict],
        exec_info: dict | None = None,
        telemetry: dict | None = None,
    ) -> dict:
        return self.coordinator.complete(
            worker_id, job_id, outcomes,
            exec_info=exec_info, telemetry=telemetry,
        )

    def fail(self, worker_id: str, job_id: str, error: str) -> dict:
        return self.coordinator.fail(worker_id, job_id, error)


# ---------------------------------------------------------------------------
# Local mode: full HTTP path on one host.
# ---------------------------------------------------------------------------


class LocalService:
    """Coordinator + HTTP API + N in-process workers, on loopback.

    The workers are threads, but they speak to the coordinator over the
    real HTTP API — registration, leases, heartbeats, completion — so a
    test or driver that runs through :class:`LocalService` exercises
    the same code path as a multi-host fleet.  Use as a context
    manager::

        with LocalService(store_dir, workers=2) as service:
            values = service.run_spec(spec)
    """

    def __init__(
        self,
        store_dir: str | Path,
        workers: int = 2,
        config: CoordinatorConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        from repro.service.worker import Worker

        # Operating a fleet implies observing it (REPRO_FLEET_TELEMETRY=0
        # opts out); plain library use never reaches this path.
        fleet.enable_from_env()
        self.store = ResultStore(store_dir)
        self.coordinator = Coordinator(self.store, config)
        self.server = serve(self.coordinator, host, port)
        self.client = HttpClient(self.server.url)
        self._stop = threading.Event()
        self.workers = []
        self._threads = []
        for index in range(workers):
            worker = Worker(
                HttpClient(self.server.url),
                info={"local": True, "index": index},
            )
            thread = threading.Thread(
                target=worker.run,
                kwargs={"stop": self._stop},
                name=f"sweep-service-worker-{index}",
                daemon=True,
            )
            self.workers.append(worker)
            self._threads.append(thread)
            thread.start()

    @property
    def url(self) -> str:
        return self.server.url

    def submit_and_wait(self, spec: ScenarioSpec, timeout_s: float = 600.0) -> dict:
        status = self.client.submit(spec)
        return self.client.wait(status["campaign"], timeout_s=timeout_s)

    def run_spec(self, spec: ScenarioSpec, timeout_s: float = 600.0) -> list[Any]:
        """Submit, wait, and decode — the service-side ``run_spec``."""
        return merged_values(self.submit_and_wait(spec, timeout_s=timeout_s))

    def close(self) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=10.0)
        self.server.shutdown()
        self.server.server_close()

    def __enter__(self) -> "LocalService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
