"""Sweep-service worker: lease, heartbeat, execute, stream back.

A worker is a loop around a client (HTTP or in-process): register with
the coordinator, lease the next job, execute its seed chunk through the
standard :meth:`SweepRunner.run_spec` path — the same engine every
local driver uses, per-seed error capture included — while a heartbeat
thread keeps the lease alive, then stream the encoded outcomes back.

Execution failures are *job-level* only when the chunk itself cannot
run (unloadable spec, engine crash); a failing seed is captured inside
its :class:`~repro.harness.SeedOutcome` by the sweep engine and
reported as a normal result, so one bad seed costs one seed, not a
retry of the whole chunk.
"""

from __future__ import annotations

import logging
import os
import socket
import threading
import time
import traceback
from typing import Any, Callable

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]

from repro.harness.config import ScenarioSpec
from repro.harness.sweep import SweepRunner, _encode_value
from repro.obs import fleet

__all__ = ["Worker", "execute_job"]

log = logging.getLogger("repro.service.worker")


def _rusage() -> tuple[float, int]:
    """(cpu seconds, max RSS in KiB) of this process; zeros without
    the ``resource`` module."""
    if resource is None:
        return 0.0, 0
    usage = resource.getrusage(resource.RUSAGE_SELF)
    return usage.ru_utime + usage.ru_stime, int(usage.ru_maxrss)


def execute_job(job: dict, runner: SweepRunner | None = None) -> list[dict]:
    """Run one leased job's seed chunk; return wire outcomes.

    The chunk spec is the campaign spec re-seeded with the job's seeds,
    so the execution path — and therefore every byte of every per-seed
    result — is exactly what ``SweepRunner.run_spec`` produces locally.
    """
    spec = ScenarioSpec.from_dict(job["spec"]).with_seeds(job["seeds"])
    runner = runner or SweepRunner(workers=1, use_cache=False)
    result = runner.run_spec(spec)
    outcomes = []
    for outcome in result.outcomes:
        if outcome.ok:
            encoding, payload = _encode_value(outcome.value)
        else:
            encoding, payload = None, None
        outcomes.append(
            {
                "seed": outcome.seed,
                "encoding": encoding,
                "payload": payload,
                "error": outcome.error,
                "cached": False,
                "elapsed_s": outcome.elapsed_s,
            }
        )
    return outcomes


class Worker:
    """The lease/execute/report loop around a coordinator client.

    *client* is anything with the coordinator's worker-facing methods —
    :class:`~repro.service.http.HttpClient` for a remote coordinator,
    :class:`~repro.service.http.LocalClient` for an in-process one.
    """

    def __init__(
        self,
        client,
        poll_interval_s: float = 0.05,
        execute: Callable[[dict], list[dict]] = execute_job,
        info: dict | None = None,
    ):
        self.client = client
        self.poll_interval_s = poll_interval_s
        self.execute = execute
        self.info = dict(
            info or {"host": socket.gethostname(), "pid": os.getpid()}
        )
        self.worker_id: str | None = None
        self.jobs_completed = 0
        self.jobs_failed = 0
        #: heartbeat attempts that raised (coordinator down, network
        #: blip); surfaced in the next completion's ``exec`` info.
        self.heartbeat_failures = 0

    def register(self) -> str:
        self.worker_id = self.client.register(self.info)
        return self.worker_id

    # -- execution ------------------------------------------------------------

    def _heartbeat_loop(self, job_id: str, interval_s: float, done: threading.Event):
        while not done.wait(interval_s):
            try:
                reply = self.client.heartbeat(self.worker_id, job_id)
            except OSError as error:
                # Transient network error (or a dead coordinator): the
                # lease TTL absorbs it, but never die silently — count
                # it, log it, and surface it in the next report.
                self.heartbeat_failures += 1
                f = fleet.ACTIVE
                if f.enabled:
                    f.inc("fleet.worker.heartbeat_failures")
                log.warning(
                    "heartbeat for job %s failed (%d so far): %s",
                    job_id,
                    self.heartbeat_failures,
                    error,
                )
                continue
            if not reply.get("ok"):
                log.info(
                    "lease on job %s lost (%s): stop renewing",
                    job_id,
                    reply.get("reason", "reaped or re-leased"),
                )
                return

    def run_one(self, job: dict) -> bool:
        """Execute one leased job; returns True when results landed."""
        done = threading.Event()
        interval_s = max(0.02, float(job.get("lease_ttl_s", 15.0)) / 3.0)
        beater = threading.Thread(
            target=self._heartbeat_loop,
            args=(job["job"], interval_s, done),
            daemon=True,
        )
        beater.start()
        cpu_before, _ = _rusage()
        wall_before = time.perf_counter()
        try:
            outcomes = self.execute(job)
        except Exception:
            done.set()
            beater.join()
            self.jobs_failed += 1
            f = fleet.ACTIVE
            if f.enabled:
                f.inc("fleet.worker.jobs_failed")
            self.client.fail(self.worker_id, job["job"], traceback.format_exc())
            return False
        done.set()
        beater.join()
        wall_s = time.perf_counter() - wall_before
        cpu_after, max_rss_kb = _rusage()
        exec_info = {
            "wall_s": round(wall_s, 6),
            "cpu_s": round(max(0.0, cpu_after - cpu_before), 6),
            "max_rss_kb": max_rss_kb,
            "heartbeat_failures": self.heartbeat_failures,
            "host": self.info.get("host") or socket.gethostname(),
            "pid": os.getpid(),
        }
        f = fleet.ACTIVE
        telemetry = None
        if f.enabled:
            f.inc("fleet.worker.jobs_executed")
            f.inc("fleet.worker.seeds_executed", len(job.get("seeds", [])))
            f.observe("fleet.worker.job_wall_ns", wall_s * 1e9)
            f.observe(
                "fleet.worker.job_cpu_ns",
                max(0.0, cpu_after - cpu_before) * 1e9,
            )
            f.set_gauge("fleet.worker.max_rss_kb", max_rss_kb)
            telemetry = fleet.snapshot_document(f)
        reply = self.client.complete(
            self.worker_id,
            job["job"],
            outcomes,
            exec_info=exec_info,
            telemetry=telemetry,
        )
        if reply.get("ok"):
            self.jobs_completed += 1
            return True
        return False  # stale lease: another attempt owns the job now

    # -- the loop -------------------------------------------------------------

    def run(
        self,
        stop: threading.Event | None = None,
        max_idle_s: float | None = None,
        max_jobs: int | None = None,
    ) -> int:
        """Lease-and-execute until stopped; returns jobs completed.

        *max_idle_s* exits after that long without work (CI workers);
        *max_jobs* exits after completing that many (tests).  A
        coordinator that is down counts as idle — workers outlive
        coordinator restarts up to *max_idle_s*.
        """
        stop = stop or threading.Event()
        idle_since = time.monotonic()
        completed = 0
        while not stop.is_set():
            job: dict | None = None
            try:
                if self.worker_id is None:
                    self.register()
                job = self.client.lease(self.worker_id)
            except OSError:
                job = None
            if job is None:
                if (
                    max_idle_s is not None
                    and time.monotonic() - idle_since >= max_idle_s
                ):
                    break
                stop.wait(self.poll_interval_s)
                continue
            if self.run_one(job):
                completed += 1
            idle_since = time.monotonic()
            if max_jobs is not None and completed >= max_jobs:
                break
        return completed


def _encode_outcome_value(value: Any) -> tuple[str, Any]:
    """Exported for tests: the worker-side value encoding."""
    return _encode_value(value)
