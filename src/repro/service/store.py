"""Shared content-addressed result store for sweep campaigns.

Generalizes the PR 1 JSONL sweep cache into a store that many
coordinator/worker processes — potentially on many hosts over a shared
filesystem — can append to concurrently:

* **Content addressing.** A record's key is
  :func:`spec_record_key`: SHA-256 over the spec's scientific content
  (its ``scenario-spec/v1`` dict minus ``seeds`` and ``label``), the
  seed, and :func:`~repro.harness.sweep.code_fingerprint`.  Two
  campaigns that ask the same question share results no matter how
  their seed lists are chunked or what they are called — a re-submitted
  campaign is a pure cache hit.
* **Concurrent writers.** Appends take an ``fcntl`` advisory lock on
  the shard file (where available) and write each record as one
  ``write()`` of a newline-terminated JSON line, so records from
  concurrent processes never interleave.
* **Torn-line tolerance.** A writer crashing mid-append can leave a
  torn trailing line.  Reads skip malformed lines and *report* them
  (:attr:`ResultStore.malformed`); the next locked append repairs the
  torn tail by terminating it before writing, so one crash never
  corrupts subsequent records.
* **Compaction.** Records are append-only and later records shadow
  earlier ones; :meth:`ResultStore.compact` rewrites each shard keeping
  only the surviving record per key (atomic rename under the lock).

Values reuse the sweep cache's encoding: exact-JSON-round-trip values
stay JSON, everything else is pickled and base64-wrapped.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterable

from repro.harness.sweep import (
    _decode_value,
    _encode_value,
    _FileLock,
    _tail_is_torn,
    code_fingerprint,
)
from repro.obs import fleet

__all__ = ["ResultStore", "spec_record_key"]

#: Fields of a ``scenario-spec/v1`` dict that name rather than
#: parameterize the experiment; excluded from content addressing.
_NON_CONTENT_FIELDS = ("seeds", "label")


def spec_record_key(spec: Any, seed: Any) -> str:
    """Content key of one seed's result: spec-hash × code-fingerprint.

    *spec* is a :class:`~repro.harness.ScenarioSpec` or its dict form.
    ``seeds`` and ``label`` are excluded, so the key depends only on
    what is computed — variant, scenario, network, STP bounds, fault
    plan — plus the seed itself and the current source tree.
    """
    data = spec.to_dict() if hasattr(spec, "to_dict") else dict(spec)
    content = {
        name: value
        for name, value in data.items()
        if name not in _NON_CONTENT_FIELDS
    }
    material = json.dumps(
        {"spec": content, "seed": seed, "code": code_fingerprint()},
        sort_keys=True,
        default=repr,
    )
    return hashlib.sha256(material.encode()).hexdigest()[:32]


class ResultStore:
    """Content-addressed JSONL result store under one directory.

    Records are sharded across ``<prefix>.jsonl`` files by the first
    two hex digits of their key, keeping locks fine-grained and shard
    files short.  Each record is one JSON line::

        {"key": ..., "seed": ..., "encoding": "json"|"pickle",
         "payload": ..., "code": <code fingerprint>}

    Later records for the same key shadow earlier ones.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        #: malformed lines skipped per shard file on the last read.
        self.malformed: dict[str, int] = {}

    # -- layout --------------------------------------------------------------

    def _shard(self, key: str) -> Path:
        return self.directory / f"{key[:2]}.jsonl"

    def _lock(self, shard: Path, shared: bool = False) -> _FileLock:
        return _FileLock(shard, shared=shared)

    # -- reading -------------------------------------------------------------

    def _read_shard(self, shard: Path) -> dict[str, dict]:
        """All surviving records of one shard file, keyed by key."""
        records: dict[str, dict] = {}
        malformed = 0
        try:
            lines = shard.read_bytes().split(b"\n")
        except OSError:
            return records
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                records[record["key"]] = record
            except (ValueError, KeyError, TypeError):
                malformed += 1  # torn/corrupt line: skip, but report
        if malformed:
            self.malformed[shard.name] = malformed
            f = fleet.ACTIVE
            if f.enabled:
                f.inc("fleet.result_store.malformed_lines", malformed)
        else:
            self.malformed.pop(shard.name, None)
        return records

    def get(self, key: str) -> dict | None:
        """The surviving record for *key*, or ``None``."""
        record = self.get_many([key]).get(key)
        return record

    def get_many(self, keys: Iterable[str]) -> dict[str, dict]:
        """Surviving records for *keys* (absent keys are omitted)."""
        keys = list(keys)
        found: dict[str, dict] = {}
        for shard in {self._shard(key) for key in keys}:
            if not shard.exists():
                continue
            with self._lock(shard, shared=True):
                records = self._read_shard(shard)
            for key in keys:
                if key in records:
                    found[key] = records[key]
        f = fleet.ACTIVE
        if f.enabled:
            f.inc("fleet.result_store.gets", len(keys))
            f.inc("fleet.result_store.hits", len(found))
            f.inc("fleet.result_store.misses", len(keys) - len(found))
        return found

    def fetch(self, record: dict) -> Any:
        """Decode a record's payload (raises on a corrupt payload)."""
        return _decode_value(record["encoding"], record["payload"])

    # -- writing -------------------------------------------------------------

    @staticmethod
    def make_record(key: str, seed: Any, value: Any) -> dict:
        encoding, payload = _encode_value(value)
        return {
            "key": key,
            "seed": seed,
            "encoding": encoding,
            "payload": payload,
            "code": code_fingerprint(),
        }

    def put(self, key: str, seed: Any, value: Any) -> dict:
        """Encode and append one result; returns the stored record."""
        record = self.make_record(key, seed, value)
        self.put_records([record])
        return record

    def put_records(self, records: Iterable[dict]) -> None:
        """Append pre-built records, grouped per shard under its lock.

        Each shard's batch is written as a single ``write()`` so
        concurrent appenders never interleave records; a torn trailing
        line left by a crashed writer is terminated first so it damages
        at most itself.
        """
        by_shard: dict[Path, list[dict]] = {}
        for record in records:
            by_shard.setdefault(self._shard(record["key"]), []).append(record)
        f = fleet.ACTIVE
        for shard, batch in by_shard.items():
            self.directory.mkdir(parents=True, exist_ok=True)
            blob = "".join(json.dumps(record) + "\n" for record in batch)
            with self._lock(shard):
                with shard.open("ab") as handle:
                    if _tail_is_torn(shard):
                        handle.write(b"\n")  # repair a crashed append
                        if f.enabled:
                            f.inc("fleet.result_store.torn_repairs")
                    handle.write(blob.encode())
                    handle.flush()
                    os.fsync(handle.fileno())
            if f.enabled:
                f.inc("fleet.result_store.puts", len(batch))

    # (locking + torn-tail repair shared with the sweep cache:
    #  repro.harness.sweep._FileLock / _tail_is_torn)

    # -- maintenance ---------------------------------------------------------

    def compact(self) -> dict[str, int]:
        """Rewrite every shard keeping one record per key.

        Returns ``{"records": survivors, "dropped": shadowed+malformed}``.
        Each shard is replaced atomically (temp file + ``os.replace``)
        under its exclusive lock, so concurrent readers see either the
        old or the new file, never a partial one.
        """
        survivors = 0
        dropped = 0
        for shard in sorted(self.directory.glob("*.jsonl")):
            with self._lock(shard):
                raw_lines = sum(
                    1
                    for line in shard.read_bytes().split(b"\n")
                    if line.strip()
                )
                records = self._read_shard(shard)
                handle, temp_path = tempfile.mkstemp(
                    dir=self.directory, suffix=".tmp"
                )
                try:
                    with os.fdopen(handle, "w") as temp:
                        for record in records.values():
                            temp.write(json.dumps(record) + "\n")
                        temp.flush()
                        os.fsync(temp.fileno())
                    os.replace(temp_path, shard)
                except BaseException:
                    os.unlink(temp_path)
                    raise
                survivors += len(records)
                dropped += raw_lines - len(records)
        return {"records": survivors, "dropped": dropped}

    def stats(self) -> dict:
        """Record/shard counts plus malformed lines seen on reads."""
        shards = sorted(self.directory.glob("*.jsonl"))
        records = 0
        for shard in shards:
            with self._lock(shard, shared=True):
                records += len(self._read_shard(shard))
        return {
            "records": records,
            "shards": len(shards),
            "malformed_lines": sum(self.malformed.values()),
        }
