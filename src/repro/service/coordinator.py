"""Campaign coordinator: shard specs into jobs, run the queue.

The coordinator owns every campaign's lifecycle:

1. **Submit.** A :class:`~repro.harness.ScenarioSpec` arrives; each
   seed's content key (:func:`~repro.service.store.spec_record_key`) is
   probed against the shared :class:`~repro.service.store.ResultStore`.
   Store hits become cached outcomes immediately; the remaining seeds
   are chunked — in seed order — into per-seed-chunk :class:`Job`\\ s.
2. **Lease.** Workers lease jobs FIFO (campaign order, then chunk
   order).  A lease carries a TTL refreshed by heartbeats and a hard
   per-job deadline that heartbeats cannot extend past.
3. **Requeue / retry.** An expired lease (worker death, hang, or
   deadline overrun) requeues the job with exponential backoff; a
   worker-reported failure does the same.  After ``max_attempts`` the
   job fails terminally and every one of its seeds receives a
   :class:`~repro.harness.SeedOutcome`-compatible error outcome — a
   campaign always completes with every seed accounted for, never
   silently.
4. **Merge.** Completed outcomes land at their seed's position, so the
   finished campaign reads back in seed order — byte-identical to
   ``SweepRunner.run_spec`` on one host, however the jobs were
   scattered.

The coordinator is a plain thread-safe object: the HTTP layer
(:mod:`repro.service.http`) is a veneer over these methods, and tests
drive them directly with an injected clock.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.harness.config import ScenarioSpec
from repro.obs import fleet
from repro.service.store import ResultStore, spec_record_key

__all__ = ["Coordinator", "CoordinatorConfig", "Campaign", "Job"]


@dataclass(frozen=True)
class CoordinatorConfig:
    """Queue/retry knobs (all times in seconds).

    Attributes:
        chunk_size: seeds per job; small chunks spread a campaign wider
            across the fleet, large chunks amortize per-job overhead.
        max_attempts: lease-or-fail attempts before a job fails
            terminally (covers both reported failures and dead workers).
        lease_ttl_s: how long a lease survives without a heartbeat.
        job_timeout_s: hard wall-clock budget per job attempt;
            heartbeats cannot extend a lease past it.
        retry_backoff_s: delay before attempt 2; doubles per attempt.
    """

    chunk_size: int = 4
    max_attempts: int = 3
    lease_ttl_s: float = 15.0
    job_timeout_s: float = 600.0
    retry_backoff_s: float = 0.25

    def backoff_for(self, attempt: int) -> float:
        """Requeue delay after the *attempt*-th failed attempt (1-based)."""
        return self.retry_backoff_s * (2.0 ** (attempt - 1))


@dataclass
class Job:
    """One seed chunk of one campaign, tracked through the queue."""

    job_id: str
    campaign_id: str
    chunk: int
    seeds: tuple
    #: positions of these seeds in the campaign's seed list.
    positions: tuple
    state: str = "pending"  # pending | leased | done | failed
    attempt: int = 0
    not_before: float = 0.0
    worker: str | None = None
    leased_at: float = 0.0
    lease_expires: float = 0.0
    deadline: float = 0.0
    requeues: int = 0
    error: str | None = None
    elapsed_s: float = 0.0
    #: when the job (re)entered the pending state, for lease latency.
    pending_since: float = 0.0
    #: coordinator-stamped lifecycle events (queued/leased/requeued/
    #: done/failed), rendered by :func:`repro.obs.fleet.fleet_trace_events`.
    timeline: list = field(default_factory=list)
    #: worker-side execution stats shipped back with the completion.
    exec_info: dict | None = None

    def stamp(self, event: str, t: float, **extra: Any) -> None:
        """Append one lifecycle event to the job's timeline."""
        record: dict[str, Any] = {"event": event, "t": t}
        record.update({k: v for k, v in extra.items() if v is not None})
        self.timeline.append(record)

    def to_wire(self, spec_dict: dict, config: CoordinatorConfig) -> dict:
        """The lease response handed to a worker."""
        return {
            "job": self.job_id,
            "campaign": self.campaign_id,
            "chunk": self.chunk,
            "seeds": list(self.seeds),
            "spec": spec_dict,
            "attempt": self.attempt,
            "lease_ttl_s": config.lease_ttl_s,
            "job_timeout_s": config.job_timeout_s,
        }

    def describe(self) -> dict:
        return {
            "job": self.job_id,
            "chunk": self.chunk,
            "seeds": list(self.seeds),
            "state": self.state,
            "attempt": self.attempt,
            "requeues": self.requeues,
            "worker": self.worker,
            "error": self.error,
            "elapsed_s": round(self.elapsed_s, 6),
            "timeline": list(self.timeline),
            "exec": self.exec_info,
        }


@dataclass
class Campaign:
    """One submitted spec and the merged outcomes accumulating for it."""

    campaign_id: str
    spec: ScenarioSpec
    keys: list[str]
    submitted_at: float
    #: wire outcomes, one slot per seed position; ``None`` = pending.
    outcomes: list[dict | None] = field(default_factory=list)
    jobs: list[str] = field(default_factory=list)
    completed_at: float | None = None

    @property
    def done(self) -> bool:
        return all(outcome is not None for outcome in self.outcomes)

    def counts(self) -> dict[str, int]:
        filled = [outcome for outcome in self.outcomes if outcome is not None]
        return {
            "seeds": len(self.outcomes),
            "pending": len(self.outcomes) - len(filled),
            "cached": sum(1 for o in filled if o.get("cached")),
            "failed": sum(1 for o in filled if o.get("error") is not None),
        }


def _campaign_outcome(
    seed: Any,
    *,
    encoding: str | None = None,
    payload: Any = None,
    error: str | None = None,
    cached: bool = False,
    elapsed_s: float = 0.0,
    worker: str | None = None,
) -> dict:
    """A ``SeedOutcome``-compatible wire outcome."""
    return {
        "seed": seed,
        "encoding": encoding,
        "payload": payload,
        "error": error,
        "cached": cached,
        "elapsed_s": elapsed_s,
        "worker": worker,
    }


class Coordinator:
    """Thread-safe campaign/job state machine over a shared store."""

    def __init__(
        self,
        store: ResultStore,
        config: CoordinatorConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.store = store
        self.config = config or CoordinatorConfig()
        self.clock = clock
        self._lock = threading.RLock()
        self._campaigns: dict[str, Campaign] = {}
        self._campaign_order: list[str] = []
        self._jobs: dict[str, Job] = {}
        self._workers: dict[str, dict] = {}
        self._counter = 0
        self.requeues_total = 0
        self.retries_total = 0
        self._pending_jobs = 0
        #: latest fleet-metrics/v1 document shipped by each worker.
        self._worker_telemetry: dict[str, dict] = {}

    def _note_queue_depth(self, delta: int) -> None:
        self._pending_jobs += delta
        f = fleet.ACTIVE
        if f.enabled:
            f.set_gauge("fleet.coordinator.queue_depth", self._pending_jobs)

    # -- workers -------------------------------------------------------------

    def register(self, info: dict | None = None) -> str:
        """Register a worker; returns its id."""
        with self._lock:
            self._counter += 1
            worker_id = f"w{self._counter}"
            self._workers[worker_id] = {
                "worker": worker_id,
                "info": dict(info or {}),
                "registered_at": self.clock(),
                "last_seen": self.clock(),
                "jobs_completed": 0,
                "jobs_failed": 0,
            }
            return worker_id

    def workers(self) -> list[dict]:
        with self._lock:
            now = self.clock()
            return [
                {**entry, "idle_s": round(now - entry["last_seen"], 3)}
                for entry in self._workers.values()
            ]

    def _touch(self, worker_id: str) -> None:
        entry = self._workers.get(worker_id)
        if entry is not None:
            entry["last_seen"] = self.clock()

    # -- submission ----------------------------------------------------------

    def submit(self, spec: ScenarioSpec) -> dict:
        """Accept a campaign: store-hit what we can, shard the rest."""
        with self._lock:
            self._counter += 1
            spec_hash = hashlib.sha256(
                spec.to_json().encode()
            ).hexdigest()[:8]
            campaign_id = f"c{self._counter}-{spec_hash}"
            keys = [spec_record_key(spec, seed) for seed in spec.seeds]
            campaign = Campaign(
                campaign_id=campaign_id,
                spec=spec,
                keys=keys,
                submitted_at=self.clock(),
                outcomes=[None] * len(spec.seeds),
            )
            known = self.store.get_many(keys)
            pending: list[int] = []
            for position, (seed, key) in enumerate(zip(spec.seeds, keys)):
                record = known.get(key)
                if record is not None:
                    campaign.outcomes[position] = _campaign_outcome(
                        seed,
                        encoding=record["encoding"],
                        payload=record["payload"],
                        cached=True,
                    )
                else:
                    pending.append(position)
            chunk_size = max(1, self.config.chunk_size)
            for chunk, start in enumerate(range(0, len(pending), chunk_size)):
                positions = tuple(pending[start : start + chunk_size])
                job = Job(
                    job_id=f"{campaign_id}-j{chunk}",
                    campaign_id=campaign_id,
                    chunk=chunk,
                    seeds=tuple(spec.seeds[p] for p in positions),
                    positions=positions,
                    pending_since=campaign.submitted_at,
                )
                job.stamp("queued", campaign.submitted_at)
                self._jobs[job.job_id] = job
                campaign.jobs.append(job.job_id)
            self._campaigns[campaign_id] = campaign
            self._campaign_order.append(campaign_id)
            if campaign.done:  # pure cache hit: no jobs at all
                campaign.completed_at = self.clock()
            f = fleet.ACTIVE
            if f.enabled:
                f.inc("fleet.coordinator.campaigns_submitted")
                f.inc("fleet.coordinator.jobs_created", len(campaign.jobs))
                cached = len(spec.seeds) - len(pending)
                if cached:
                    f.inc("fleet.coordinator.seeds_cached", cached)
            self._note_queue_depth(len(campaign.jobs))
            return self.status(campaign_id)

    # -- the queue -----------------------------------------------------------

    def _reap(self) -> None:
        """Requeue (or terminally fail) jobs whose lease expired."""
        now = self.clock()
        for job in self._jobs.values():
            if job.state == "leased" and job.lease_expires <= now:
                job.requeues += 1
                self.requeues_total += 1
                f = fleet.ACTIVE
                if f.enabled:
                    f.inc("fleet.coordinator.worker_deaths")
                    f.inc("fleet.coordinator.requeues")
                self._retry_or_fail(
                    job,
                    f"lease expired on worker {job.worker!r} "
                    f"(attempt {job.attempt}): worker death or timeout",
                )

    def _retry_or_fail(self, job: Job, error: str) -> None:
        if job.attempt >= self.config.max_attempts:
            job.state = "failed"
            job.error = error
            job.stamp("failed", self.clock(), attempt=job.attempt, reason=error)
            job.worker = None
            f = fleet.ACTIVE
            if f.enabled:
                f.inc("fleet.coordinator.jobs_failed")
            campaign = self._campaigns[job.campaign_id]
            for position, seed in zip(job.positions, job.seeds):
                campaign.outcomes[position] = _campaign_outcome(
                    seed,
                    error=(
                        f"sweep-service job {job.job_id} failed terminally "
                        f"after {job.attempt} attempt(s): {error}"
                    ),
                )
            self._maybe_complete(campaign)
        else:
            now = self.clock()
            job.state = "pending"
            job.stamp("requeued", now, attempt=job.attempt, reason=error)
            job.worker = None
            job.pending_since = now
            job.not_before = now + self.config.backoff_for(job.attempt)
            self._note_queue_depth(1)

    def lease(self, worker_id: str) -> dict | None:
        """Hand the next runnable job to *worker_id* (or ``None``)."""
        with self._lock:
            self._touch(worker_id)
            self._reap()
            now = self.clock()
            for campaign_id in self._campaign_order:
                campaign = self._campaigns[campaign_id]
                for job_id in campaign.jobs:
                    job = self._jobs[job_id]
                    if job.state != "pending" or job.not_before > now:
                        continue
                    job.state = "leased"
                    job.attempt += 1
                    job.worker = worker_id
                    job.leased_at = now
                    job.deadline = now + self.config.job_timeout_s
                    job.lease_expires = min(
                        now + self.config.lease_ttl_s, job.deadline
                    )
                    job.stamp(
                        "leased", now, worker=worker_id, attempt=job.attempt
                    )
                    self._note_queue_depth(-1)
                    f = fleet.ACTIVE
                    if f.enabled:
                        # Latency from when the job became *runnable*
                        # (requeue backoff is policy, not queue delay).
                        runnable = max(job.pending_since, job.not_before)
                        f.observe(
                            "fleet.coordinator.lease_latency_ns",
                            max(0.0, now - runnable) * 1e9,
                        )
                        f.inc("fleet.coordinator.leases")
                    return job.to_wire(campaign.spec.to_dict(), self.config)
            return None

    def heartbeat(self, worker_id: str, job_id: str) -> dict:
        """Extend a lease; ``{"ok": False}`` tells the worker to stop."""
        with self._lock:
            self._touch(worker_id)
            self._reap()  # a heartbeat past the deadline must not renew
            job = self._jobs.get(job_id)
            if job is None or job.state != "leased" or job.worker != worker_id:
                return {"ok": False}
            job.lease_expires = min(
                self.clock() + self.config.lease_ttl_s, job.deadline
            )
            return {"ok": True}

    def complete(
        self,
        worker_id: str,
        job_id: str,
        outcomes: list[dict],
        exec_info: dict | None = None,
        telemetry: dict | None = None,
    ) -> dict:
        """Accept a job's results; first completion wins.

        *exec_info* is the worker-side execution span (wall/cpu/RSS,
        heartbeat failures) attached to the job for the fleet trace;
        *telemetry* is the worker's ``fleet-metrics/v1`` document,
        merged into the campaign report's fleet block.
        """
        with self._lock:
            self._touch(worker_id)
            job = self._jobs.get(job_id)
            if job is None:
                return {"ok": False, "reason": "unknown job"}
            if telemetry is not None:
                self._worker_telemetry[worker_id] = telemetry
            if job.state != "leased" or job.worker != worker_id:
                # Stale: the lease was reaped and the job re-leased (or
                # already finished elsewhere).  Drop this copy.
                f = fleet.ACTIVE
                if f.enabled:
                    f.inc("fleet.coordinator.stale_reports")
                return {"ok": False, "reason": f"job is {job.state}"}
            by_seed = {outcome["seed"]: outcome for outcome in outcomes}
            missing = [seed for seed in job.seeds if seed not in by_seed]
            if missing:
                return {"ok": False, "reason": f"missing seeds {missing}"}
            now = self.clock()
            job.state = "done"
            job.elapsed_s = now - job.leased_at
            job.exec_info = exec_info
            job.stamp("done", now, worker=worker_id, attempt=job.attempt)
            f = fleet.ACTIVE
            if f.enabled:
                f.inc("fleet.coordinator.jobs_completed")
                f.observe(
                    "fleet.coordinator.job_duration_ns", job.elapsed_s * 1e9
                )
            campaign = self._campaigns[job.campaign_id]
            fresh: list[dict] = []
            for position, seed in zip(job.positions, job.seeds):
                outcome = dict(by_seed[seed])
                outcome["worker"] = worker_id
                campaign.outcomes[position] = outcome
                if outcome.get("error") is None:
                    fresh.append(
                        {
                            "key": campaign.keys[position],
                            "seed": outcome["seed"],
                            "encoding": outcome["encoding"],
                            "payload": outcome["payload"],
                            "code": None,
                        }
                    )
            if fresh:
                from repro.harness.sweep import code_fingerprint

                for record in fresh:
                    record["code"] = code_fingerprint()
                self.store.put_records(fresh)
            entry = self._workers.get(worker_id)
            if entry is not None:
                entry["jobs_completed"] += 1
            self._maybe_complete(campaign)
            return {"ok": True}

    def fail(self, worker_id: str, job_id: str, error: str) -> dict:
        """A worker reports a job-level failure: retry with backoff."""
        with self._lock:
            self._touch(worker_id)
            job = self._jobs.get(job_id)
            if job is None:
                return {"ok": False, "reason": "unknown job"}
            if job.state != "leased" or job.worker != worker_id:
                f = fleet.ACTIVE
                if f.enabled:
                    f.inc("fleet.coordinator.stale_reports")
                return {"ok": False, "reason": f"job is {job.state}"}
            self.retries_total += 1
            f = fleet.ACTIVE
            if f.enabled:
                f.inc("fleet.coordinator.retries")
            entry = self._workers.get(worker_id)
            if entry is not None:
                entry["jobs_failed"] += 1
            self._retry_or_fail(job, error)
            return {"ok": True, "terminal": job.state == "failed"}

    def _maybe_complete(self, campaign: Campaign) -> None:
        if campaign.completed_at is None and campaign.done:
            campaign.completed_at = self.clock()

    # -- read side -----------------------------------------------------------

    def _campaign(self, campaign_id: str) -> Campaign:
        campaign = self._campaigns.get(campaign_id)
        if campaign is None:
            raise KeyError(f"unknown campaign {campaign_id!r}")
        return campaign

    def status(self, campaign_id: str) -> dict:
        with self._lock:
            self._reap()
            campaign = self._campaign(campaign_id)
            jobs = [self._jobs[job_id] for job_id in campaign.jobs]
            counts = campaign.counts()
            now = (
                campaign.completed_at
                if campaign.completed_at is not None
                else self.clock()
            )
            elapsed_s = max(0.0, now - campaign.submitted_at)
            computed = (
                len(campaign.outcomes)
                - counts["pending"]
                - counts["cached"]
            )
            seeds_per_s = computed / elapsed_s if elapsed_s > 0 else 0.0
            eta_s = (
                counts["pending"] / seeds_per_s
                if counts["pending"] and seeds_per_s > 0
                else (None if counts["pending"] else 0.0)
            )
            return {
                "campaign": campaign.campaign_id,
                "status": "done" if campaign.done else "running",
                **counts,
                "jobs": len(jobs),
                "jobs_done": sum(1 for job in jobs if job.state == "done"),
                "jobs_failed": sum(1 for job in jobs if job.state == "failed"),
                "queue_depth": sum(1 for job in jobs if job.state == "pending"),
                "leased": sum(1 for job in jobs if job.state == "leased"),
                "elapsed_s": round(elapsed_s, 6),
                "seeds_per_s": round(seeds_per_s, 3),
                "eta_s": round(eta_s, 3) if eta_s is not None else None,
                "label": campaign.spec.sweep_name(),
            }

    def result(self, campaign_id: str) -> dict:
        """Merged wire outcomes in seed order (once the campaign is done)."""
        with self._lock:
            self._reap()
            campaign = self._campaign(campaign_id)
            if not campaign.done:
                return {
                    "campaign": campaign_id,
                    "status": "running",
                    **campaign.counts(),
                }
            return {
                "campaign": campaign_id,
                "status": "done",
                **campaign.counts(),
                "elapsed_s": round(
                    campaign.completed_at - campaign.submitted_at, 6
                ),
                "outcomes": list(campaign.outcomes),
            }

    def report(self, campaign_id: str) -> dict:
        """The full campaign post-mortem (CI artifact shape)."""
        with self._lock:
            self._reap()
            campaign = self._campaign(campaign_id)
            jobs = [self._jobs[job_id] for job_id in campaign.jobs]
            return {
                "format": "sweep-service/v1",
                "kind": "campaign-report",
                "campaign": campaign_id,
                "status": "done" if campaign.done else "running",
                **campaign.counts(),
                "spec": campaign.spec.to_dict(),
                "submitted_at": campaign.submitted_at,
                "jobs": [job.describe() for job in jobs],
                "requeues": sum(job.requeues for job in jobs),
                "retries": sum(max(0, job.attempt - 1) for job in jobs),
                "elapsed_s": (
                    round(campaign.completed_at - campaign.submitted_at, 6)
                    if campaign.completed_at is not None
                    else None
                ),
                "workers": self.workers(),
                "store": self.store.stats(),
                "fleet": self._fleet_block(),
                "config": {
                    "chunk_size": self.config.chunk_size,
                    "max_attempts": self.config.max_attempts,
                    "lease_ttl_s": self.config.lease_ttl_s,
                    "job_timeout_s": self.config.job_timeout_s,
                    "retry_backoff_s": self.config.retry_backoff_s,
                },
            }

    def _fleet_block(self) -> dict:
        """The campaign report's fleet telemetry: this process plus the
        latest snapshot each worker shipped, merged across the fleet."""
        coordinator_doc = fleet.snapshot_document()
        worker_docs = dict(self._worker_telemetry)
        merged = fleet.merge_fleet_documents(
            [coordinator_doc, *worker_docs.values()]
        )
        return {
            "format": fleet.FLEET_FORMAT,
            "coordinator": coordinator_doc,
            "workers": worker_docs,
            "merged": merged["merged"],
            "sources": merged["sources"],
        }

    def campaigns(self) -> list[dict]:
        with self._lock:
            return [self.status(cid) for cid in self._campaign_order]

    def idle(self) -> bool:
        """True when no campaign has runnable or in-flight work."""
        with self._lock:
            self._reap()
            return all(
                self._campaigns[cid].done for cid in self._campaign_order
            )
