"""Pluggable application/scenario registry.

Historically every driver and CLI subcommand hardcoded
``variant in ("det", "nondet")`` and imported the brake runners by
name.  The registry replaces that branching with data: an
:class:`AppDefinition` names an application, maps each variant to its
runner (as a lazily-imported ``"module:function"`` string, so listing
apps never pays for importing their worlds), and carries the
scenario-type plumbing ``ScenarioSpec`` needs to serialize specs for
any app.  Registering an app makes it appear in every subcommand —
``explore``, ``faults``, ``flows``, ``submit`` — for free.

Runner contract: ``runner(seed, scenario, switch_config=None,
fault_plan=None, fault_replay=None, fault_universe=None,
fault_checkpointer=None)`` returning a
:class:`~repro.apps.brake.instrumentation.BrakeRunResult`-shaped value
(``errors``/``commands``/``trace_fingerprints``/``outcome_digest()``).
Runners must be picklable module-level callables — the sweep engine
fans them out to worker processes.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field, fields, is_dataclass
from typing import Any, Callable, Mapping

__all__ = ["AppDefinition", "register", "get", "names", "apps"]


def _generic_scenario_to_dict(scenario: Any) -> dict:
    """Field-by-field dict of a (possibly nested) scenario dataclass.

    Nested dataclass values (e.g. :class:`StageTiming`) flatten to dicts
    of their fields — the same shape the brake converters produce.
    """
    out: dict[str, Any] = {}
    for f in fields(scenario):
        value = getattr(scenario, f.name)
        if is_dataclass(value) and not isinstance(value, type):
            value = {g.name: getattr(value, g.name) for g in fields(value)}
        out[f.name] = value
    return out


def _generic_scenario_from_dict(scenario_type: type) -> Callable[[dict], Any]:
    def loader(data: dict) -> Any:
        kwargs: dict[str, Any] = {}
        for f in fields(scenario_type):
            if f.name not in data:
                continue
            value = data[f.name]
            if isinstance(value, dict):
                default = getattr(scenario_type(), f.name)
                value = type(default)(**value)
            elif isinstance(value, list):
                value = tuple(value)
            kwargs[f.name] = value
        return scenario_type(**kwargs)

    return loader


@dataclass(frozen=True)
class AppDefinition:
    """One registered application and everything the harness needs."""

    name: str
    title: str
    #: variant -> ``"module:function"``, resolved lazily and cached.
    runners: Mapping[str, str]
    scenario_type: type
    description: str = ""
    #: Library scenarios ship ready-made topology/faults and show up in
    #: the ``repro library`` listing; the brake app predates the library.
    library: bool = True
    scenario_to_dict: Callable[[Any], dict] | None = None
    scenario_from_dict: Callable[[dict], Any] | None = None
    #: scenario -> TopologySpec | None (the app's native fabric).
    default_topology: Callable[[Any], Any] | None = None
    #: scenario -> FaultPlan | None (faults the scenario is *about*,
    #: e.g. the failover app's node crash window).
    default_faults: Callable[[Any], Any] | None = None
    #: Environment/sensor thread names: explore's determinism verifier
    #: suppresses preemptions landing on these (delaying an input driver
    #: changes the input timeline, not the SUT's scheduling).
    input_threads: tuple[str, ...] = ("camera",)
    _resolved: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.runners:
            raise ValueError(f"app {self.name!r} needs at least one runner")

    def variants(self) -> tuple[str, ...]:
        return tuple(sorted(self.runners))

    def runner(self, variant: str) -> Callable:
        """The (lazily imported) runner for *variant*."""
        cached = self._resolved.get(variant)
        if cached is not None:
            return cached
        target = self.runners.get(variant)
        if target is None:
            raise ValueError(
                f"app {self.name!r} has no variant {variant!r}; "
                f"known: {list(self.variants())}"
            )
        module_name, _, func_name = target.partition(":")
        func = getattr(importlib.import_module(module_name), func_name)
        self._resolved[variant] = func
        return func

    def default_scenario(self) -> Any:
        return self.scenario_type()

    def dump_scenario(self, scenario: Any) -> dict:
        convert = self.scenario_to_dict or _generic_scenario_to_dict
        return convert(scenario)

    def load_scenario(self, data: dict) -> Any:
        convert = self.scenario_from_dict or _generic_scenario_from_dict(
            self.scenario_type
        )
        return convert(data)

    def topology_for(self, scenario: Any):
        return None if self.default_topology is None else self.default_topology(
            scenario
        )

    def faults_for(self, scenario: Any):
        return None if self.default_faults is None else self.default_faults(scenario)


_REGISTRY: dict[str, AppDefinition] = {}
_BUILTINS_LOADED = False


def register(app: AppDefinition) -> AppDefinition:
    """Add *app* to the registry (idempotent per name/definition)."""
    existing = _REGISTRY.get(app.name)
    if existing is not None and existing != app:
        raise ValueError(f"app {app.name!r} already registered differently")
    _REGISTRY[app.name] = app
    return app


def _ensure_builtins() -> None:
    """Import the packages that register the built-in apps."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    import repro.apps  # noqa: F401  (registers brake)
    import repro.apps.lib  # noqa: F401  (registers the scenario library)


def get(name: str) -> AppDefinition:
    """Look up a registered app by name."""
    _ensure_builtins()
    app = _REGISTRY.get(name)
    if app is None:
        raise KeyError(f"unknown app {name!r}; known: {names()}")
    return app


def names(library: bool | None = None) -> tuple[str, ...]:
    """Registered app names, optionally filtered to library scenarios."""
    _ensure_builtins()
    return tuple(
        sorted(
            name
            for name, app in _REGISTRY.items()
            if library is None or app.library == library
        )
    )


def apps() -> tuple[AppDefinition, ...]:
    """All registered apps, sorted by name."""
    _ensure_builtins()
    return tuple(_REGISTRY[name] for name in names())
