"""Shared plumbing of the scenario library.

Every library app builds its world the same way — a
:class:`~repro.network.topology.TopologySpec` fabric, one platform +
NIC + SD daemon per node, an optional fault plan — and reports results
in the same :class:`~repro.apps.brake.instrumentation.BrakeRunResult`
shape the whole harness (sweeps, obs drivers, CLI reports,
``outcome_digest``) already consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.network import ConstantLatency, NetworkInterface, Switch, SwitchConfig
from repro.network.topology import TopologySpec
from repro.obs import context as obs_context
from repro.sim import World
from repro.sim.platform import MINNOWBOARD, PlatformConfig
from repro.someip import SdDaemon
from repro.time.clock import ClockModel
from repro.time.duration import US

__all__ = [
    "SinkCommand",
    "PipelineErrors",
    "build_library_world",
    "library_platform_config",
    "library_switch_config",
    "begin_flow",
    "deliver_flow",
    "drop_flow",
    "random_offset",
    "spike",
]


#: Calm but parallel: MINNOWBOARD's core count with every jitter source
#: removed.  A single calm core would serialize subscriber callbacks
#: behind running reactions, making physical-action tags depend on
#: (seed-sampled) execution times — exactly what ``deterministic_inputs``
#: must avoid.  Dispatch is FIFO so that two tasks waking at the same
#: instant (e.g. an SD cyclic offer colliding with a publish tick) hit
#: the wire in seed-independent order.
CALM_QUAD = PlatformConfig(
    num_cores=MINNOWBOARD.num_cores,
    clock=ClockModel.perfect(),
    dispatch_jitter_ns=0,
    timer_jitter_ns=0,
    deterministic_dispatch=True,
)


def library_platform_config(scenario) -> PlatformConfig:
    """Host config: calm (jitter-free) when inputs must be seed-fixed."""
    if getattr(scenario, "deterministic_inputs", False):
        return CALM_QUAD
    return MINNOWBOARD


def library_switch_config(scenario, switch_config):
    """The app-default network when the caller supplied none.

    Under ``deterministic_inputs`` the links get constant latencies —
    the same defaults the brake world uses for ``deterministic_camera``
    — so physical arrival times (and with them every physical-action
    tag) are identical across world seeds.
    """
    if switch_config is not None:
        return switch_config
    if getattr(scenario, "deterministic_inputs", False):
        return SwitchConfig(
            latency=ConstantLatency(300 * US),
            loopback_latency=ConstantLatency(50 * US),
        )
    return None


@dataclass(frozen=True)
class SinkCommand:
    """A library pipeline's per-sequence output.

    Field-compatible with the brake command as far as
    :meth:`BrakeRunResult.outcome_digest` reads it
    (``frame_seq`` / ``brake`` / ``intensity``): ``brake`` doubles as
    "the sink acted on this sample", ``intensity`` as its scalar output.
    """

    frame_seq: int
    brake: bool
    intensity: float


#: Library counterpart of the brake ``ERROR_TYPES`` legend.
LIB_ERROR_TYPES = (
    "dropped_input",
    "mismatched_inputs",
    "stale_publishes",
)


@dataclass
class PipelineErrors:
    """Error counters of a library pipeline (duck-types ``ErrorCounters``)."""

    #: Unread items overwritten in one-slot input buffers.
    dropped_input: int = 0
    #: Fan-in groups discarded because sequences were misaligned.
    mismatched_inputs: int = 0
    #: Samples published while no subscriber was live (failover gaps).
    stale_publishes: int = 0

    def total(self) -> int:
        return self.dropped_input + self.mismatched_inputs + self.stale_publishes

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in LIB_ERROR_TYPES}


def build_library_world(
    seed: int,
    hosts: list[tuple[str, PlatformConfig]],
    topology: TopologySpec,
    switch_config: SwitchConfig | None = None,
    fault_plan=None,
    fault_replay=None,
    fault_universe=None,
    fault_checkpointer=None,
) -> World:
    """One fabric, one platform + NIC + SD daemon per topology node.

    *switch_config* (from ``ScenarioSpec``) may already carry a
    topology; when it does not, the app's native *topology* is embedded
    so CLI-supplied network knobs compose with the app's fabric.
    """
    world = World(seed)
    if switch_config is None:
        switch_config = SwitchConfig(topology=topology)
    elif switch_config.topology is None:
        switch_config = replace(switch_config, topology=topology)
    switch = Switch(world.sim, world.rng.stream("net"), switch_config)
    world.attach_network(switch)
    for host, config in hosts:
        platform = world.add_platform(host, config)
        nic = NetworkInterface(platform, switch)
        SdDaemon(platform, nic)
    if fault_plan is not None and not fault_plan.is_empty:
        from repro.faults import install_fault_plan

        install_fault_plan(
            world,
            fault_plan,
            replay=fault_replay,
            universe=fault_universe,
            checkpointer=fault_checkpointer,
        )
    return world


def begin_flow(seq: int, now: int):
    """Open flow *seq* (or re-enter it if another producer opened it).

    Returns the flow registry while tracing is active, else ``None``;
    callers pair this with ``flows.restore_current(None)`` after the
    send, exactly like the brake camera.
    """
    o = obs_context.ACTIVE
    flows = o.flows if o.enabled else None
    if flows is None:
        return None
    if flows.known(seq):
        # A second producer of the same sequence (failover overlap):
        # keep the original record, just make the flow current so the
        # send's hops land on it.
        flows.swap_current(seq)
    else:
        flows.begin(seq, now)
    return flows


def deliver_flow(seq: int, now: int) -> None:
    """Mark flow *seq* delivered at the pipeline sink."""
    o = obs_context.ACTIVE
    if o.enabled and o.flows is not None:
        o.flows.deliver(seq, now)


def drop_flow(seq: int, layer: str, cause: str, now: int) -> None:
    """Attribute flow *seq*'s loss to ``(layer, cause)``."""
    from repro.obs.flows import attribute_drop

    o = obs_context.ACTIVE
    if o.enabled:
        attribute_drop(o, layer, cause, now, flow_id=seq)


def random_offset(world: World, name: str, period_ns: int) -> int:
    """Deterministic per-task phase within the period (own RNG stream)."""
    return world.rng.stream(f"offset.{name}").randint(0, period_ns - 1)


def spike(world: World, name: str, probability: float, max_ns: int) -> int:
    """Occasional extra latency of a periodic callback (OS hiccup)."""
    rng = world.rng.stream(f"spike.{name}")
    if probability > 0.0 and rng.random() < probability:
        return rng.randint(0, max_ns)
    return 0
