"""Scenario dataclasses for the multi-ECU scenario library.

Each scenario is a frozen, JSON-round-trippable parameter set (only
primitives and :class:`StageTiming` values), mirroring
:class:`~repro.apps.brake.scenario.BrakeScenario`: ``ScenarioSpec``
serializes them via the registry's generic converter, and the STP
override path rewrites ``latency_bound_ns``/``clock_error_ns`` with
:func:`dataclasses.replace` — so every scenario carries those fields.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.brake.scenario import StageTiming
from repro.time.duration import MS, SEC, US

__all__ = ["FusionScenario", "FailoverScenario", "MixedCriticalityScenario"]


@dataclass(frozen=True)
class FusionScenario:
    """Multi-sensor fusion with fan-in ordering hazards.

    Three sensor ECUs (camera, radar, lidar) publish one sample per
    period; a fusion ECU on the far side of a two-switch fabric must
    combine the three samples *of the same sequence number*.  The stock
    variant fuses whatever its one-slot buffers hold when the periodic
    callback fires — misaligned sequences are the fan-in hazard; the
    DEAR variant aligns by sequence under safe-to-process waits.
    """

    n_frames: int = 300
    period_ns: int = 50 * MS
    #: Per-sensor send jitter: sample k leaves at k*period + U(0, jitter).
    #: Wide on purpose (40% of the period): the three arrivals of a
    #: group spread far enough that a fixed-phase periodic reader often
    #: straddles them — the fan-in hazard under study.
    sensor_jitter_ns: int = 20 * MS
    warmup_ns: int = 600 * MS
    #: Execution-time models.
    sensor: StageTiming = StageTiming(200 * US, 1 * MS)
    fuse: StageTiming = StageTiming(1 * MS, 4 * MS)
    sample_copy_cost: StageTiming = StageTiming(100 * US, 800 * US)
    #: Occasional late periodic callbacks (stock variant).
    callback_spike_probability: float = 0.02
    callback_spike_max_ns: int = 8 * MS
    #: DEAR deadlines.
    sensor_deadline_ns: int = 5 * MS
    fuse_deadline_ns: int = 10 * MS
    #: Assumed worst-case communication latency L (two-hop fabric).
    latency_bound_ns: int = 8 * MS
    #: Assumed clock synchronization error E.
    clock_error_ns: int = 0
    late_policy: str = "process"
    #: How far (in completed sequence numbers) an incomplete fan-in
    #: group may lag before the DEAR fusion stage evicts it.
    eviction_horizon: int = 8
    #: Hold the *inputs* fixed across world seeds (calm platforms,
    #: constant link latencies, no sensor jitter) — the library analogue
    #: of the brake scenario's ``deterministic_camera``, required by
    #: cross-seed DEAR trace-identity checks (``repro faults``).
    deterministic_inputs: bool = False

    def total_duration_ns(self) -> int:
        """Simulation horizon comfortably covering the whole run."""
        return self.warmup_ns + (self.n_frames + 12) * self.period_ns


@dataclass(frozen=True)
class FailoverScenario:
    """SOME/IP SD service failover under a node crash.

    A primary producer ECU streams readings to a consumer ECU across a
    two-switch fabric; a standby producer on a third ECU watches the
    primary's SD offer and takes over when its TTL lapses.  The default
    fault plan crashes the primary over ``[outage_start_ns,
    outage_end_ns)`` — discovery TTL expiry, FIND retransmission and
    re-subscription are exactly the machinery under test.
    """

    n_frames: int = 360
    period_ns: int = 50 * MS
    jitter_ns: int = 1 * MS
    warmup_ns: int = 600 * MS
    produce: StageTiming = StageTiming(100 * US, 600 * US)
    consume: StageTiming = StageTiming(500 * US, 2 * MS)
    callback_spike_probability: float = 0.02
    callback_spike_max_ns: int = 8 * MS
    #: Primary crash window (absolute simulation time).
    outage_start_ns: int = 5 * SEC
    outage_end_ns: int = 11 * SEC
    #: Standby poll period for the primary's cached offer.
    standby_poll_ns: int = 500 * MS
    #: Consumer staleness threshold before it re-runs discovery.
    stale_after_ns: int = 1500 * MS
    consume_deadline_ns: int = 10 * MS
    latency_bound_ns: int = 8 * MS
    clock_error_ns: int = 0
    late_policy: str = "process"
    #: See :attr:`FusionScenario.deterministic_inputs`.
    deterministic_inputs: bool = False

    def total_duration_ns(self) -> int:
        """Simulation horizon comfortably covering the whole run."""
        return self.warmup_ns + (self.n_frames + 12) * self.period_ns


@dataclass(frozen=True)
class MixedCriticalityScenario:
    """A critical control flow sharing a fabric with bulk telemetry.

    The critical path (sensor ECU -> control ECU) crosses the same
    inter-switch trunk as a bursty bulk flow (telemetry ECU -> logger
    ECU).  The trunk is deliberately slow (``trunk_ns_per_byte``), so
    bulk bursts queue critical samples behind them — within the declared
    latency bound ``L`` by design, which DEAR absorbs while the stock
    variant's periodic sampling turns the induced jitter into buffer
    overwrites.
    """

    n_frames: int = 600
    period_ns: int = 10 * MS
    jitter_ns: int = 500_000
    warmup_ns: int = 600 * MS
    produce: StageTiming = StageTiming(50 * US, 300 * US)
    consume: StageTiming = StageTiming(500 * US, 3 * MS)
    callback_spike_probability: float = 0.02
    callback_spike_max_ns: int = 4 * MS
    #: Bulk telemetry: bursts of large raw datagrams.
    bulk_bytes: int = 16_000
    bulk_burst: int = 4
    bulk_period_ns: int = 20 * MS
    #: Serialization rate of the shared inter-switch trunk
    #: (64 ns/byte ~ 125 Mbit/s; edge links stay at the default).
    trunk_ns_per_byte: int = 64
    consume_deadline_ns: int = 8 * MS
    latency_bound_ns: int = 6 * MS
    clock_error_ns: int = 0
    late_policy: str = "process"
    #: See :attr:`FusionScenario.deterministic_inputs`.
    deterministic_inputs: bool = False

    def total_duration_ns(self) -> int:
        """Simulation horizon comfortably covering the whole run."""
        return self.warmup_ns + (self.n_frames + 12) * self.period_ns
