"""Multi-sensor fusion with fan-in ordering hazards (library scenario).

Three sensor ECUs — camera, radar, lidar — each publish one sample per
period over SOME/IP; a fusion ECU on the far side of a two-switch
fabric combines the three samples *of the same sequence number* into
one actuation value.  The camera is the flow anchor: causal flow
tracing follows its sample, and a fan-in group that cannot be completed
for a sequence is an attributed loss (``fanin-mismatch``).

* **stock** (:func:`run_nondet_fusion`): per-input one-slot buffers and
  a periodic fusion callback.  Whatever the buffers hold when the timer
  fires gets fused — misaligned sequence numbers are counted (and the
  output computed from stale data), missing companions discard the
  anchor sample outright;
* **DEAR** (:func:`run_det_fusion`): each sensor is a reactor behind a
  :class:`ServerEventTransactor`; the fusion reactor consumes three
  tagged streams under safe-to-process waits and aligns groups by
  sequence number exactly.
"""

from __future__ import annotations

from typing import Any

from repro.ara import AraProcess, Event, ServiceInterface
from repro.apps.brake.instrumentation import BrakeRunResult, OneSlotBuffer
from repro.apps.lib.common import (
    PipelineErrors,
    SinkCommand,
    begin_flow,
    build_library_world,
    library_platform_config,
    library_switch_config,
    deliver_flow,
    drop_flow,
    random_offset,
    spike,
)
from repro.apps.lib.scenarios import FusionScenario
from repro.dear import (
    ClientEventTransactor,
    LatePolicy,
    ServerEventTransactor,
    StpConfig,
    TransactorConfig,
)
from repro.network import NetworkInterface
from repro.network.topology import TopologySpec
from repro.obs.flows import CAUSE_FANIN_MISMATCH, LAYER_APP, LAYER_REACTOR
from repro.reactors import Environment, Reactor
from repro.sim import Compute, SleepUntil, World
from repro.someip.serialization import INT64, Struct, UINT32
from repro.time.duration import SEC

CAMERA_ECU = "camera-ecu"
RADAR_ECU = "radar-ecu"
LIDAR_ECU = "lidar-ecu"
FUSION_ECU = "fusion-ecu"

SAMPLE_SPEC = Struct([("seq", UINT32), ("value", INT64)], name="sample")

CAMERA_SERVICE = ServiceInterface(
    "CameraSampleService", 0x0B01,
    events=[Event("sample", 0x8001, data=SAMPLE_SPEC.fields)],
)
RADAR_SERVICE = ServiceInterface(
    "RadarSampleService", 0x0B02,
    events=[Event("sample", 0x8001, data=SAMPLE_SPEC.fields)],
)
LIDAR_SERVICE = ServiceInterface(
    "LidarSampleService", 0x0B03,
    events=[Event("sample", 0x8001, data=SAMPLE_SPEC.fields)],
)

#: (host, service, PRF salt) per sensor; the camera anchors the flows.
SENSORS = (
    ("camera", CAMERA_ECU, CAMERA_SERVICE, 7),
    ("radar", RADAR_ECU, RADAR_SERVICE, 11),
    ("lidar", LIDAR_ECU, LIDAR_SERVICE, 13),
)

#: Actuation threshold on the fused value.
FUSE_THRESHOLD = 50.0


def fusion_topology(scenario: FusionScenario | None = None) -> TopologySpec:
    """Sensor switch + fusion switch, joined by one trunk."""
    return TopologySpec.chain(
        ((CAMERA_ECU, RADAR_ECU, LIDAR_ECU), (FUSION_ECU,))
    )


def sensor_value(seq: int, salt: int) -> int:
    """Deterministic ground-truth sample (pure function of seq)."""
    return (seq * 37 + salt * 17) % 101


def fuse_values(cam: int, rad: int, lid: int) -> float:
    return (cam + rad + lid) / 3.0


def _build_world(scenario, seed, switch_config, fault_plan, replay, universe, ckpt):
    config = library_platform_config(scenario)
    hosts = [
        (CAMERA_ECU, config),
        (RADAR_ECU, config),
        (LIDAR_ECU, config),
        (FUSION_ECU, config),
    ]
    return build_library_world(
        seed,
        hosts,
        fusion_topology(scenario),
        switch_config=library_switch_config(scenario, switch_config),
        fault_plan=fault_plan,
        fault_replay=replay,
        fault_universe=universe,
        fault_checkpointer=ckpt,
    )


def _start_sensors(
    world: World,
    scenario: FusionScenario,
    send_times: dict[int, int],
    emit,
) -> None:
    """One producer thread per sensor ECU; *emit(name, seq, wire)* sends.

    The camera opens each flow (the other sensors' samples are hops on
    it — all three share the sequence number).
    """
    for name, host, _service, salt in SENSORS:
        platform = world.platform(host)
        jitter_rng = world.rng.stream(f"{name}.jitter")
        is_anchor = name == "camera"

        def sensor_thread(name=name, salt=salt, is_anchor=is_anchor,
                          jitter_rng=jitter_rng):
            for seq in range(scenario.n_frames):
                target = scenario.warmup_ns + seq * scenario.period_ns
                if scenario.sensor_jitter_ns and not scenario.deterministic_inputs:
                    target += jitter_rng.randint(0, scenario.sensor_jitter_ns)
                yield SleepUntil(target)
                wire = {"seq": seq, "value": sensor_value(seq, salt)}
                flows = None
                if is_anchor:
                    send_times[seq] = world.sim.now
                    flows = begin_flow(seq, world.sim.now)
                emit(name, seq, wire)
                if flows is not None:
                    flows.restore_current(None)

        platform.spawn(name, sensor_thread())


def run_nondet_fusion(
    seed: int,
    scenario: FusionScenario | None = None,
    switch_config=None,
    fault_plan=None,
    fault_replay=None,
    fault_universe=None,
    fault_checkpointer=None,
) -> BrakeRunResult:
    """Run the stock fusion pipeline once; returns measurements."""
    scenario = scenario or FusionScenario()
    world = _build_world(
        scenario, seed, switch_config, fault_plan,
        fault_replay, fault_universe, fault_checkpointer,
    )
    fusion = world.platform(FUSION_ECU)
    errors = PipelineErrors()
    commands: dict[int, Any] = {}
    latencies: dict[int, int] = {}
    send_times: dict[int, int] = {}

    # ---- sensor-side skeletons --------------------------------------------
    skeletons: dict[str, Any] = {}
    for name, host, service, _salt in SENSORS:
        process = AraProcess(world.platform(host), name)
        skeleton = process.create_skeleton(service, 1)
        skeleton.offer()
        skeletons[name] = skeleton

    def emit(name: str, seq: int, wire: dict) -> None:
        skeletons[name].send_event("sample", wire)

    # ---- fusion: three one-slot buffers + a periodic callback -------------
    fusion_process = AraProcess(fusion, "fusion")
    buffers = {
        name: OneSlotBuffer(f"fusion.{name}", sim=world.sim)
        for name, _host, _service, _salt in SENSORS
    }
    copy_rng = world.rng.stream("copy.fusion")
    fuse_rng = world.rng.stream("exec.fusion")

    def fusion_setup():
        for name, _host, service, _salt in SENSORS:
            proxy = yield from fusion_process.find_service(service, 1)

            def on_sample(data, name=name):
                yield Compute(scenario.sample_copy_cost.sample(copy_rng))
                buffers[name].write(data)

            proxy.subscribe("sample", on_sample)

    fusion_process.spawn("setup", fusion_setup())

    def fuse_body():
        late = spike(
            world, "fusion",
            scenario.callback_spike_probability, scenario.callback_spike_max_ns,
        )
        if late:
            yield Compute(late)
        cam = buffers["camera"].read()
        rad = buffers["radar"].read()
        lid = buffers["lidar"].read()
        if cam is None and rad is None and lid is None:
            return
        if cam is None:
            # A fan-in group without its anchor: nothing to key on.
            errors.mismatched_inputs += 1
            return
        if rad is None or lid is None:
            # The anchor sample is consumed without a complete group —
            # that sequence can never be fused again.
            errors.mismatched_inputs += 1
            drop_flow(
                cam["seq"], LAYER_APP, CAUSE_FANIN_MISMATCH, world.sim.now
            )
            return
        if not (cam["seq"] == rad["seq"] == lid["seq"]):
            # Stale companions: the stock pipeline fuses them anyway.
            errors.mismatched_inputs += 1
        yield Compute(scenario.fuse.sample(fuse_rng))
        fused = fuse_values(cam["value"], rad["value"], lid["value"])
        seq = cam["seq"]
        commands[seq] = SinkCommand(seq, fused > FUSE_THRESHOLD, fused)
        sent = send_times.get(seq)
        if sent is not None:
            latencies[seq] = world.sim.now - sent
        deliver_flow(seq, world.sim.now)

    fusion.periodic(
        "fusion", scenario.period_ns, fuse_body,
        offset_ns=random_offset(world, "fusion", scenario.period_ns),
        start_delay_ns=scenario.warmup_ns // 2,
    )

    # ---- run --------------------------------------------------------------
    _start_sensors(world, scenario, send_times, emit)
    world.run_for(scenario.total_duration_ns())

    errors.dropped_input = sum(buffer.drops for buffer in buffers.values())
    return BrakeRunResult(
        seed=seed,
        n_frames=scenario.n_frames,
        errors=errors,
        commands=commands,
        latencies_ns=latencies,
        fault_summary=(
            None if world.fault_injector is None else world.fault_injector.summary()
        ),
    )


def _transactor_config(scenario: FusionScenario, deadline_ns: int) -> TransactorConfig:
    return TransactorConfig(
        deadline_ns=deadline_ns,
        stp=StpConfig(
            latency_bound_ns=scenario.latency_bound_ns,
            clock_error_ns=scenario.clock_error_ns,
        ),
        late_policy=LatePolicy(scenario.late_policy),
    )


class _SensorLogic(Reactor):
    """One sensor: sporadic sample arrivals -> tagged sample events."""

    def __init__(self, name, owner, scenario: FusionScenario):
        super().__init__(name, owner)
        self.sample_arrival = self.physical_action("sample_arrival")
        self.out = self.output("out")
        self.reaction(
            "forward",
            triggers=[self.sample_arrival],
            effects=[self.out],
            body=lambda ctx: ctx.set(self.out, ctx.get(self.sample_arrival)),
            exec_time=lambda rng: scenario.sensor.sample(rng),
        )


class _FusionLogic(Reactor):
    """Aligns the three tagged sample streams by sequence number.

    Samples arrive at per-sensor tags; groups complete when all three
    sensors contributed a given sequence.  Incomplete groups lagging
    ``eviction_horizon`` behind the newest completion are evicted as
    fan-in mismatches — under intact assumptions none are.
    """

    def __init__(self, name, owner, scenario, errors, sink, world):
        super().__init__(name, owner)
        self.cam_in = self.input("cam_in")
        self.rad_in = self.input("rad_in")
        self.lid_in = self.input("lid_in")
        self.pending: dict[int, dict[str, int]] = {}
        self.completed_horizon = -1

        def work(ctx):
            for source, port in (
                ("camera", self.cam_in),
                ("radar", self.rad_in),
                ("lidar", self.lid_in),
            ):
                if not ctx.is_present(port):
                    continue
                sample = ctx.get(port)
                group = self.pending.setdefault(sample["seq"], {})
                group[source] = sample["value"]
            done = [
                seq for seq, group in self.pending.items() if len(group) == 3
            ]
            for seq in sorted(done):
                group = self.pending.pop(seq)
                sink(seq, group)
                self.completed_horizon = max(self.completed_horizon, seq)
            floor = self.completed_horizon - scenario.eviction_horizon
            for seq in sorted(self.pending):
                if seq >= floor:
                    break
                del self.pending[seq]
                errors.mismatched_inputs += 1
                drop_flow(
                    seq, LAYER_REACTOR, CAUSE_FANIN_MISMATCH, world.sim.now
                )

        self.reaction(
            "align",
            triggers=[self.cam_in, self.rad_in, self.lid_in],
            body=work,
            exec_time=lambda rng: scenario.fuse.sample(rng),
        )


def run_det_fusion(
    seed: int,
    scenario: FusionScenario | None = None,
    switch_config=None,
    fault_plan=None,
    fault_replay=None,
    fault_universe=None,
    fault_checkpointer=None,
) -> BrakeRunResult:
    """Run the DEAR fusion pipeline once; returns measurements."""
    scenario = scenario or FusionScenario()
    world = _build_world(
        scenario, seed, switch_config, fault_plan,
        fault_replay, fault_universe, fault_checkpointer,
    )
    fusion = world.platform(FUSION_ECU)
    errors = PipelineErrors()
    commands: dict[int, Any] = {}
    latencies: dict[int, int] = {}
    send_times: dict[int, int] = {}
    horizon = scenario.total_duration_ns()
    transactors = []

    # ---- sensors: reactor + server transactor per ECU ---------------------
    sensor_envs: dict[str, Environment] = {}
    sensor_logics: dict[str, _SensorLogic] = {}
    for name, host, service, _salt in SENSORS:
        platform = world.platform(host)
        process = AraProcess(platform, name, tag_aware=True)
        env = Environment(name=name, timeout=horizon, trace_origin=0)
        logic = _SensorLogic("logic", env, scenario)
        skeleton = process.create_skeleton(service, 1)
        tx = ServerEventTransactor(
            "sample_tx", env, process, skeleton, "sample",
            _transactor_config(scenario, scenario.sensor_deadline_ns),
        )
        env.connect(logic.out, tx.inp)
        skeleton.offer()
        transactors.append(tx)
        env.start(platform)
        sensor_envs[name] = env
        sensor_logics[name] = logic

    def emit(name: str, seq: int, wire: dict) -> None:
        sensor_logics[name].sample_arrival.schedule(wire)

    # ---- fusion: three tagged client streams into one aligner -------------
    fusion_process = AraProcess(fusion, "fusion", tag_aware=True)
    fusion_env = Environment(name="fusion", timeout=horizon, trace_origin=0)

    def sink(seq: int, group: dict[str, int]) -> None:
        fused = fuse_values(group["camera"], group["radar"], group["lidar"])
        commands[seq] = SinkCommand(seq, fused > FUSE_THRESHOLD, fused)
        sent = send_times.get(seq)
        if sent is not None:
            latencies[seq] = world.sim.now - sent
        deliver_flow(seq, world.sim.now)

    fusion_logic = _FusionLogic("logic", fusion_env, scenario, errors, sink, world)

    def fusion_setup():
        config = _transactor_config(scenario, scenario.fuse_deadline_ns)
        for service, port in (
            (CAMERA_SERVICE, fusion_logic.cam_in),
            (RADAR_SERVICE, fusion_logic.rad_in),
            (LIDAR_SERVICE, fusion_logic.lid_in),
        ):
            proxy = yield from fusion_process.find_service(service, 1)
            rx = ClientEventTransactor(
                f"{service.name}_rx", fusion_env, fusion_process, proxy,
                "sample", config,
            )
            fusion_env.connect(rx.out, port)
            transactors.append(rx)
        fusion_env.start(fusion)

    fusion_process.spawn("setup", fusion_setup())

    # ---- run --------------------------------------------------------------
    _start_sensors(world, scenario, send_times, emit)
    world.run_for(horizon + 1 * SEC)

    # Groups still incomplete at the end of the run never fused.
    for seq in sorted(fusion_logic.pending):
        errors.mismatched_inputs += 1
        drop_flow(seq, LAYER_REACTOR, CAUSE_FANIN_MISMATCH, world.sim.now)

    return BrakeRunResult(
        seed=seed,
        n_frames=scenario.n_frames,
        errors=errors,
        commands=commands,
        latencies_ns=latencies,
        trace_fingerprints={
            env.name: env.trace.fingerprint()
            for env in (*sensor_envs.values(), fusion_env)
        },
        deadline_misses=sum(t.deadline_misses for t in transactors),
        stp_violations=sum(t.stp_violations for t in transactors),
        fault_summary=(
            None if world.fault_injector is None else world.fault_injector.summary()
        ),
    )
