"""The multi-ECU scenario library.

Three ready-made applications, each on a non-trivial
:class:`~repro.network.topology.TopologySpec` and each shipped in a
stock (``nondet``) and a DEAR (``det``) variant:

* ``fusion`` — three sensor ECUs fan into a fusion ECU; misaligned
  fan-in groups are the hazard (:mod:`repro.apps.lib.fusion`);
* ``failover`` — SOME/IP SD service failover while the primary
  producer ECU crashes (:mod:`repro.apps.lib.failover`);
* ``mixedcrit`` — a critical control flow sharing an inter-switch
  trunk with bulk telemetry (:mod:`repro.apps.lib.mixedcrit`).

Importing this package registers the apps; everything downstream
(``ScenarioSpec``, obs drivers, every CLI subcommand) picks them up
through :mod:`repro.apps.registry`.
"""

from repro.apps.lib.common import LIB_ERROR_TYPES, PipelineErrors, SinkCommand
from repro.apps.lib.scenarios import (
    FailoverScenario,
    FusionScenario,
    MixedCriticalityScenario,
)
from repro.apps.registry import AppDefinition, register

__all__ = [
    "LIB_ERROR_TYPES",
    "PipelineErrors",
    "SinkCommand",
    "FusionScenario",
    "FailoverScenario",
    "MixedCriticalityScenario",
]


def _fusion_topology(scenario):
    from repro.apps.lib.fusion import fusion_topology

    return fusion_topology(scenario)


def _failover_topology(scenario):
    from repro.apps.lib.failover import failover_topology

    return failover_topology(scenario)


def _failover_faults(scenario):
    from repro.apps.lib.failover import failover_faults

    return failover_faults(scenario)


def _mixedcrit_topology(scenario):
    from repro.apps.lib.mixedcrit import mixedcrit_topology

    return mixedcrit_topology(scenario)


def _register_library() -> None:
    register(
        AppDefinition(
            name="fusion",
            title="Multi-sensor fusion (fan-in ordering)",
            description=(
                "Camera/radar/lidar ECUs fan into a fusion ECU across two "
                "switches; groups must align by sequence number."
            ),
            runners={
                "det": "repro.apps.lib.fusion:run_det_fusion",
                "nondet": "repro.apps.lib.fusion:run_nondet_fusion",
            },
            scenario_type=FusionScenario,
            default_topology=_fusion_topology,
            input_threads=("camera", "radar", "lidar"),
        )
    )
    register(
        AppDefinition(
            name="failover",
            title="SOME/IP SD service failover (node crash)",
            description=(
                "A standby producer takes over a service instance while the "
                "primary ECU crashes; discovery TTLs drive the hand-over."
            ),
            runners={
                "det": "repro.apps.lib.failover:run_det_failover",
                "nondet": "repro.apps.lib.failover:run_nondet_failover",
            },
            scenario_type=FailoverScenario,
            default_topology=_failover_topology,
            default_faults=_failover_faults,
            input_threads=("tick",),
        )
    )
    register(
        AppDefinition(
            name="mixedcrit",
            title="Mixed criticality (shared trunk)",
            description=(
                "A critical control flow shares a slow inter-switch trunk "
                "with bursty bulk telemetry."
            ),
            runners={
                "det": "repro.apps.lib.mixedcrit:run_det_mixedcrit",
                "nondet": "repro.apps.lib.mixedcrit:run_nondet_mixedcrit",
            },
            scenario_type=MixedCriticalityScenario,
            default_topology=_mixedcrit_topology,
            input_threads=("sensor", "telemetry"),
        )
    )


_register_library()
