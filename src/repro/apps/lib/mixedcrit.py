"""Mixed-criticality pipeline sharing a switch fabric (library scenario).

A critical control flow (sensor ECU -> control ECU) crosses the same
inter-switch trunk as bursty bulk telemetry (telemetry ECU -> logger
ECU).  The trunk is deliberately slow, so every bulk burst queues the
critical sample behind kilobytes of telemetry — jitter that stays
within the declared latency bound ``L`` by construction.

* **stock** (:func:`run_nondet_mixedcrit`): the control ECU samples a
  one-slot buffer periodically; trunk-induced jitter beats against the
  sampling phase and turns into buffer overwrites and deadline misses;
* **DEAR** (:func:`run_det_mixedcrit`): sensor and control run as
  reactors bridged by event transactors; safe-to-process waits absorb
  the contention jitter, so every sample is processed exactly once in
  tag order.
"""

from __future__ import annotations

from typing import Any

from repro.ara import AraProcess, Event, ServiceInterface
from repro.apps.brake.instrumentation import BrakeRunResult, OneSlotBuffer
from repro.apps.lib.common import (
    PipelineErrors,
    SinkCommand,
    begin_flow,
    build_library_world,
    library_platform_config,
    library_switch_config,
    deliver_flow,
    random_offset,
    spike,
)
from repro.apps.lib.scenarios import MixedCriticalityScenario
from repro.dear import (
    ClientEventTransactor,
    LatePolicy,
    ServerEventTransactor,
    StpConfig,
    TransactorConfig,
)
from repro.network import NetworkInterface
from repro.network.topology import TopologySpec
from repro.reactors import Environment, Reactor
from repro.sim import Compute, SleepUntil, World
from repro.someip.serialization import INT64, Struct, UINT32
from repro.time.duration import SEC

SENSOR_ECU = "sensor-ecu"
TELEMETRY_ECU = "telemetry-ecu"
CONTROL_ECU = "control-ecu"
LOGGER_ECU = "logger-ecu"

SAMPLE_SPEC = Struct([("seq", UINT32), ("value", INT64)], name="sample")

CONTROL_SERVICE = ServiceInterface(
    "ControlSampleService", 0x0D01,
    events=[Event("sample", 0x8001, data=SAMPLE_SPEC.fields)],
)
INSTANCE = 1

#: Raw port the logger ECU sinks bulk telemetry on.
BULK_PORT = 16000


def mixedcrit_topology(
    scenario: MixedCriticalityScenario | None = None,
) -> TopologySpec:
    """Critical and bulk sources share the trunk to the far switch."""
    scenario = scenario or MixedCriticalityScenario()
    return TopologySpec.chain(
        ((SENSOR_ECU, TELEMETRY_ECU), (CONTROL_ECU, LOGGER_ECU)),
        trunk_ns_per_byte=scenario.trunk_ns_per_byte,
    )


def sample_value(seq: int) -> int:
    """Deterministic ground-truth sample (pure function of seq)."""
    return (seq * 41 + 3) % 211


def _build_world(scenario, seed, switch_config, fault_plan, replay, universe, ckpt):
    config = library_platform_config(scenario)
    hosts = [
        (SENSOR_ECU, config),
        (TELEMETRY_ECU, config),
        (CONTROL_ECU, config),
        (LOGGER_ECU, config),
    ]
    return build_library_world(
        seed,
        hosts,
        mixedcrit_topology(scenario),
        switch_config=library_switch_config(scenario, switch_config),
        fault_plan=fault_plan,
        fault_replay=replay,
        fault_universe=universe,
        fault_checkpointer=ckpt,
    )


def _start_bulk_traffic(world: World, scenario: MixedCriticalityScenario) -> None:
    """Telemetry bursts + a logger sink; not flow-traced (best effort)."""
    telemetry = world.platform(TELEMETRY_ECU)
    logger = world.platform(LOGGER_ECU)
    logger_nic: NetworkInterface = logger.attachments["nic"]
    logger_nic.bind(BULK_PORT)  # sink: frames are dropped on the floor
    socket = telemetry.attachments["nic"].bind()
    payload = b"\x00" * 64  # simulated size dominates, content is moot

    def bulk_thread():
        burst = 0
        while True:
            target = scenario.warmup_ns // 2 + burst * scenario.bulk_period_ns
            yield SleepUntil(target)
            for _ in range(scenario.bulk_burst):
                socket.send(LOGGER_ECU, BULK_PORT, payload, scenario.bulk_bytes)
            burst += 1

    telemetry.spawn("telemetry", bulk_thread())


def _start_sensor(
    world: World,
    scenario: MixedCriticalityScenario,
    send_times: dict[int, int],
    emit,
) -> None:
    platform = world.platform(SENSOR_ECU)
    jitter_rng = world.rng.stream("sensor.jitter")

    def sensor_thread():
        for seq in range(scenario.n_frames):
            target = scenario.warmup_ns + seq * scenario.period_ns
            if scenario.jitter_ns and not scenario.deterministic_inputs:
                target += jitter_rng.randint(0, scenario.jitter_ns)
            yield SleepUntil(target)
            wire = {"seq": seq, "value": sample_value(seq)}
            send_times[seq] = world.sim.now
            flows = begin_flow(seq, world.sim.now)
            emit(seq, wire)
            if flows is not None:
                flows.restore_current(None)

    platform.spawn("sensor", sensor_thread())


def run_nondet_mixedcrit(
    seed: int,
    scenario: MixedCriticalityScenario | None = None,
    switch_config=None,
    fault_plan=None,
    fault_replay=None,
    fault_universe=None,
    fault_checkpointer=None,
) -> BrakeRunResult:
    """Run the stock mixed-criticality pipeline once; returns measurements."""
    scenario = scenario or MixedCriticalityScenario()
    world = _build_world(
        scenario, seed, switch_config, fault_plan,
        fault_replay, fault_universe, fault_checkpointer,
    )
    errors = PipelineErrors()
    commands: dict[int, Any] = {}
    latencies: dict[int, int] = {}
    send_times: dict[int, int] = {}
    deadline_misses = 0

    sensor_process = AraProcess(world.platform(SENSOR_ECU), "sensor")
    skeleton = sensor_process.create_skeleton(CONTROL_SERVICE, INSTANCE)
    skeleton.offer()

    def emit(seq: int, wire: dict) -> None:
        receivers = skeleton.send_event("sample", wire)
        if receivers == 0:
            errors.stale_publishes += 1

    control_platform = world.platform(CONTROL_ECU)
    control = AraProcess(control_platform, "control")
    buffer = OneSlotBuffer("control.sample", sim=world.sim)
    consume_rng = world.rng.stream("exec.consume")

    def control_setup():
        proxy = yield from control.find_service(CONTROL_SERVICE, INSTANCE)
        proxy.subscribe("sample", lambda data: buffer.write(data))

    control.spawn("setup", control_setup())

    def consume_body():
        nonlocal deadline_misses
        late = spike(
            world, "consume",
            scenario.callback_spike_probability, scenario.callback_spike_max_ns,
        )
        if late:
            yield Compute(late)
        sample = buffer.read()
        if sample is None:
            return
        yield Compute(scenario.consume.sample(consume_rng))
        seq = sample["seq"]
        commands[seq] = SinkCommand(seq, True, float(sample["value"]))
        sent = send_times.get(seq)
        if sent is not None:
            latency = world.sim.now - sent
            latencies[seq] = latency
            if latency > scenario.consume_deadline_ns:
                deadline_misses += 1
        deliver_flow(seq, world.sim.now)

    control_platform.periodic(
        "consume", scenario.period_ns, consume_body,
        offset_ns=random_offset(world, "consume", scenario.period_ns),
        start_delay_ns=scenario.warmup_ns // 2,
    )

    _start_bulk_traffic(world, scenario)
    _start_sensor(world, scenario, send_times, emit)
    world.run_for(scenario.total_duration_ns())

    errors.dropped_input = buffer.drops
    return BrakeRunResult(
        seed=seed,
        n_frames=scenario.n_frames,
        errors=errors,
        commands=commands,
        latencies_ns=latencies,
        deadline_misses=deadline_misses,
        fault_summary=(
            None if world.fault_injector is None else world.fault_injector.summary()
        ),
    )


def _transactor_config(scenario: MixedCriticalityScenario) -> TransactorConfig:
    return TransactorConfig(
        deadline_ns=scenario.consume_deadline_ns,
        stp=StpConfig(
            latency_bound_ns=scenario.latency_bound_ns,
            clock_error_ns=scenario.clock_error_ns,
        ),
        late_policy=LatePolicy(scenario.late_policy),
    )


class _SensorLogic(Reactor):
    """Sporadic sample arrivals -> tagged sample events."""

    def __init__(self, name, owner, scenario: MixedCriticalityScenario):
        super().__init__(name, owner)
        self.sample_arrival = self.physical_action("sample_arrival")
        self.out = self.output("out")
        self.reaction(
            "forward",
            triggers=[self.sample_arrival],
            effects=[self.out],
            body=lambda ctx: ctx.set(self.out, ctx.get(self.sample_arrival)),
            exec_time=lambda rng: scenario.produce.sample(rng),
        )


class _ControlLogic(Reactor):
    """Tagged sink of the critical flow."""

    def __init__(self, name, owner, scenario: MixedCriticalityScenario, sink):
        super().__init__(name, owner)
        self.sample_in = self.input("sample_in")
        self.reaction(
            "consume",
            triggers=[self.sample_in],
            body=lambda ctx: sink(ctx.get(self.sample_in)),
            exec_time=lambda rng: scenario.consume.sample(rng),
        )


def run_det_mixedcrit(
    seed: int,
    scenario: MixedCriticalityScenario | None = None,
    switch_config=None,
    fault_plan=None,
    fault_replay=None,
    fault_universe=None,
    fault_checkpointer=None,
) -> BrakeRunResult:
    """Run the DEAR mixed-criticality pipeline once; returns measurements."""
    scenario = scenario or MixedCriticalityScenario()
    world = _build_world(
        scenario, seed, switch_config, fault_plan,
        fault_replay, fault_universe, fault_checkpointer,
    )
    errors = PipelineErrors()
    commands: dict[int, Any] = {}
    latencies: dict[int, int] = {}
    send_times: dict[int, int] = {}
    horizon = scenario.total_duration_ns()
    transactors = []

    # ---- sensor: reactor + server transactor ------------------------------
    sensor_platform = world.platform(SENSOR_ECU)
    sensor_process = AraProcess(sensor_platform, "sensor", tag_aware=True)
    sensor_env = Environment(name="sensor", timeout=horizon, trace_origin=0)
    sensor_logic = _SensorLogic("logic", sensor_env, scenario)
    skeleton = sensor_process.create_skeleton(CONTROL_SERVICE, INSTANCE)
    tx = ServerEventTransactor(
        "sample_tx", sensor_env, sensor_process, skeleton, "sample",
        _transactor_config(scenario),
    )
    sensor_env.connect(sensor_logic.out, tx.inp)
    skeleton.offer()
    transactors.append(tx)
    sensor_env.start(sensor_platform)

    def emit(seq: int, wire: dict) -> None:
        sensor_logic.sample_arrival.schedule(wire)

    # ---- control: client transactor into the tagged sink ------------------
    control_platform = world.platform(CONTROL_ECU)
    control_process = AraProcess(control_platform, "control", tag_aware=True)
    control_env = Environment(name="control", timeout=horizon, trace_origin=0)

    def sink(sample) -> None:
        seq = sample["seq"]
        commands[seq] = SinkCommand(seq, True, float(sample["value"]))
        sent = send_times.get(seq)
        if sent is not None:
            latencies[seq] = world.sim.now - sent
        deliver_flow(seq, world.sim.now)

    control_logic = _ControlLogic("logic", control_env, scenario, sink)

    def control_setup():
        proxy = yield from control_process.find_service(CONTROL_SERVICE, INSTANCE)
        rx = ClientEventTransactor(
            "sample_rx", control_env, control_process, proxy, "sample",
            _transactor_config(scenario),
        )
        control_env.connect(rx.out, control_logic.sample_in)
        transactors.append(rx)
        control_env.start(control_platform)

    control_process.spawn("setup", control_setup())

    # ---- run --------------------------------------------------------------
    _start_bulk_traffic(world, scenario)
    _start_sensor(world, scenario, send_times, emit)
    world.run_for(horizon + 1 * SEC)

    return BrakeRunResult(
        seed=seed,
        n_frames=scenario.n_frames,
        errors=errors,
        commands=commands,
        latencies_ns=latencies,
        trace_fingerprints={
            env.name: env.trace.fingerprint()
            for env in (sensor_env, control_env)
        },
        deadline_misses=sum(t.deadline_misses for t in transactors),
        stp_violations=sum(t.stp_violations for t in transactors),
        fault_summary=(
            None if world.fault_injector is None else world.fault_injector.summary()
        ),
    )
