"""SOME/IP SD service failover under a node crash (library scenario).

A primary producer ECU streams readings to a consumer ECU across a
two-switch fabric; a standby producer on a third ECU watches the
primary's SD offer through its discovery cache and takes over offering
the *same* service instance once the offer's TTL lapses.  The default
fault plan crashes the primary over the scenario's outage window —
discovery TTL expiry, FIND retransmission and re-subscription are
exactly the machinery under test.

Loss accounting: a reading published while no subscriber is live is a
``no-subscriber`` drop at the SOME/IP layer (the skeleton's
``send_event`` reports its receiver count).  During the hand-over both
producers may publish the same sequence; the flow registry keeps one
record per sequence and a later delivery clears the earlier drop.

* **stock** (:func:`run_nondet_failover`): one-slot consumer buffer and
  a periodic consume callback;
* **DEAR** (:func:`run_det_failover`): consumption runs in a reactor
  environment fed by a physical action, so hand-over and re-discovery
  leave a reproducible tagged trace.
"""

from __future__ import annotations

from typing import Any

from repro.ara import AraProcess, Event, ServiceInterface
from repro.apps.brake.instrumentation import BrakeRunResult, OneSlotBuffer
from repro.apps.lib.common import (
    PipelineErrors,
    SinkCommand,
    begin_flow,
    build_library_world,
    library_platform_config,
    library_switch_config,
    deliver_flow,
    drop_flow,
    random_offset,
    spike,
)
from repro.apps.lib.scenarios import FailoverScenario
from repro.errors import ServiceNotAvailableError
from repro.faults import FaultPlan, NodeOutage
from repro.network.topology import TopologySpec
from repro.obs.flows import CAUSE_NO_SUBSCRIBER, LAYER_SOMEIP
from repro.reactors import Environment, Reactor
from repro.sim import Compute, SleepUntil, World
from repro.someip.serialization import INT64, Struct, UINT32
from repro.time.duration import SEC

PRIMARY_ECU = "producer-a"
STANDBY_ECU = "producer-b"
CONSUMER_ECU = "consumer-ecu"

READING_SPEC = Struct([("seq", UINT32), ("value", INT64)], name="reading")

READING_SERVICE = ServiceInterface(
    "ReadingService", 0x0C01,
    events=[Event("reading", 0x8001, data=READING_SPEC.fields)],
)
INSTANCE = 1


def failover_topology(scenario: FailoverScenario | None = None) -> TopologySpec:
    """Producers on one switch, the consumer behind a trunk."""
    return TopologySpec.chain(((PRIMARY_ECU, STANDBY_ECU), (CONSUMER_ECU,)))


def failover_faults(scenario: FailoverScenario) -> FaultPlan:
    """The scenario *is* this fault: the primary crashes for a while."""
    return FaultPlan(
        outages=(
            NodeOutage(PRIMARY_ECU, scenario.outage_start_ns, scenario.outage_end_ns),
        )
    )


def reading_value(seq: int) -> int:
    """Deterministic ground-truth reading (pure function of seq)."""
    return (seq * 53 + 29) % 997


class _Producer:
    """One producer role (primary or standby) on its own ECU."""

    def __init__(self, world, host, scenario, errors, send_times, active):
        self.world = world
        self.scenario = scenario
        self.errors = errors
        self.send_times = send_times
        #: Whether this role currently offers (primaries start active).
        self.active = active
        self.process = AraProcess(world.platform(host), f"producer.{host}")
        self.skeleton = self.process.create_skeleton(READING_SERVICE, INSTANCE)
        self.jitter_rng = world.rng.stream(f"{host}.jitter")
        if active:
            self.skeleton.offer()

    def publish(self, seq: int) -> None:
        now = self.world.sim.now
        self.send_times.setdefault(seq, now)
        flows = begin_flow(seq, now)
        receivers = self.skeleton.send_event(
            "reading", {"seq": seq, "value": reading_value(seq)}
        )
        if receivers == 0:
            # Published into the void: the subscriber table is empty
            # while the consumer is still rediscovering the service.
            self.errors.stale_publishes += 1
            drop_flow(seq, LAYER_SOMEIP, CAUSE_NO_SUBSCRIBER, self.world.sim.now)
        if flows is not None:
            flows.restore_current(None)

    def tick_loop(self):
        scenario = self.scenario
        for seq in range(scenario.n_frames):
            target = scenario.warmup_ns + seq * scenario.period_ns
            if self.world.sim.now > target + scenario.period_ns:
                # Missed while crashed (or frozen): a real periodic task
                # skips overrun activations instead of bursting.
                continue
            if scenario.jitter_ns and not scenario.deterministic_inputs:
                target += self.jitter_rng.randint(0, scenario.jitter_ns)
            yield SleepUntil(target)
            if self.active:
                self.publish(seq)

    def standby_loop(self):
        """Poll the primary's cached offer; take over / step back."""
        scenario = self.scenario
        sd = self.process.sd
        service = READING_SERVICE.service_id
        while True:
            yield SleepUntil(self.world.sim.now + scenario.standby_poll_ns)
            primary_alive = sd.cached(service, INSTANCE) is not None
            if not self.active and not primary_alive:
                self.active = True
                self.skeleton.offer()
            elif self.active and primary_alive:
                # The primary's offer is back: yield the instance.
                self.active = False
                self.skeleton.stop_offer()

    def start(self) -> None:
        self.process.spawn("tick", self.tick_loop())
        if not self.active:
            self.process.spawn("standby", self.standby_loop())


class _ConsumerSupervisor:
    """Discovery / staleness supervision shared by both variants.

    ``loop`` keeps a subscription alive: find the service, subscribe,
    and whenever no reading arrived for ``stale_after_ns``, run
    discovery again — the cached entry may meanwhile point at the
    standby (or back at the recovered primary).
    """

    def __init__(self, world, scenario, process, on_reading):
        self.world = world
        self.scenario = scenario
        self.process = process
        self.on_reading = on_reading
        self.last_rx = 0
        self.rediscoveries = 0

    def note_rx(self) -> None:
        self.last_rx = self.world.sim.now

    def loop(self):
        scenario = self.scenario
        while True:
            try:
                proxy = yield from self.process.find_service(
                    READING_SERVICE, INSTANCE, timeout_ns=2 * SEC
                )
            except ServiceNotAvailableError:
                continue
            proxy.subscribe("reading", self.on_reading)
            self.last_rx = self.world.sim.now
            while True:
                yield SleepUntil(self.world.sim.now + scenario.stale_after_ns // 2)
                if self.world.sim.now - self.last_rx > scenario.stale_after_ns:
                    self.rediscoveries += 1
                    break


def _build_world(scenario, seed, switch_config, fault_plan, replay, universe, ckpt):
    config = library_platform_config(scenario)
    hosts = [
        (PRIMARY_ECU, config),
        (STANDBY_ECU, config),
        (CONSUMER_ECU, config),
    ]
    return build_library_world(
        seed,
        hosts,
        failover_topology(scenario),
        switch_config=library_switch_config(scenario, switch_config),
        fault_plan=fault_plan,
        fault_replay=replay,
        fault_universe=universe,
        fault_checkpointer=ckpt,
    )


def run_nondet_failover(
    seed: int,
    scenario: FailoverScenario | None = None,
    switch_config=None,
    fault_plan=None,
    fault_replay=None,
    fault_universe=None,
    fault_checkpointer=None,
) -> BrakeRunResult:
    """Run the stock failover pipeline once; returns measurements."""
    scenario = scenario or FailoverScenario()
    if fault_plan is None:
        fault_plan = failover_faults(scenario)
    world = _build_world(
        scenario, seed, switch_config, fault_plan,
        fault_replay, fault_universe, fault_checkpointer,
    )
    errors = PipelineErrors()
    commands: dict[int, Any] = {}
    latencies: dict[int, int] = {}
    send_times: dict[int, int] = {}

    primary = _Producer(world, PRIMARY_ECU, scenario, errors, send_times, True)
    standby = _Producer(world, STANDBY_ECU, scenario, errors, send_times, False)

    consumer_platform = world.platform(CONSUMER_ECU)
    consumer = AraProcess(consumer_platform, "consumer")
    buffer = OneSlotBuffer("consumer.reading", sim=world.sim)
    consume_rng = world.rng.stream("exec.consume")

    def on_reading(data):
        supervisor.note_rx()
        buffer.write(data)

    supervisor = _ConsumerSupervisor(world, scenario, consumer, on_reading)

    def consume_body():
        late = spike(
            world, "consume",
            scenario.callback_spike_probability, scenario.callback_spike_max_ns,
        )
        if late:
            yield Compute(late)
        reading = buffer.read()
        if reading is None:
            return
        yield Compute(scenario.consume.sample(consume_rng))
        seq = reading["seq"]
        if seq in commands:
            return  # hand-over overlap duplicate
        commands[seq] = SinkCommand(seq, True, float(reading["value"]))
        sent = send_times.get(seq)
        if sent is not None:
            latencies[seq] = world.sim.now - sent
        deliver_flow(seq, world.sim.now)

    consumer_platform.periodic(
        "consume", scenario.period_ns, consume_body,
        offset_ns=random_offset(world, "consume", scenario.period_ns),
        start_delay_ns=scenario.warmup_ns // 2,
    )

    primary.start()
    standby.start()
    consumer.spawn("supervisor", supervisor.loop())
    world.run_for(scenario.total_duration_ns())

    errors.dropped_input = buffer.drops
    return BrakeRunResult(
        seed=seed,
        n_frames=scenario.n_frames,
        errors=errors,
        commands=commands,
        latencies_ns=latencies,
        fault_summary=(
            None if world.fault_injector is None else world.fault_injector.summary()
        ),
    )


class _ConsumerLogic(Reactor):
    """Tagged consumption: readings enter through a physical action.

    Failover changes *which* service instance feeds the action, but the
    environment's trace stays a single totally-ordered tag sequence —
    the DEAR property under test here.  (Client transactors bind to one
    discovered instance at environment start; a physical action is the
    boundary that survives re-discovery.)
    """

    def __init__(self, name, owner, scenario: FailoverScenario, sink):
        super().__init__(name, owner)
        self.reading_arrival = self.physical_action("reading_arrival")
        self.reaction(
            "consume",
            triggers=[self.reading_arrival],
            body=lambda ctx: sink(ctx.get(self.reading_arrival)),
            exec_time=lambda rng: scenario.consume.sample(rng),
        )


def run_det_failover(
    seed: int,
    scenario: FailoverScenario | None = None,
    switch_config=None,
    fault_plan=None,
    fault_replay=None,
    fault_universe=None,
    fault_checkpointer=None,
) -> BrakeRunResult:
    """Run the DEAR failover pipeline once; returns measurements."""
    scenario = scenario or FailoverScenario()
    if fault_plan is None:
        fault_plan = failover_faults(scenario)
    world = _build_world(
        scenario, seed, switch_config, fault_plan,
        fault_replay, fault_universe, fault_checkpointer,
    )
    errors = PipelineErrors()
    commands: dict[int, Any] = {}
    latencies: dict[int, int] = {}
    send_times: dict[int, int] = {}
    horizon = scenario.total_duration_ns()
    deadline_misses = 0

    primary = _Producer(world, PRIMARY_ECU, scenario, errors, send_times, True)
    standby = _Producer(world, STANDBY_ECU, scenario, errors, send_times, False)

    consumer_platform = world.platform(CONSUMER_ECU)
    consumer = AraProcess(consumer_platform, "consumer")
    env = Environment(name="consumer", timeout=horizon, trace_origin=0)

    def sink(reading) -> None:
        nonlocal deadline_misses
        seq = reading["seq"]
        if seq in commands:
            return  # hand-over overlap duplicate
        commands[seq] = SinkCommand(seq, True, float(reading["value"]))
        sent = send_times.get(seq)
        if sent is not None:
            latency = world.sim.now - sent
            latencies[seq] = latency
            if latency > scenario.consume_deadline_ns:
                deadline_misses += 1
        deliver_flow(seq, world.sim.now)

    logic = _ConsumerLogic("logic", env, scenario, sink)

    def on_reading(data):
        supervisor.note_rx()
        logic.reading_arrival.schedule(data)

    supervisor = _ConsumerSupervisor(world, scenario, consumer, on_reading)
    env.start(consumer_platform)

    primary.start()
    standby.start()
    consumer.spawn("supervisor", supervisor.loop())
    world.run_for(horizon + 1 * SEC)

    return BrakeRunResult(
        seed=seed,
        n_frames=scenario.n_frames,
        errors=errors,
        commands=commands,
        latencies_ns=latencies,
        trace_fingerprints={env.name: env.trace.fingerprint()},
        deadline_misses=deadline_misses,
        fault_summary=(
            None if world.fault_injector is None else world.fault_injector.summary()
        ),
    )
