"""The Figure 1 client/server application.

The paper opens with this example: a client manipulates a server-side
state variable through non-blocking method calls::

    s.set_value(1);  s.add(2);  result = s.get_value();

The server enforces mutual exclusion between method executions, but the
AP runtime maps each invocation to its own thread, so the *order* of
the three operations is up to the thread scheduler and the printed
result is one of {0, 1, 2, 3} (Figure 1's histogram).

:func:`run_nondet` reproduces that app on the stock AP stack;
:func:`run_det` is the DEAR version, where the client fires the same
three calls (still without waiting for results) as tagged reactor
events 1 ms apart and tag-order processing makes the result always 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ara import Method, ServiceInterface
from repro.dear import (
    MethodCall,
    MethodReturn,
    StpConfig,
    TransactorConfig,
    generate_client_transactors,
    generate_server_transactors,
)
from repro.network import NetworkInterface, Switch, SwitchConfig, UniformLatency
from repro.reactors import Environment, Reactor
from repro.sim import World
from repro.sim.platform import PlatformConfig
from repro.someip import SdDaemon
from repro.someip.serialization import INT32
from repro.time import MS, SEC

#: Platform model for this app: thread-wakeup variance (hundreds of µs on
#: a loaded Atom board) well above the µs-scale spacing of back-to-back
#: SOME/IP messages — the regime in which Figure 1's histogram arises.
FIGURE1_PLATFORM = PlatformConfig(
    num_cores=4, dispatch_jitter_ns=400_000, timer_jitter_ns=500_000
)

COUNTER_INTERFACE = ServiceInterface(
    name="Counter",
    service_id=0x00C0,
    methods=[
        Method("set_value", 0x0001, arguments=[("value", INT32)]),
        Method("add", 0x0002, arguments=[("amount", INT32)]),
        Method("get_value", 0x0003, returns=[("value", INT32)]),
    ],
)


@dataclass
class CounterResult:
    """Outcome of one run of the counter application."""

    printed_value: int
    seed: int


def _build_world(seed: int, platform_config: PlatformConfig) -> World:
    world = World(seed)
    # A quiet switched LAN: latency variation well below the thread
    # dispatch jitter, so the server-side scheduler — not the network —
    # decides the processing order, as in the paper's analysis.
    switch_config = SwitchConfig(latency=UniformLatency(180_000, 260_000))
    switch = Switch(world.sim, world.rng.stream("net"), switch_config)
    world.attach_network(switch)
    for host in ("server-ecu", "client-ecu"):
        platform = world.add_platform(host, platform_config)
        nic = NetworkInterface(platform, switch)
        SdDaemon(platform, nic)
    return world


class _CounterServer:
    """The stock server: a state variable behind three methods.

    Each implementation is atomic (the server "enforces mutual exclusion
    between the execution of method invocations"), but invocations run
    on pool threads in scheduler-determined order.
    """

    def __init__(self, process):
        self.value = 0
        self.skeleton = process.create_skeleton(COUNTER_INTERFACE, 1)
        self.skeleton.implement("set_value", self._set_value)
        self.skeleton.implement("add", self._add)
        self.skeleton.implement("get_value", lambda: self.value)
        self.skeleton.offer()

    def _set_value(self, value):
        self.value = value

    def _add(self, amount):
        self.value += amount


def run_nondet(
    seed: int, platform_config: PlatformConfig = FIGURE1_PLATFORM
) -> CounterResult:
    """Run the paper's Figure 1 client on the stock AP stack."""
    from repro.ara import AraProcess

    world = _build_world(seed, platform_config)
    _CounterServer(AraProcess(world.platform("server-ecu"), "server"))
    client_process = AraProcess(world.platform("client-ecu"), "client")
    printed: list[int] = []

    def client_main():
        proxy = yield from client_process.find_service(COUNTER_INTERFACE, 1)
        # The naive client: three non-blocking calls, only the last
        # future is awaited — exactly the code in Figure 1.
        proxy.call("set_value", value=1)
        proxy.call("add", amount=2)
        result = proxy.call("get_value")
        value = yield from result.get()
        printed.append(value)

    client_process.spawn("main", client_main())
    world.run_for(5 * SEC)
    if not printed:
        raise RuntimeError("client did not finish; simulation horizon too short")
    return CounterResult(printed_value=printed[0], seed=seed)


def run_variant(
    seed: int,
    processing_mode=None,
    in_order: bool = True,
    two_clients: bool = False,
    platform_config: PlatformConfig = FIGURE1_PLATFORM,
) -> CounterResult:
    """The counter app with the nondeterminism sources individually togglable.

    Used by the source-ablation benchmark (Section II.B):

    * ``processing_mode``: the server's method-call processing mode —
      ``EVENT`` (default, thread-per-invocation: source 1 on) or
      ``EVENT_SINGLE_THREAD`` (source 1 off within the server);
    * ``in_order``: per-flow FIFO transport (source 3 off) or unordered
      datagrams (source 3 on);
    * ``two_clients``: a second client issues the ``add`` concurrently
      from another ECU, exposing source 2 (undefined processing order of
      messages from different clients) even with a serialized server.
    """
    from repro.ara import AraProcess, MethodCallProcessingMode

    if processing_mode is None:
        processing_mode = MethodCallProcessingMode.EVENT
    world = World(seed)
    switch_config = SwitchConfig(
        latency=UniformLatency(180_000, 260_000), in_order=in_order
    )
    switch = Switch(world.sim, world.rng.stream("net"), switch_config)
    world.attach_network(switch)
    hosts = ["server-ecu", "client-ecu"] + (["client2-ecu"] if two_clients else [])
    for host in hosts:
        platform = world.add_platform(host, platform_config)
        nic = NetworkInterface(platform, switch)
        SdDaemon(platform, nic)

    server_process = AraProcess(world.platform("server-ecu"), "server")
    server = _CounterServer.__new__(_CounterServer)
    server.value = 0
    server.skeleton = server_process.create_skeleton(
        COUNTER_INTERFACE, 1, processing_mode=processing_mode
    )
    server.skeleton.implement("set_value", server._set_value)
    server.skeleton.implement("add", server._add)
    server.skeleton.implement("get_value", lambda: server.value)
    server.skeleton.offer()

    printed: list[int] = []
    client_process = AraProcess(world.platform("client-ecu"), "client")

    def client_main():
        proxy = yield from client_process.find_service(COUNTER_INTERFACE, 1)
        proxy.call("set_value", value=1)
        if not two_clients:
            proxy.call("add", amount=2)
        result = proxy.call("get_value")
        value = yield from result.get()
        printed.append(value)

    client_process.spawn("main", client_main())
    if two_clients:
        second_process = AraProcess(world.platform("client2-ecu"), "client2")

        def second_main():
            proxy = yield from second_process.find_service(COUNTER_INTERFACE, 1)
            proxy.call("add", amount=2)

        second_process.spawn("main", second_main())
    world.run_for(5 * SEC)
    if not printed:
        raise RuntimeError("client did not finish")
    return CounterResult(printed_value=printed[0], seed=seed)


class _CounterLogic(Reactor):
    """Deterministic server logic behind the three method transactors."""

    def __init__(self, name, owner):
        super().__init__(name, owner)
        self.value = 0
        self.set_in = self.input("set_in")
        self.set_out = self.output("set_out")
        self.add_in = self.input("add_in")
        self.add_out = self.output("add_out")
        self.get_in = self.input("get_in")
        self.get_out = self.output("get_out")
        self.reaction("on_set", triggers=[self.set_in], effects=[self.set_out],
                      body=self._on_set)
        self.reaction("on_add", triggers=[self.add_in], effects=[self.add_out],
                      body=self._on_add)
        self.reaction("on_get", triggers=[self.get_in], effects=[self.get_out],
                      body=self._on_get)

    def _on_set(self, ctx):
        call: MethodCall = ctx.get(self.set_in)
        self.value = call.arguments
        ctx.set(self.set_out, MethodReturn(call.call_id, None))

    def _on_add(self, ctx):
        call: MethodCall = ctx.get(self.add_in)
        self.value += call.arguments
        ctx.set(self.add_out, MethodReturn(call.call_id, None))

    def _on_get(self, ctx):
        call: MethodCall = ctx.get(self.get_in)
        ctx.set(self.get_out, MethodReturn(call.call_id, self.value))


class _CounterClientLogic(Reactor):
    """Fires set/add/get as tagged events 1 ms apart, without waiting."""

    def __init__(self, name, owner):
        super().__init__(name, owner)
        self.set_req = self.output("set_req")
        self.add_req = self.output("add_req")
        self.get_req = self.output("get_req")
        self.get_res = self.input("get_res")
        self.printed: list[int] = []
        t_set = self.timer("t_set", offset=10 * MS)
        t_add = self.timer("t_add", offset=11 * MS)
        t_get = self.timer("t_get", offset=12 * MS)
        self.reaction("send_set", triggers=[t_set], effects=[self.set_req],
                      body=lambda ctx: ctx.set(self.set_req, 1))
        self.reaction("send_add", triggers=[t_add], effects=[self.add_req],
                      body=lambda ctx: ctx.set(self.add_req, 2))
        self.reaction("send_get", triggers=[t_get], effects=[self.get_req],
                      body=lambda ctx: ctx.set(self.get_req, None))
        self.reaction("on_result", triggers=[self.get_res], body=self._on_result)

    def _on_result(self, ctx):
        self.printed.append(ctx.get(self.get_res).value)
        ctx.request_stop()


def run_det(
    seed: int,
    platform_config: PlatformConfig = FIGURE1_PLATFORM,
    config: TransactorConfig | None = None,
) -> CounterResult:
    """Run the DEAR (deterministic) counter application."""
    from repro.ara import AraProcess

    world = _build_world(seed, platform_config)
    if config is None:
        config = TransactorConfig(
            deadline_ns=5 * MS, stp=StpConfig(latency_bound_ns=10 * MS)
        )
    server_process = AraProcess(
        world.platform("server-ecu"), "server", tag_aware=True
    )
    server_env = Environment(name="counter-server", timeout=5 * SEC)
    skeleton = server_process.create_skeleton(COUNTER_INTERFACE, 1)
    binding = generate_server_transactors(
        server_env, server_process, skeleton, config
    )
    logic = _CounterLogic("logic", server_env)
    for method, inp, out in (
        ("set_value", logic.set_in, logic.set_out),
        ("add", logic.add_in, logic.add_out),
        ("get_value", logic.get_in, logic.get_out),
    ):
        server_env.connect(binding.methods[method].request_out, inp)
        server_env.connect(out, binding.methods[method].response_in)
    skeleton.offer()
    server_env.start(world.platform("server-ecu"))

    client_process = AraProcess(
        world.platform("client-ecu"), "client", tag_aware=True
    )
    client_env = Environment(name="counter-client", timeout=5 * SEC)
    client_logic = _CounterClientLogic("logic", client_env)

    def client_setup():
        proxy = yield from client_process.find_service(COUNTER_INTERFACE, 1)
        client_binding = generate_client_transactors(
            client_env, client_process, proxy, config
        )
        client_env.connect(
            client_logic.set_req, client_binding.methods["set_value"].request
        )
        client_env.connect(
            client_logic.add_req, client_binding.methods["add"].request
        )
        client_env.connect(
            client_logic.get_req, client_binding.methods["get_value"].request
        )
        client_env.connect(
            client_binding.methods["get_value"].response, client_logic.get_res
        )
        client_env.start(world.platform("client-ecu"))

    client_process.spawn("setup", client_setup())
    world.run_for(10 * SEC)
    if not client_logic.printed:
        raise RuntimeError("deterministic client did not finish")
    return CounterResult(printed_value=client_logic.printed[0], seed=seed)
