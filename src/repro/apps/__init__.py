"""The paper's applications and the pluggable app registry.

* :mod:`repro.apps.counter` — the Figure 1 client/server example: a
  naive client issues ``set_value(1); add(2); get_value()`` without
  awaiting the futures; the stock AP runtime prints 0, 1, 2 or 3
  depending on thread scheduling, while the DEAR variant always
  prints 3.
* :mod:`repro.apps.brake` — the brake assistant case study of
  Section IV, in the stock (nondeterministic) and DEAR (deterministic)
  variants.
* :mod:`repro.apps.lib` — the multi-ECU scenario library (sensor
  fusion, SOME/IP SD failover, mixed criticality), each on a
  non-trivial :class:`~repro.network.topology.TopologySpec`.

Apps register themselves via :func:`repro.apps.register`; everything
downstream (``ScenarioSpec``, the obs drivers, every CLI subcommand)
dispatches through the registry instead of hardcoding variants.
"""

from repro.apps.registry import AppDefinition, apps, get, names, register


def _register_brake() -> None:
    from repro.apps.brake.scenario import BrakeScenario

    register(
        AppDefinition(
            name="brake",
            title="Brake assistant (Section IV)",
            description=(
                "Camera -> Preprocessing -> Computer Vision -> EBA on two "
                "ECUs and one switch; the paper's case study."
            ),
            runners={
                "det": "repro.apps.brake.det:run_det_brake_assistant",
                "nondet": "repro.apps.brake.nondet:run_nondet_brake_assistant",
            },
            scenario_type=BrakeScenario,
            library=False,
        )
    )


_register_brake()

__all__ = ["AppDefinition", "register", "get", "names", "apps"]
