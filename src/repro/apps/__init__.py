"""The paper's applications.

* :mod:`repro.apps.counter` — the Figure 1 client/server example: a
  naive client issues ``set_value(1); add(2); get_value()`` without
  awaiting the futures; the stock AP runtime prints 0, 1, 2 or 3
  depending on thread scheduling, while the DEAR variant always
  prints 3.
* :mod:`repro.apps.brake` — the brake assistant case study of
  Section IV, in the stock (nondeterministic) and DEAR (deterministic)
  variants.
"""
