"""Error counters and result records for brake-assistant runs.

The instrumentation mirrors what the paper added to the demonstrator:
counters for dropped inputs at each stage and input mismatches at
Computer Vision, reported as *prevalence* — errors per processed frame
(Figure 5) — plus an oracle comparison quantifying the safety impact
(missed and phantom brake activations).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.apps.brake.data import BrakeCommand
from repro.obs import context as obs_context
from repro.obs.flows import (
    CAUSE_BUFFER_OVERWRITE,
    LAYER_APP,
    attribute_drop,
    flow_id_of,
)

#: Figure 5's error categories, in its legend order.
ERROR_TYPES = (
    "dropped_preprocessing",
    "dropped_computer_vision",
    "mismatch_computer_vision",
    "dropped_eba",
)


@dataclass
class ErrorCounters:
    """Counts of the four error types of Figure 5."""

    dropped_preprocessing: int = 0
    dropped_computer_vision: int = 0
    mismatch_computer_vision: int = 0
    dropped_eba: int = 0
    #: Drops at the Video Adapter's camera buffer (before the pipeline;
    #: not part of Figure 5's categories but reported for completeness).
    dropped_adapter: int = 0

    def total(self) -> int:
        """Total Figure 5 errors (adapter drops excluded, as in the paper)."""
        return (
            self.dropped_preprocessing
            + self.dropped_computer_vision
            + self.mismatch_computer_vision
            + self.dropped_eba
        )

    def as_dict(self) -> dict[str, int]:
        """The four Figure 5 counters by name."""
        return {name: getattr(self, name) for name in ERROR_TYPES}


@dataclass
class BrakeRunResult:
    """Everything measured in one brake-assistant run."""

    seed: int
    n_frames: int
    errors: ErrorCounters
    #: frame seq -> command actually produced by EBA.
    commands: dict[int, BrakeCommand]
    #: Per-environment logical trace fingerprints (DEAR variant only).
    trace_fingerprints: dict[str, str] = field(default_factory=dict)
    #: frame seq -> end-to-end latency (capture to brake command), ns.
    latencies_ns: dict[int, int] = field(default_factory=dict)
    #: DEAR observable assumption violations (deadline misses, STP).
    deadline_misses: int = 0
    stp_violations: int = 0
    #: Fired-fault digest when a fault plan was installed (counters,
    #: fired count, fault-trace fingerprint); ``None`` otherwise.
    fault_summary: dict | None = None

    @property
    def prevalence(self) -> float:
        """Total error prevalence (fraction of frames, as in Figure 5)."""
        return self.errors.total() / self.n_frames

    def outcome_digest(self) -> str:
        """SHA-256 over the run's observable outcome.

        Covers the produced brake commands, per-frame latencies, error
        counters and timing-violation counts — everything downstream of
        the schedule — so any change to event ordering, RNG draw
        sequence or physical timing shifts the digest.  Unlike
        :attr:`trace_fingerprints` this works for the nondeterministic
        (non-DEAR) variant too; the kernel-fingerprint regression tests
        use it to pin schedules across kernel optimisations.
        """
        payload = {
            "commands": {
                str(seq): [cmd.frame_seq, cmd.brake, repr(cmd.intensity)]
                for seq, cmd in sorted(self.commands.items())
            },
            "latencies_ns": {
                str(seq): lat for seq, lat in sorted(self.latencies_ns.items())
            },
            "errors": self.errors.as_dict(),
            "deadline_misses": self.deadline_misses,
            "stp_violations": self.stp_violations,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def prevalence_by_type(self) -> dict[str, float]:
        """Per-type prevalence."""
        return {
            name: count / self.n_frames
            for name, count in self.errors.as_dict().items()
        }

    def compare_with_oracle(
        self, oracle: dict[int, BrakeCommand]
    ) -> "OracleComparison":
        """Quantify the safety impact of middleware errors."""
        missed = phantom = wrong_intensity = absent = 0
        for seq, expected in oracle.items():
            actual = self.commands.get(seq)
            if actual is None:
                absent += 1
                if expected.brake:
                    missed += 1
                continue
            if expected.brake and not actual.brake:
                missed += 1
            elif actual.brake and not expected.brake:
                phantom += 1
            elif expected.brake and abs(actual.intensity - expected.intensity) > 1e-9:
                wrong_intensity += 1
        return OracleComparison(
            frames=len(oracle),
            missed_brakes=missed,
            phantom_brakes=phantom,
            wrong_intensity=wrong_intensity,
            absent_outputs=absent,
        )


@dataclass(frozen=True)
class OracleComparison:
    """Deviation of a run's brake commands from the ideal pipeline."""

    frames: int
    #: Frames where braking was required but not commanded.
    missed_brakes: int
    #: Frames where braking was commanded without need.
    phantom_brakes: int
    #: Correct decision, wrong intensity (stale data).
    wrong_intensity: int
    #: Frames for which EBA produced no output at all.
    absent_outputs: int

    @property
    def is_perfect(self) -> bool:
        """Whether the run matched the oracle exactly."""
        return (
            self.missed_brakes == 0
            and self.phantom_brakes == 0
            and self.wrong_intensity == 0
            and self.absent_outputs == 0
        )


class OneSlotBuffer:
    """The demonstrator's one-slot input buffer.

    The event handler *overwrites* the slot; if the previous item was
    never read by the periodic logic, it is lost — that is the paper's
    frame-dropping mechanism.  Reads empty the slot.

    With *sim* attached, writes participate in causal flow tracing:
    items self-correlate by their frame sequence (``seq``/``frame_seq``),
    overwritten unread items are attributed ``(app, buffer-overwrite)``.
    """

    def __init__(self, name: str, sim=None) -> None:
        self.name = name
        self._item = None
        self._unread = False
        self._sim = sim
        self.drops = 0
        self.writes = 0
        self.reads = 0

    def _now(self) -> int:
        return self._sim.now if self._sim is not None else 0

    def write(self, item) -> None:
        """Store *item*, dropping any unread previous item."""
        o = obs_context.ACTIVE
        if self._unread:
            self.drops += 1
            if o.enabled:
                attribute_drop(
                    o,
                    LAYER_APP,
                    CAUSE_BUFFER_OVERWRITE,
                    self._now(),
                    flow_id=flow_id_of(self._item),
                )
        if o.enabled and o.flows is not None:
            flow = flow_id_of(item)
            if flow is not None and o.flows.known(flow):
                o.flows.hop(flow, LAYER_APP, f"{self.name} write", self._now())
        self._item = item
        self._unread = True
        self.writes += 1

    def read(self):
        """Take the current item (``None`` if empty)."""
        if not self._unread:
            return None
        self._unread = False
        self.reads += 1
        return self._item

    def __repr__(self) -> str:
        return f"OneSlotBuffer({self.name!r}, drops={self.drops})"
