"""The stock brake assistant (Section IV.A) — nondeterministic.

Faithful to the demonstrator's structure:

* **Video Provider** (platform 1) sends one frame approximately every
  50 ms over a proprietary protocol (a raw datagram here);
* **Video Adapter, Preprocessing, Computer Vision, EBA** (platform 2)
  are AP processes.  Event notifications carry the data; each event
  handler stores into a **one-slot input buffer**; each SWC runs a
  periodic OS callback every 50 ms that reads its buffer, computes, and
  publishes its result.  If a buffer is overwritten before the periodic
  logic read it, the data is lost — dropped frames; because Computer
  Vision reads *two* buffers, its inputs can also be misaligned.

Error rates depend on the (random, per-seed) phase offsets between the
periodic callbacks, execution-time jitter, and middleware scheduling —
the mechanism behind the huge spread of Figure 5.
"""

from __future__ import annotations

from typing import Any

from repro.ara import AraProcess, Event, ServiceInterface
from repro.apps.brake.data import (
    BRAKE_SPEC,
    FRAME_SPEC,
    LANE_SPEC,
    VEHICLES_SPEC,
    frame_from_wire,
    frame_to_wire,
    lane_from_wire,
    lane_to_wire,
    vehicles_from_wire,
    vehicles_to_wire,
)
from repro.apps.brake.instrumentation import (
    BrakeRunResult,
    ErrorCounters,
    OneSlotBuffer,
)
from repro.apps.brake.logic import decide_brake, detect_vehicles, preprocess
from repro.apps.brake.scenario import BrakeScenario
from repro.apps.brake.vision import SceneGenerator
from repro.network import ConstantLatency, NetworkInterface, Switch, SwitchConfig
from repro.obs import context as obs_context
from repro.sim import Compute, SleepUntil, World
from repro.sim.platform import CALM, MINNOWBOARD, Platform, PlatformConfig
from repro.someip import SdDaemon
from repro.time.duration import US

#: Raw datagram port of the Video Adapter's proprietary camera input.
ADAPTER_RAW_PORT = 15000

ADAPTER_SERVICE = ServiceInterface(
    "VideoAdapterService", 0x0A01,
    events=[Event("frame", 0x8001, data=FRAME_SPEC.fields)],
)
PREPROCESSING_SERVICE = ServiceInterface(
    "PreprocessingService", 0x0A02,
    events=[
        Event("frame", 0x8001, data=FRAME_SPEC.fields),
        Event("lane", 0x8002, data=LANE_SPEC.fields),
    ],
)
CV_SERVICE = ServiceInterface(
    "ComputerVisionService", 0x0A03,
    events=[Event("vehicles", 0x8001, data=VEHICLES_SPEC.fields)],
)
EBA_SERVICE = ServiceInterface(
    "EbaService", 0x0A04,
    events=[Event("brake", 0x8001, data=BRAKE_SPEC.fields)],
)

#: Host names of the evaluation boards.
VISION_ECU = "vision-ecu"
FUSION_ECU = "fusion-ecu"
#: Second processing board (distributed extension deployments only).
FUSION2_ECU = "fusion2-ecu"


def build_brake_world(
    scenario: BrakeScenario,
    seed: int,
    switch_config: SwitchConfig | None = None,
    fault_plan=None,
    fault_replay=None,
    fault_universe=None,
    fault_checkpointer=None,
) -> World:
    """The networked platforms matching (or extending) the paper's testbed.

    *switch_config* overrides the scenario-derived network (any
    :class:`~repro.network.latency.LatencyModel` via
    :class:`~repro.harness.config.ScenarioSpec`); *fault_plan* installs a
    :class:`~repro.faults.FaultPlan` (optionally replaying a recorded
    fault *fault_replay* trace) before any traffic flows.
    """
    from repro.time.clock import ClockModel

    world = World(seed)
    if switch_config is None:
        if scenario.deterministic_camera:
            switch_config = SwitchConfig(
                latency=ConstantLatency(300 * US),
                loopback_latency=ConstantLatency(50 * US),
            )
        else:
            switch_config = SwitchConfig()
    switch = Switch(world.sim, world.rng.stream("net"), switch_config)
    world.attach_network(switch)
    vision_config = CALM if scenario.deterministic_camera else MINNOWBOARD
    hosts = [(VISION_ECU, vision_config), (FUSION_ECU, MINNOWBOARD)]
    if scenario.distributed:
        skewed = PlatformConfig(
            num_cores=MINNOWBOARD.num_cores,
            clock=ClockModel(offset_ns=scenario.processing_clock_skew_ns),
            dispatch_jitter_ns=MINNOWBOARD.dispatch_jitter_ns,
            timer_jitter_ns=MINNOWBOARD.timer_jitter_ns,
        )
        hosts.append((FUSION2_ECU, skewed))
    for host, config in hosts:
        platform = world.add_platform(host, config)
        nic = NetworkInterface(platform, switch)
        SdDaemon(platform, nic)
    if fault_plan is not None and not fault_plan.is_empty:
        from repro.faults import install_fault_plan

        install_fault_plan(
            world,
            fault_plan,
            replay=fault_replay,
            universe=fault_universe,
            checkpointer=fault_checkpointer,
        )
    return world


def start_camera(
    world: World, scenario: BrakeScenario, send_times: dict[int, int]
) -> SceneGenerator:
    """The Video Provider: a thread on platform 1 streaming frames.

    Records the global send time of each frame in *send_times* (used by
    end-to-end latency measurements).
    """
    platform = world.platform(VISION_ECU)
    nic: NetworkInterface = platform.attachments["nic"]
    socket = nic.bind()
    generator = SceneGenerator(scenario.period_ns, scenario.variant)
    jitter_rng = world.rng.stream("camera.jitter")

    def camera_thread():
        for seq in range(scenario.n_frames):
            target = scenario.warmup_ns + seq * scenario.period_ns
            if not scenario.deterministic_camera and scenario.camera_jitter_ns:
                target += jitter_rng.randint(0, scenario.camera_jitter_ns)
            yield SleepUntil(target)
            frame = generator.frame(seq)
            payload = FRAME_SPEC.to_bytes(frame_to_wire(frame))
            send_times[seq] = world.sim.now
            o = obs_context.ACTIVE
            flows = o.flows if o.enabled else None
            if flows is not None:
                flows.begin(seq, world.sim.now)
            socket.send(
                FUSION_ECU,
                ADAPTER_RAW_PORT,
                payload,
                len(payload) + scenario.frame_extra_bytes,
            )
            if flows is not None:
                flows.restore_current(None)

    platform.spawn("camera", camera_thread())
    return generator


def _random_offset(world: World, name: str, period_ns: int) -> int:
    return world.rng.stream(f"offset.{name}").randint(0, period_ns - 1)


def _spike(world: World, name: str, scenario: BrakeScenario):
    """Occasional extra latency of a periodic callback (OS hiccup).

    Returns the number of nanoseconds this activation is late, drawn
    from the scenario's spike model (usually 0).
    """
    rng = world.rng.stream(f"spike.{name}")
    if (
        scenario.callback_spike_probability > 0.0
        and rng.random() < scenario.callback_spike_probability
    ):
        return rng.randint(0, scenario.callback_spike_max_ns)
    return 0


def run_nondet_brake_assistant(
    seed: int,
    scenario: BrakeScenario | None = None,
    switch_config: SwitchConfig | None = None,
    fault_plan=None,
    fault_replay=None,
    fault_universe=None,
    fault_checkpointer=None,
) -> BrakeRunResult:
    """Run the stock brake assistant once; returns measurements."""
    scenario = scenario or BrakeScenario()
    world = build_brake_world(
        scenario,
        seed,
        switch_config=switch_config,
        fault_plan=fault_plan,
        fault_replay=fault_replay,
        fault_universe=fault_universe,
        fault_checkpointer=fault_checkpointer,
    )
    fusion: Platform = world.platform(FUSION_ECU)
    errors = ErrorCounters()
    commands: dict[int, Any] = {}
    latencies: dict[int, int] = {}
    send_times: dict[int, int] = {}
    use_image = scenario.use_image_pipeline

    # ---- Video Adapter -----------------------------------------------------
    adapter_process = AraProcess(fusion, "adapter")
    adapter_skeleton = adapter_process.create_skeleton(ADAPTER_SERVICE, 1)
    adapter_skeleton.offer()
    adapter_buffer = OneSlotBuffer("adapter.in", sim=world.sim)
    nic: NetworkInterface = fusion.attachments["nic"]
    raw_socket = nic.bind(ADAPTER_RAW_PORT)

    def on_raw_frame(frame_msg):
        frame = frame_from_wire(FRAME_SPEC.from_bytes(frame_msg.payload))
        adapter_buffer.write(frame)

    raw_socket.on_receive = on_raw_frame
    adapter_rng = world.rng.stream("exec.adapter")

    def adapter_body():
        late = _spike(world, "adapter", scenario)
        if late:
            yield Compute(late)
        frame = adapter_buffer.read()
        if frame is None:
            return
        yield Compute(scenario.adapter.sample(adapter_rng))
        adapter_skeleton.send_event("frame", frame_to_wire(frame))

    fusion.periodic(
        "adapter", scenario.period_ns, adapter_body,
        offset_ns=_random_offset(world, "adapter", scenario.period_ns),
        start_delay_ns=scenario.warmup_ns // 2,
    )

    # ---- Preprocessing -------------------------------------------------------
    pre_process = AraProcess(fusion, "preprocessing")
    pre_skeleton = pre_process.create_skeleton(PREPROCESSING_SERVICE, 1)
    pre_skeleton.offer()
    pre_buffer = OneSlotBuffer("preprocessing.in", sim=world.sim)
    pre_rng = world.rng.stream("exec.preprocessing")

    pre_copy_rng = world.rng.stream("copy.preprocessing")

    def pre_setup():
        proxy = yield from pre_process.find_service(ADAPTER_SERVICE, 1)

        def on_frame(data):
            yield Compute(scenario.frame_copy_cost.sample(pre_copy_rng))
            pre_buffer.write(frame_from_wire(data))

        proxy.subscribe("frame", on_frame)

    pre_process.spawn("setup", pre_setup())

    def pre_body():
        late = _spike(world, "preprocessing", scenario)
        if late:
            yield Compute(late)
        frame = pre_buffer.read()
        if frame is None:
            return
        yield Compute(scenario.preprocessing.sample(pre_rng))
        lane = preprocess(frame, use_image=use_image)
        pre_skeleton.send_event("frame", frame_to_wire(frame))
        pre_skeleton.send_event("lane", lane_to_wire(lane))

    fusion.periodic(
        "preprocessing", scenario.period_ns, pre_body,
        offset_ns=_random_offset(world, "preprocessing", scenario.period_ns),
        start_delay_ns=scenario.warmup_ns // 2,
    )

    # ---- Computer Vision ---------------------------------------------------------
    cv_process = AraProcess(fusion, "computer-vision")
    cv_skeleton = cv_process.create_skeleton(CV_SERVICE, 1)
    cv_skeleton.offer()
    cv_frame_buffer = OneSlotBuffer("cv.frame", sim=world.sim)
    cv_lane_buffer = OneSlotBuffer("cv.lane", sim=world.sim)
    cv_rng = world.rng.stream("exec.cv")

    cv_copy_rng = world.rng.stream("copy.cv")

    def cv_setup():
        proxy = yield from cv_process.find_service(PREPROCESSING_SERVICE, 1)

        def on_frame(data):
            yield Compute(scenario.frame_copy_cost.sample(cv_copy_rng))
            cv_frame_buffer.write(frame_from_wire(data))

        proxy.subscribe("frame", on_frame)
        proxy.subscribe(
            "lane", lambda data: cv_lane_buffer.write(lane_from_wire(data))
        )

    cv_process.spawn("setup", cv_setup())

    def cv_body():
        late = _spike(world, "computer-vision", scenario)
        if late:
            yield Compute(late)
        frame = cv_frame_buffer.read()
        lane = cv_lane_buffer.read()
        if frame is None and lane is None:
            return
        if frame is None or lane is None:
            # The companion input never made it into the buffer in time;
            # nothing sensible to compute this activation.
            return
        if frame.seq != lane.frame_seq:
            errors.mismatch_computer_vision += 1
        yield Compute(scenario.computer_vision.sample(cv_rng))
        vehicles = detect_vehicles(frame, lane, use_image=use_image)
        cv_skeleton.send_event("vehicles", vehicles_to_wire(vehicles))

    fusion.periodic(
        "computer-vision", scenario.period_ns, cv_body,
        offset_ns=_random_offset(world, "computer-vision", scenario.period_ns),
        start_delay_ns=scenario.warmup_ns // 2,
    )

    # ---- EBA ------------------------------------------------------------------------
    eba_process = AraProcess(fusion, "eba")
    eba_skeleton = eba_process.create_skeleton(EBA_SERVICE, 1)
    eba_skeleton.offer()
    eba_buffer = OneSlotBuffer("eba.in", sim=world.sim)
    eba_rng = world.rng.stream("exec.eba")

    def eba_setup():
        proxy = yield from eba_process.find_service(CV_SERVICE, 1)
        proxy.subscribe(
            "vehicles", lambda data: eba_buffer.write(vehicles_from_wire(data))
        )

    eba_process.spawn("setup", eba_setup())

    def eba_body():
        late = _spike(world, "eba", scenario)
        if late:
            yield Compute(late)
        vehicles = eba_buffer.read()
        if vehicles is None:
            return
        yield Compute(scenario.eba.sample(eba_rng))
        command = decide_brake(vehicles)
        commands[command.frame_seq] = command
        sent = send_times.get(command.frame_seq)
        if sent is not None:
            latencies[command.frame_seq] = world.sim.now - sent
        o = obs_context.ACTIVE
        if o.enabled and o.flows is not None:
            o.flows.deliver(command.frame_seq, world.sim.now)
        eba_skeleton.send_event("brake", {
            "frame_seq": command.frame_seq,
            "brake": command.brake,
            "intensity": command.intensity,
        })

    fusion.periodic(
        "eba", scenario.period_ns, eba_body,
        offset_ns=_random_offset(world, "eba", scenario.period_ns),
        start_delay_ns=scenario.warmup_ns // 2,
    )

    # ---- run -------------------------------------------------------------------------
    start_camera(world, scenario, send_times)
    world.run_for(scenario.total_duration_ns())

    errors.dropped_adapter = adapter_buffer.drops
    errors.dropped_preprocessing = pre_buffer.drops
    errors.dropped_computer_vision = cv_frame_buffer.drops
    errors.dropped_eba = eba_buffer.drops
    return BrakeRunResult(
        seed=seed,
        n_frames=scenario.n_frames,
        errors=errors,
        commands=commands,
        latencies_ns=latencies,
        fault_summary=(
            None if world.fault_injector is None else world.fault_injector.summary()
        ),
    )
