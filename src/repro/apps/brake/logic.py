"""The computational logic of the brake-assistant stages.

Both pipeline variants call exactly these functions — the paper's DEAR
port "calls the original logic to process the data associated with the
incoming event" — so any output difference between the variants comes
from the communication middleware, not from the algorithms.

Two detection paths are provided:

* the closed-form path reads the frame's scene state directly (fast;
  used by the error-prevalence experiments that process thousands of
  frames);
* the image path (``use_image=True``) rasterizes the frame and runs a
  small classical vision pipeline (column-histogram lane finding, blob
  detection, size-based ranging) — slower but a genuine vision workload.

Both paths misbehave in the same way when fed *misaligned* inputs: a
stale lane box shifts the in-lane test, which is exactly how the stock
pipeline's input mismatches turn into wrong braking decisions.
"""

from __future__ import annotations

import numpy as np

from repro.apps.brake.data import (
    BrakeCommand,
    DetectedVehicle,
    Frame,
    LaneBox,
    VehicleList,
)
from repro.apps.brake.vision import (
    IMAGE_HEIGHT,
    IMAGE_WIDTH,
    VIEW_DEPTH_M,
    VIEW_WIDTH_M,
    render_frame,
)

#: Brake when the time-to-collision falls below this threshold (seconds).
TTC_THRESHOLD_S = 2.0


def preprocess(frame: Frame, use_image: bool = False) -> LaneBox:
    """Preprocessing: compute the ego-lane bounding box for *frame*."""
    if use_image:
        return _preprocess_image(frame)
    half = frame.lane_width_m / 2
    return LaneBox(
        frame_seq=frame.seq,
        left_m=frame.lane_center_m - half,
        right_m=frame.lane_center_m + half,
    )


def _preprocess_image(frame: Frame) -> LaneBox:
    image = render_frame(frame)
    # Lane markings are the only medium-brightness full-height features:
    # score columns by the count of pixels in the marking band.
    marking = (image > 120) & (image < 250)
    scores = marking.sum(axis=0)
    columns = np.argsort(scores)[-2:]
    left_col, right_col = int(columns.min()), int(columns.max())

    def lateral(column: int) -> float:
        return (column / (IMAGE_WIDTH - 1)) * VIEW_WIDTH_M - VIEW_WIDTH_M / 2

    return LaneBox(frame.seq, lateral(left_col), lateral(right_col))


def detect_vehicles(
    frame: Frame, lane: LaneBox, use_image: bool = False
) -> VehicleList:
    """Computer Vision: find vehicles inside *lane* and range them.

    Note that *lane* may legitimately describe a different frame than
    *frame* when the middleware misaligned the inputs; the function uses
    it anyway (as the original demo code does), which is how mismatches
    become wrong detections.
    """
    if use_image:
        return _detect_image(frame, lane)
    detected = []
    for vehicle in frame.vehicles:
        if lane.left_m <= vehicle.lateral_m <= lane.right_m:
            closing = frame.ego_speed_mps - vehicle.speed_mps
            detected.append(
                DetectedVehicle(vehicle.vehicle_id, vehicle.distance_m, closing)
            )
    detected.sort(key=lambda vehicle: vehicle.distance_m)
    return VehicleList(frame_seq=frame.seq, vehicles=tuple(detected))


def _detect_image(frame: Frame, lane: LaneBox) -> VehicleList:
    image = render_frame(frame)
    blobs = image >= 250
    detected = []
    visited = np.zeros_like(blobs)
    for row in range(IMAGE_HEIGHT):
        for col in range(IMAGE_WIDTH):
            if not blobs[row, col] or visited[row, col]:
                continue
            rows, cols = _flood(blobs, visited, row, col)
            center_col = sum(cols) / len(cols)
            lateral = (center_col / (IMAGE_WIDTH - 1)) * VIEW_WIDTH_M - VIEW_WIDTH_M / 2
            if not (lane.left_m <= lateral <= lane.right_m):
                continue
            center_row = sum(rows) / len(rows)
            distance = (1.0 - center_row / (IMAGE_HEIGHT - 1)) * VIEW_DEPTH_M
            # Image ranging has no velocity; assume worst-case closing.
            detected.append(
                DetectedVehicle(len(detected) + 1, distance, frame.ego_speed_mps * 0.4)
            )
    detected.sort(key=lambda vehicle: vehicle.distance_m)
    return VehicleList(frame_seq=frame.seq, vehicles=tuple(detected))


def _flood(blobs, visited, row, col):
    stack = [(row, col)]
    rows, cols = [], []
    while stack:
        r, c = stack.pop()
        if not (0 <= r < IMAGE_HEIGHT and 0 <= c < IMAGE_WIDTH):
            continue
        if visited[r, c] or not blobs[r, c]:
            continue
        visited[r, c] = True
        rows.append(r)
        cols.append(c)
        stack.extend(((r + 1, c), (r - 1, c), (r, c + 1), (r, c - 1)))
    return rows, cols


def decide_brake(vehicles: VehicleList) -> BrakeCommand:
    """EBA: decide whether an emergency brake maneuver is required."""
    worst_ttc = None
    for vehicle in vehicles.vehicles:
        if vehicle.closing_speed_mps <= 0:
            continue
        ttc = vehicle.distance_m / vehicle.closing_speed_mps
        if worst_ttc is None or ttc < worst_ttc:
            worst_ttc = ttc
    if worst_ttc is None or worst_ttc >= TTC_THRESHOLD_S:
        return BrakeCommand(vehicles.frame_seq, False, 0.0)
    intensity = min(1.0, max(0.0, 1.0 - worst_ttc / TTC_THRESHOLD_S))
    return BrakeCommand(vehicles.frame_seq, True, round(intensity, 6))


def oracle_commands(generator, n_frames: int) -> dict[int, BrakeCommand]:
    """Ground truth: the command every frame *should* produce.

    Runs the unmodified stage logic on every frame with perfectly
    aligned inputs — what an ideal middleware would deliver.
    """
    commands = {}
    for seq in range(n_frames):
        frame = generator.frame(seq)
        lane = preprocess(frame)
        vehicles = detect_vehicles(frame, lane)
        commands[seq] = decide_brake(vehicles)
    return commands
