"""Synthetic driving scenario and raster renderer.

Stands in for the camera of the paper's demonstrator.  The scene is a
**pure function of the frame index** (the scenario seed only selects
among scenario variants), so every run — stock or DEAR, any platform
seed — sees exactly the same world.  That is what lets the benchmarks
attribute output differences entirely to the middleware.

The scenario models a two-lane road:

* the ego lane's lateral center drifts slowly (road curvature);
* a lead vehicle stays in the ego lane with an oscillating gap,
  periodically closing fast enough to demand emergency braking;
* an adjacent-lane vehicle periodically cuts into the ego lane at
  short range (the other braking trigger) and leaves again.

:func:`render_frame` additionally rasterizes a frame into a small numpy
luminance image (lane markings + vehicle blobs), and
:mod:`repro.apps.brake.logic` contains an image-based detection path
operating on it, for when a "real" vision workload is wanted.
"""

from __future__ import annotations

import math

import numpy as np

from repro.apps.brake.data import Frame, GroundTruthVehicle

#: Image dimensions of the rendered frame.
IMAGE_WIDTH = 64
IMAGE_HEIGHT = 48

#: Lateral extent covered by the image, in meters (centered on x = 0).
VIEW_WIDTH_M = 12.0
#: Distance covered by the image rows, in meters.
VIEW_DEPTH_M = 80.0


class SceneGenerator:
    """Generates the deterministic frame sequence.

    Args:
        period_ns: nominal frame period (used for capture timestamps and
            speed derivatives).
        variant: selects one of several scenario parameterizations, so
            different experiments can use different roads while staying
            reproducible.
    """

    def __init__(self, period_ns: int, variant: int = 0) -> None:
        self.period_ns = period_ns
        self.variant = variant
        self._ego_speed = 25.0  # m/s, roughly 90 km/h
        self._lane_width = 3.6
        # Variant-dependent phases keep different roads deterministic.
        self._phase = 0.37 * (variant + 1)

    @property
    def ego_speed_mps(self) -> float:
        """Constant ego speed of the scenario."""
        return self._ego_speed

    def lane_center(self, seq: int) -> float:
        """Lateral position of the ego lane center at frame *seq*."""
        return 1.5 * math.sin(2 * math.pi * seq / 97.0 + self._phase)

    def _lead_distance(self, seq: int) -> float:
        return 36.0 + 26.0 * math.cos(2 * math.pi * seq / 240.0 + self._phase)

    def _lead_vehicle(self, seq: int) -> GroundTruthVehicle:
        distance = self._lead_distance(seq)
        next_distance = self._lead_distance(seq + 1)
        dt = self.period_ns / 1e9
        speed = self._ego_speed + (next_distance - distance) / dt
        lateral = self.lane_center(seq) + 0.3 * math.sin(
            2 * math.pi * seq / 137.0
        )
        return GroundTruthVehicle(1, distance, lateral, speed)

    def _cut_in_offset(self, seq: int) -> float:
        """Lateral offset of the adjacent vehicle from the lane center.

        3.5 m (next lane) most of the time; during each cut-in window it
        ramps into the ego lane and back out.
        """
        cycle = seq % 500
        if 300 <= cycle < 340:  # cutting in
            progress = (cycle - 300) / 40.0
            return 3.5 * (1.0 - progress)
        if 340 <= cycle < 380:  # inside the ego lane
            return 0.0
        if 380 <= cycle < 420:  # leaving
            progress = (cycle - 380) / 40.0
            return 3.5 * progress
        return 3.5

    def _adjacent_vehicle(self, seq: int) -> GroundTruthVehicle:
        distance = 18.0 + 6.0 * math.cos(2 * math.pi * seq / 173.0)
        lateral = self.lane_center(seq) + self._cut_in_offset(seq)
        speed = self._ego_speed - 10.0  # much slower: urgent when in lane
        return GroundTruthVehicle(2, distance, lateral, speed)

    def frame(self, seq: int) -> Frame:
        """The frame with index *seq* (pure function)."""
        return Frame(
            seq=seq,
            capture_time_ns=seq * self.period_ns,
            ego_speed_mps=self._ego_speed,
            lane_center_m=self.lane_center(seq),
            lane_width_m=self._lane_width,
            vehicles=(self._lead_vehicle(seq), self._adjacent_vehicle(seq)),
        )


def _column_for_lateral(lateral_m: float) -> int:
    normalized = (lateral_m + VIEW_WIDTH_M / 2) / VIEW_WIDTH_M
    return int(np.clip(normalized * (IMAGE_WIDTH - 1), 0, IMAGE_WIDTH - 1))


def _row_for_distance(distance_m: float) -> int:
    normalized = np.clip(distance_m / VIEW_DEPTH_M, 0.0, 1.0)
    return int((1.0 - normalized) * (IMAGE_HEIGHT - 1))


def render_frame(frame: Frame) -> np.ndarray:
    """Rasterize *frame* into an 8-bit luminance image.

    Lane markings are bright vertical curves at the lane boundaries;
    vehicles are bright rectangles whose size shrinks with distance.
    """
    image = np.zeros((IMAGE_HEIGHT, IMAGE_WIDTH), dtype=np.uint8)
    half = frame.lane_width_m / 2
    for boundary in (frame.lane_center_m - half, frame.lane_center_m + half):
        column = _column_for_lateral(boundary)
        image[:, column] = np.maximum(image[:, column], 180)
    for vehicle in frame.vehicles:
        row = _row_for_distance(vehicle.distance_m)
        column = _column_for_lateral(vehicle.lateral_m)
        size = max(1, int(8 * 10.0 / max(vehicle.distance_m, 5.0)))
        row_lo = max(0, row - size // 2)
        row_hi = min(IMAGE_HEIGHT, row + size // 2 + 1)
        col_lo = max(0, column - size)
        col_hi = min(IMAGE_WIDTH, column + size + 1)
        image[row_lo:row_hi, col_lo:col_hi] = 255
    return image
