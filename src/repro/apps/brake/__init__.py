"""The brake assistant case study (Section IV of the paper).

A five-stage pipeline — Video Provider, Video Adapter, Preprocessing,
Computer Vision, Emergency Brake Assistant (EBA) — distributed over two
platforms (Figure 4):

* :mod:`repro.apps.brake.data` — the data types flowing through the
  pipeline and their wire serializations;
* :mod:`repro.apps.brake.vision` — the synthetic driving scenario
  standing in for the camera, plus an optional raster renderer;
* :mod:`repro.apps.brake.logic` — the *shared* computational logic of
  each stage (both variants call exactly these functions, as the paper's
  port reuses the original logic);
* :mod:`repro.apps.brake.instrumentation` — error counters and the
  oracle comparison;
* :mod:`repro.apps.brake.scenario` — workload and timing configuration;
* :mod:`repro.apps.brake.nondet` — the stock AP implementation with
  periodic callbacks and one-slot input buffers (Section IV.A);
* :mod:`repro.apps.brake.det` — the DEAR implementation (Section IV.B).
"""

from repro.apps.brake.data import (
    BrakeCommand,
    DetectedVehicle,
    Frame,
    LaneBox,
    VehicleList,
)
from repro.apps.brake.scenario import BrakeScenario
from repro.apps.brake.instrumentation import BrakeRunResult, ErrorCounters
from repro.apps.brake.nondet import run_nondet_brake_assistant
from repro.apps.brake.det import run_det_brake_assistant

__all__ = [
    "Frame",
    "LaneBox",
    "DetectedVehicle",
    "VehicleList",
    "BrakeCommand",
    "BrakeScenario",
    "ErrorCounters",
    "BrakeRunResult",
    "run_nondet_brake_assistant",
    "run_det_brake_assistant",
]
