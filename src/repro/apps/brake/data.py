"""Data types of the brake-assistant pipeline and their wire formats.

Every type crossing a service interface has a SOME/IP payload spec, so
the pipeline's events are genuinely serialized and deserialized —
including in the DEAR variant, where the tag trailer rides behind these
payloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.someip.serialization import (
    Array,
    BOOL,
    FLOAT64,
    INT64,
    Struct,
    UINT32,
)


@dataclass(frozen=True)
class GroundTruthVehicle:
    """A vehicle in the synthetic scene (camera-side ground truth)."""

    vehicle_id: int
    distance_m: float
    lateral_m: float
    speed_mps: float


@dataclass(frozen=True)
class Frame:
    """One camera frame.

    The synthetic scene state takes the place of pixel data; the optional
    raster renderer (:mod:`repro.apps.brake.vision`) derives an image
    from it, and the closed-form detection path reads it directly.
    """

    seq: int
    capture_time_ns: int
    ego_speed_mps: float
    lane_center_m: float
    lane_width_m: float
    vehicles: tuple[GroundTruthVehicle, ...]


@dataclass(frozen=True)
class LaneBox:
    """Lane boundaries computed by Preprocessing for one frame."""

    frame_seq: int
    left_m: float
    right_m: float

    @property
    def center_m(self) -> float:
        """Lane center."""
        return (self.left_m + self.right_m) / 2.0

    @property
    def width_m(self) -> float:
        """Lane width."""
        return self.right_m - self.left_m


@dataclass(frozen=True)
class DetectedVehicle:
    """A vehicle detected in the ego lane by Computer Vision."""

    vehicle_id: int
    distance_m: float
    closing_speed_mps: float


@dataclass(frozen=True)
class VehicleList:
    """Computer Vision output for one frame."""

    frame_seq: int
    vehicles: tuple[DetectedVehicle, ...]


@dataclass(frozen=True)
class BrakeCommand:
    """EBA output for one frame."""

    frame_seq: int
    brake: bool
    intensity: float


# --------------------------------------------------------------------------
# Wire formats.
# --------------------------------------------------------------------------

_GT_VEHICLE_SPEC = Struct(
    [
        ("vehicle_id", UINT32),
        ("distance_m", FLOAT64),
        ("lateral_m", FLOAT64),
        ("speed_mps", FLOAT64),
    ],
    name="gt_vehicle",
)

FRAME_SPEC = Struct(
    [
        ("seq", UINT32),
        ("capture_time_ns", INT64),
        ("ego_speed_mps", FLOAT64),
        ("lane_center_m", FLOAT64),
        ("lane_width_m", FLOAT64),
        ("vehicles", Array(_GT_VEHICLE_SPEC)),
    ],
    name="frame",
)

LANE_SPEC = Struct(
    [("frame_seq", UINT32), ("left_m", FLOAT64), ("right_m", FLOAT64)],
    name="lane",
)

_DETECTED_SPEC = Struct(
    [
        ("vehicle_id", UINT32),
        ("distance_m", FLOAT64),
        ("closing_speed_mps", FLOAT64),
    ],
    name="detected_vehicle",
)

VEHICLES_SPEC = Struct(
    [("frame_seq", UINT32), ("vehicles", Array(_DETECTED_SPEC))],
    name="vehicles",
)

BRAKE_SPEC = Struct(
    [("frame_seq", UINT32), ("brake", BOOL), ("intensity", FLOAT64)],
    name="brake",
)


def frame_to_wire(frame: Frame) -> dict:
    """Frame -> wire dict."""
    return {
        "seq": frame.seq,
        "capture_time_ns": frame.capture_time_ns,
        "ego_speed_mps": frame.ego_speed_mps,
        "lane_center_m": frame.lane_center_m,
        "lane_width_m": frame.lane_width_m,
        "vehicles": [
            {
                "vehicle_id": vehicle.vehicle_id,
                "distance_m": vehicle.distance_m,
                "lateral_m": vehicle.lateral_m,
                "speed_mps": vehicle.speed_mps,
            }
            for vehicle in frame.vehicles
        ],
    }


def frame_from_wire(data: dict) -> Frame:
    """Wire dict -> Frame."""
    return Frame(
        seq=data["seq"],
        capture_time_ns=data["capture_time_ns"],
        ego_speed_mps=data["ego_speed_mps"],
        lane_center_m=data["lane_center_m"],
        lane_width_m=data["lane_width_m"],
        vehicles=tuple(
            GroundTruthVehicle(
                vehicle_id=vehicle["vehicle_id"],
                distance_m=vehicle["distance_m"],
                lateral_m=vehicle["lateral_m"],
                speed_mps=vehicle["speed_mps"],
            )
            for vehicle in data["vehicles"]
        ),
    )


def lane_to_wire(lane: LaneBox) -> dict:
    """LaneBox -> wire dict."""
    return {
        "frame_seq": lane.frame_seq,
        "left_m": lane.left_m,
        "right_m": lane.right_m,
    }


def lane_from_wire(data: dict) -> LaneBox:
    """Wire dict -> LaneBox."""
    return LaneBox(data["frame_seq"], data["left_m"], data["right_m"])


def vehicles_to_wire(vehicles: VehicleList) -> dict:
    """VehicleList -> wire dict."""
    return {
        "frame_seq": vehicles.frame_seq,
        "vehicles": [
            {
                "vehicle_id": vehicle.vehicle_id,
                "distance_m": vehicle.distance_m,
                "closing_speed_mps": vehicle.closing_speed_mps,
            }
            for vehicle in vehicles.vehicles
        ],
    }


def vehicles_from_wire(data: dict) -> VehicleList:
    """Wire dict -> VehicleList."""
    return VehicleList(
        frame_seq=data["frame_seq"],
        vehicles=tuple(
            DetectedVehicle(
                vehicle_id=vehicle["vehicle_id"],
                distance_m=vehicle["distance_m"],
                closing_speed_mps=vehicle["closing_speed_mps"],
            )
            for vehicle in data["vehicles"]
        ),
    )


def brake_to_wire(command: BrakeCommand) -> dict:
    """BrakeCommand -> wire dict."""
    return {
        "frame_seq": command.frame_seq,
        "brake": command.brake,
        "intensity": command.intensity,
    }


def brake_from_wire(data: dict) -> BrakeCommand:
    """Wire dict -> BrakeCommand."""
    return BrakeCommand(data["frame_seq"], data["brake"], data["intensity"])
