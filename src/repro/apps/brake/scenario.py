"""Workload and timing configuration for the brake assistant."""

from __future__ import annotations

from dataclasses import dataclass

from repro.time.duration import MS, US


@dataclass(frozen=True)
class StageTiming:
    """Execution-time model of one SWC's logic (uniform range)."""

    min_ns: int
    max_ns: int

    def sample(self, rng) -> int:
        """Draw one execution time."""
        return rng.randint(self.min_ns, self.max_ns)


@dataclass(frozen=True)
class BrakeScenario:
    """Everything that parameterizes one brake-assistant run.

    Defaults follow Section IV: 50 ms frame period and SWC periods,
    deadlines 5/25/25/5 ms, 5 ms communication latency bound, no clock
    synchronization error (single processing platform).  The paper
    processes 100 000 frames per run; the default here is smaller so the
    full 20-run experiment stays interactive — pass ``n_frames=100_000``
    for paper scale.
    """

    n_frames: int = 2_000
    #: Nominal camera period and SWC callback period.
    period_ns: int = 50 * MS
    #: Camera jitter: each frame is sent at k*period + U(0, jitter).
    camera_jitter_ns: int = 2 * MS
    #: Warm-up before the camera starts (service discovery, subscriptions).
    warmup_ns: int = 600 * MS
    #: Scenario variant passed to the scene generator.
    variant: int = 0
    #: Synthetic extra bytes per frame message (models the pixel payload).
    frame_extra_bytes: int = 4096
    #: Per-stage execution-time models (within the paper's WCET budget).
    adapter: StageTiming = StageTiming(1 * MS, 3 * MS)
    preprocessing: StageTiming = StageTiming(14 * MS, 21 * MS)
    computer_vision: StageTiming = StageTiming(14 * MS, 21 * MS)
    eba: StageTiming = StageTiming(1 * MS, 3 * MS)
    #: Occasional late periodic callbacks (OS scheduling spikes): each
    #: activation is delayed by U(0, max) with this probability.
    callback_spike_probability: float = 0.02
    callback_spike_max_ns: int = 8 * MS
    #: Middleware handler cost of copying a frame event into the input
    #: buffer (frames carry pixel payloads; lanes/vehicle lists are tiny).
    frame_copy_cost: StageTiming = StageTiming(300 * US, 2 * MS)
    #: DEAR deadlines (Section IV.B).
    adapter_deadline_ns: int = 5 * MS
    preprocessing_deadline_ns: int = 25 * MS
    computer_vision_deadline_ns: int = 25 * MS
    eba_deadline_ns: int = 5 * MS
    #: Assumed worst-case communication latency L.
    latency_bound_ns: int = 5 * MS
    #: Assumed clock synchronization error E.
    clock_error_ns: int = 0
    #: DEAR late-message policy when STP detects an L-bound violation
    #: (a :class:`repro.dear.LatePolicy` value; kept as a string so the
    #: scenario stays trivially JSON-serializable).
    late_policy: str = "process"
    #: Deterministic camera: no send jitter and a constant network
    #: latency, so even event *tags* are reproducible across seeds.
    deterministic_camera: bool = False
    #: Distributed deployment (extension): Computer Vision and EBA run
    #: on a second processing ECU whose clock is offset by
    #: ``processing_clock_skew_ns`` — the case where the paper's ``E``
    #: term becomes non-zero.  Set ``clock_error_ns`` >= the skew.
    distributed: bool = False
    processing_clock_skew_ns: int = 0
    #: Use the image-based detection path (slower, more realistic).
    use_image_pipeline: bool = False

    def total_duration_ns(self) -> int:
        """Simulation horizon comfortably covering the whole run."""
        return self.warmup_ns + (self.n_frames + 12) * self.period_ns
