"""The deterministic brake assistant (Section IV.B) — DEAR.

The same five-stage pipeline, with each SWC's logic encapsulated in a
reactor and the inter-SWC communication running through DEAR
transactors over the same SOME/IP services as the stock variant:

* **Video Adapter** has no well-defined input: frames arrive
  sporadically over the proprietary protocol, so it is a *sensor* — a
  physical action tagged with the physical time of message reception;
* every other stage consumes tagged events and produces tagged events;
  safe-to-process waits (``t + D + L + E``) keep everything in tag
  order;
* deadlines follow the paper: 5 ms (Video Adapter), 25 ms
  (Preprocessing), 25 ms (Computer Vision), 5 ms (EBA), with an assumed
  communication latency bound of 5 ms and no clock-sync error (all
  processing SWCs share one platform);
* Computer Vision requires its two inputs to carry the same tag;
  anything else is counted as an observable error (none occur when the
  deadline/latency assumptions hold).
"""

from __future__ import annotations

from typing import Any

from repro.ara import AraProcess
from repro.apps.brake.data import (
    FRAME_SPEC,
    frame_from_wire,
    frame_to_wire,
    lane_to_wire,
    lane_from_wire,
    vehicles_from_wire,
    vehicles_to_wire,
    brake_to_wire,
)
from repro.apps.brake.instrumentation import BrakeRunResult, ErrorCounters
from repro.apps.brake.logic import decide_brake, detect_vehicles, preprocess
from repro.apps.brake.nondet import (
    ADAPTER_RAW_PORT,
    ADAPTER_SERVICE,
    CV_SERVICE,
    EBA_SERVICE,
    FUSION_ECU,
    FUSION2_ECU,
    PREPROCESSING_SERVICE,
    build_brake_world,
    start_camera,
)
from repro.apps.brake.scenario import BrakeScenario
from repro.dear import (
    ClientEventTransactor,
    LatePolicy,
    ServerEventTransactor,
    StpConfig,
    TransactorConfig,
)
from repro.network import NetworkInterface
from repro.obs import context as obs_context
from repro.reactors import Environment, Reactor
from repro.time.duration import SEC


def _transactor_config(scenario: BrakeScenario, deadline_ns: int) -> TransactorConfig:
    return TransactorConfig(
        deadline_ns=deadline_ns,
        stp=StpConfig(
            latency_bound_ns=scenario.latency_bound_ns,
            clock_error_ns=scenario.clock_error_ns,
        ),
        late_policy=LatePolicy(scenario.late_policy),
    )


class _AdapterLogic(Reactor):
    """Video Adapter: sporadic sensor -> tagged frame events."""

    def __init__(self, name, owner, scenario: BrakeScenario):
        super().__init__(name, owner)
        self.frame_arrival = self.physical_action("frame_arrival")
        self.out = self.output("out")
        self.reaction(
            "forward",
            triggers=[self.frame_arrival],
            effects=[self.out],
            body=lambda ctx: ctx.set(self.out, ctx.get(self.frame_arrival)),
            exec_time=lambda rng: scenario.adapter.sample(rng),
        )


class _PreprocessingLogic(Reactor):
    """Preprocessing: frame -> (forwarded frame, lane box)."""

    def __init__(self, name, owner, scenario: BrakeScenario):
        super().__init__(name, owner)
        self.frame_in = self.input("frame_in")
        self.frame_out = self.output("frame_out")
        self.lane_out = self.output("lane_out")
        self.processed = 0
        use_image = scenario.use_image_pipeline

        def work(ctx):
            frame = frame_from_wire(ctx.get(self.frame_in))
            lane = preprocess(frame, use_image=use_image)
            self.processed += 1
            ctx.set(self.frame_out, frame_to_wire(frame))
            ctx.set(self.lane_out, lane_to_wire(lane))

        self.reaction(
            "work",
            triggers=[self.frame_in],
            effects=[self.frame_out, self.lane_out],
            body=work,
            exec_time=lambda rng: scenario.preprocessing.sample(rng),
        )


class _ComputerVisionLogic(Reactor):
    """Computer Vision: expects frame and lane with the *same tag*."""

    def __init__(self, name, owner, scenario: BrakeScenario, errors: ErrorCounters):
        super().__init__(name, owner)
        self.frame_in = self.input("frame_in")
        self.lane_in = self.input("lane_in")
        self.vehicles_out = self.output("vehicles_out")
        self.processed = 0
        use_image = scenario.use_image_pipeline

        def work(ctx):
            have_frame = ctx.is_present(self.frame_in)
            have_lane = ctx.is_present(self.lane_in)
            if not (have_frame and have_lane):
                # One-sided input at a tag: an observable alignment error.
                errors.mismatch_computer_vision += 1
                return
            frame = frame_from_wire(ctx.get(self.frame_in))
            lane = lane_from_wire(ctx.get(self.lane_in))
            if frame.seq != lane.frame_seq:
                errors.mismatch_computer_vision += 1
                return
            vehicles = detect_vehicles(frame, lane, use_image=use_image)
            self.processed += 1
            ctx.set(self.vehicles_out, vehicles_to_wire(vehicles))

        self.reaction(
            "work",
            triggers=[self.frame_in, self.lane_in],
            effects=[self.vehicles_out],
            body=work,
            exec_time=lambda rng: scenario.computer_vision.sample(rng),
        )


class _EbaLogic(Reactor):
    """EBA: vehicles -> brake command."""

    def __init__(self, name, owner, scenario, commands, latencies, send_times, world):
        super().__init__(name, owner)
        self.vehicles_in = self.input("vehicles_in")
        self.brake_out = self.output("brake_out")

        def work(ctx):
            vehicles = vehicles_from_wire(ctx.get(self.vehicles_in))
            command = decide_brake(vehicles)
            commands[command.frame_seq] = command
            sent = send_times.get(command.frame_seq)
            if sent is not None:
                latencies[command.frame_seq] = world.sim.now - sent
            o = obs_context.ACTIVE
            if o.enabled and o.flows is not None:
                o.flows.deliver(command.frame_seq, world.sim.now)
            ctx.set(self.brake_out, brake_to_wire(command))

        self.reaction(
            "work",
            triggers=[self.vehicles_in],
            effects=[self.brake_out],
            body=work,
            exec_time=lambda rng: scenario.eba.sample(rng),
        )


def run_det_brake_assistant(
    seed: int,
    scenario: BrakeScenario | None = None,
    switch_config=None,
    fault_plan=None,
    fault_replay=None,
    fault_universe=None,
    fault_checkpointer=None,
) -> BrakeRunResult:
    """Run the DEAR brake assistant once; returns measurements."""
    scenario = scenario or BrakeScenario()
    world = build_brake_world(
        scenario,
        seed,
        switch_config=switch_config,
        fault_plan=fault_plan,
        fault_replay=fault_replay,
        fault_universe=fault_universe,
        fault_checkpointer=fault_checkpointer,
    )
    fusion = world.platform(FUSION_ECU)
    # Distributed extension: the back half of the pipeline runs on a
    # second (possibly clock-skewed) processing board.
    back_end = world.platform(FUSION2_ECU) if scenario.distributed else fusion
    errors = ErrorCounters()
    commands: dict[int, Any] = {}
    latencies: dict[int, int] = {}
    send_times: dict[int, int] = {}
    horizon = scenario.total_duration_ns()
    transactors = []

    # ---- Video Adapter -------------------------------------------------------
    adapter_process = AraProcess(fusion, "adapter", tag_aware=True)
    adapter_env = Environment(name="adapter", timeout=horizon, trace_origin=0)
    adapter_logic = _AdapterLogic("logic", adapter_env, scenario)
    adapter_skeleton = adapter_process.create_skeleton(ADAPTER_SERVICE, 1)
    adapter_tx = ServerEventTransactor(
        "frame_tx", adapter_env, adapter_process, adapter_skeleton, "frame",
        _transactor_config(scenario, scenario.adapter_deadline_ns),
    )
    adapter_env.connect(adapter_logic.out, adapter_tx.inp)
    adapter_skeleton.offer()
    transactors.append(adapter_tx)

    nic: NetworkInterface = fusion.attachments["nic"]
    raw_socket = nic.bind(ADAPTER_RAW_PORT)
    raw_socket.on_receive = lambda msg: adapter_logic.frame_arrival.schedule(
        FRAME_SPEC.from_bytes(msg.payload)
    )
    adapter_env.start(fusion)

    # ---- Preprocessing ---------------------------------------------------------
    pre_process = AraProcess(fusion, "preprocessing", tag_aware=True)
    pre_env = Environment(name="preprocessing", timeout=horizon, trace_origin=0)
    pre_logic = _PreprocessingLogic("logic", pre_env, scenario)
    pre_skeleton = pre_process.create_skeleton(PREPROCESSING_SERVICE, 1)
    pre_config = _transactor_config(scenario, scenario.preprocessing_deadline_ns)
    pre_frame_tx = ServerEventTransactor(
        "frame_tx", pre_env, pre_process, pre_skeleton, "frame", pre_config
    )
    pre_lane_tx = ServerEventTransactor(
        "lane_tx", pre_env, pre_process, pre_skeleton, "lane", pre_config
    )
    pre_env.connect(pre_logic.frame_out, pre_frame_tx.inp)
    pre_env.connect(pre_logic.lane_out, pre_lane_tx.inp)
    pre_skeleton.offer()
    transactors.extend([pre_frame_tx, pre_lane_tx])

    def pre_setup():
        proxy = yield from pre_process.find_service(ADAPTER_SERVICE, 1)
        frame_rx = ClientEventTransactor(
            "frame_rx", pre_env, pre_process, proxy, "frame",
            _transactor_config(scenario, scenario.adapter_deadline_ns),
        )
        pre_env.connect(frame_rx.out, pre_logic.frame_in)
        transactors.append(frame_rx)
        pre_env.start(fusion)

    pre_process.spawn("setup", pre_setup())

    # ---- Computer Vision -----------------------------------------------------------
    cv_process = AraProcess(back_end, "computer-vision", tag_aware=True)
    cv_env = Environment(name="computer-vision", timeout=horizon, trace_origin=0)
    cv_logic = _ComputerVisionLogic("logic", cv_env, scenario, errors)
    cv_skeleton = cv_process.create_skeleton(CV_SERVICE, 1)
    cv_tx = ServerEventTransactor(
        "vehicles_tx", cv_env, cv_process, cv_skeleton, "vehicles",
        _transactor_config(scenario, scenario.computer_vision_deadline_ns),
    )
    cv_env.connect(cv_logic.vehicles_out, cv_tx.inp)
    cv_skeleton.offer()
    transactors.append(cv_tx)

    def cv_setup():
        proxy = yield from cv_process.find_service(PREPROCESSING_SERVICE, 1)
        config = _transactor_config(scenario, scenario.preprocessing_deadline_ns)
        frame_rx = ClientEventTransactor(
            "frame_rx", cv_env, cv_process, proxy, "frame", config
        )
        lane_rx = ClientEventTransactor(
            "lane_rx", cv_env, cv_process, proxy, "lane", config
        )
        cv_env.connect(frame_rx.out, cv_logic.frame_in)
        cv_env.connect(lane_rx.out, cv_logic.lane_in)
        transactors.extend([frame_rx, lane_rx])
        cv_env.start(back_end)

    cv_process.spawn("setup", cv_setup())

    # ---- EBA -------------------------------------------------------------------------
    eba_process = AraProcess(back_end, "eba", tag_aware=True)
    eba_env = Environment(name="eba", timeout=horizon, trace_origin=0)
    eba_logic = _EbaLogic(
        "logic", eba_env, scenario, commands, latencies, send_times, world
    )
    eba_skeleton = eba_process.create_skeleton(EBA_SERVICE, 1)
    eba_tx = ServerEventTransactor(
        "brake_tx", eba_env, eba_process, eba_skeleton, "brake",
        _transactor_config(scenario, scenario.eba_deadline_ns),
    )
    eba_env.connect(eba_logic.brake_out, eba_tx.inp)
    eba_skeleton.offer()
    transactors.append(eba_tx)

    def eba_setup():
        proxy = yield from eba_process.find_service(CV_SERVICE, 1)
        vehicles_rx = ClientEventTransactor(
            "vehicles_rx", eba_env, eba_process, proxy, "vehicles",
            _transactor_config(scenario, scenario.computer_vision_deadline_ns),
        )
        eba_env.connect(vehicles_rx.out, eba_logic.vehicles_in)
        transactors.append(vehicles_rx)
        eba_env.start(back_end)

    eba_process.spawn("setup", eba_setup())

    # ---- run -------------------------------------------------------------------------
    start_camera(world, scenario, send_times)
    world.run_for(horizon + 1 * SEC)

    result = BrakeRunResult(
        seed=seed,
        n_frames=scenario.n_frames,
        errors=errors,
        commands=commands,
        latencies_ns=latencies,
        trace_fingerprints={
            env.name: env.trace.fingerprint()
            for env in (adapter_env, pre_env, cv_env, eba_env)
        },
        deadline_misses=sum(t.deadline_misses for t in transactors),
        stp_violations=sum(t.stp_violations for t in transactors),
        fault_summary=(
            None if world.fault_injector is None else world.fault_injector.summary()
        ),
    )
    return result
