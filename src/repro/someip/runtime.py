"""The per-process SOME/IP endpoint.

Each AP software component (SWC) is a process with its own SOME/IP
endpoint: one datagram socket, a client id, a session counter, pending
request/response matching, and dispatch of incoming requests and event
notifications to registered handlers.

Handlers run in **kernel context** (the receive path of the simulated
stack); the ARA layer on top decides whether to process synchronously or
hand off to a worker-thread pool — which is exactly where the paper's
second source of nondeterminism (undefined processing order of incoming
messages) enters.

Tag awareness (the paper's modified binding) is per endpoint: a
tag-aware endpoint collects tags from its TX :class:`TimestampBypass`
when serializing and deposits extracted tags into its RX bypass before
invoking handlers — the sequence shown in the paper's Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import SomeIpError
from repro.network.stack import NetworkInterface, Socket
from repro.obs import context as obs_context
from repro.obs.bus import TRACK_NETWORK
from repro.obs.flows import CAUSE_MALFORMED, LAYER_SOMEIP, attribute_drop
from repro.network.switch import Frame
from repro.sim.platform import Platform
from repro.someip.sd import SdDaemon, ServiceEntry
from repro.someip.tagging import TimestampBypass, attach_tag, extract_tag
from repro.someip.wire import MessageType, ReturnCode, SomeIpHeader, SomeIpMessage
from repro.time.tag import Tag

#: Event/notification method ids have the most significant bit set.
EVENT_ID_FLAG = 0x8000


@dataclass(slots=True)
class IncomingRequest:
    """A method invocation received by a server endpoint."""

    endpoint: "SomeIpEndpoint"
    header: SomeIpHeader
    payload: bytes
    tag: Tag | None
    src_host: str
    src_port: int
    replied: bool = False

    @property
    def fire_and_forget(self) -> bool:
        """Whether the client expects no response."""
        return self.header.message_type is MessageType.REQUEST_NO_RETURN

    def reply(self, payload: bytes, tag: Tag | None = None) -> None:
        """Send the RESPONSE message back to the caller."""
        if self.fire_and_forget:
            return
        if self.replied:
            raise SomeIpError("request already replied to")
        self.replied = True
        header = SomeIpHeader(
            service_id=self.header.service_id,
            method_id=self.header.method_id,
            client_id=self.header.client_id,
            session_id=self.header.session_id,
            interface_version=self.header.interface_version,
            message_type=MessageType.RESPONSE,
            return_code=ReturnCode.E_OK,
        )
        self.endpoint._transmit(self.src_host, self.src_port, header, payload, tag)

    def reply_error(self, return_code: ReturnCode) -> None:
        """Send an ERROR message back to the caller."""
        if self.fire_and_forget or self.replied:
            return
        self.replied = True
        header = SomeIpHeader(
            service_id=self.header.service_id,
            method_id=self.header.method_id,
            client_id=self.header.client_id,
            session_id=self.header.session_id,
            interface_version=self.header.interface_version,
            message_type=MessageType.ERROR,
            return_code=return_code,
        )
        self.endpoint._transmit(self.src_host, self.src_port, header, b"", None)


@dataclass(slots=True)
class _PendingRequest:
    completion: Callable[[ReturnCode, bytes, Tag | None], None]
    timeout_handle: Any = None


@dataclass(slots=True)
class _ServiceRegistration:
    instance_id: int
    major_version: int
    handler: Callable[[IncomingRequest], None]


class SomeIpEndpoint:
    """One process's SOME/IP binding."""

    _next_client_id = 1

    def __init__(
        self,
        platform: Platform,
        sd: SdDaemon,
        name: str,
        tag_aware: bool = False,
        tag_transport: str = "trailer",
    ) -> None:
        if tag_transport not in ("trailer", "native"):
            raise SomeIpError(f"unknown tag transport {tag_transport!r}")
        nic: NetworkInterface = platform.attachments["nic"]
        self.platform = platform
        self.sd = sd
        self.name = name
        self.tag_aware = tag_aware
        #: "trailer": the paper's workaround (tag appended behind the
        #: payload); "native": the advocated standard extension (tag as a
        #: first-class protocol-v2 field).  Receivers accept both.
        self.tag_transport = tag_transport
        self.socket: Socket = nic.bind()
        self.socket.on_receive = self._on_frame
        self.client_id = SomeIpEndpoint._next_client_id
        SomeIpEndpoint._next_client_id += 1
        self._session = 0
        self._pending: dict[int, _PendingRequest] = {}
        self._services: dict[int, _ServiceRegistration] = {}
        self._event_handlers: dict[
            tuple[int, int], Callable[[bytes, Tag | None], None]
        ] = {}
        #: Figure 3's side channels between transactors and this binding.
        self.tx_bypass = TimestampBypass(f"{name}.tx")
        self.rx_bypass = TimestampBypass(f"{name}.rx")
        self.malformed_count = 0

    # -- addressing -----------------------------------------------------------

    @property
    def host(self) -> str:
        """The host this endpoint lives on."""
        return self.socket.host

    @property
    def port(self) -> int:
        """The endpoint's RPC port."""
        return self.socket.port

    # -- server API -------------------------------------------------------------

    def provide_service(
        self,
        service_id: int,
        instance_id: int,
        major_version: int,
        handler: Callable[[IncomingRequest], None],
    ) -> None:
        """Register a request handler and offer the service via SD."""
        if service_id in self._services:
            raise SomeIpError(
                f"endpoint {self.name!r} already provides service 0x{service_id:04x}"
            )
        self._services[service_id] = _ServiceRegistration(
            instance_id, major_version, handler
        )
        self.sd.offer(service_id, instance_id, major_version, self.port)

    def withdraw_service(self, service_id: int) -> None:
        """Stop offering a service."""
        registration = self._services.pop(service_id, None)
        if registration is not None:
            self.sd.stop_offer(service_id, registration.instance_id)

    def send_event(
        self,
        service_id: int,
        instance_id: int,
        event_id: int,
        payload: bytes,
        tag: Tag | None = None,
    ) -> int:
        """Send a NOTIFICATION to all live subscribers; returns the count."""
        if not event_id & EVENT_ID_FLAG:
            raise SomeIpError(f"event id 0x{event_id:04x} must have the MSB set")
        registration = self._services.get(service_id)
        major = registration.major_version if registration else 1
        subscribers = self.sd.subscribers(service_id, instance_id, event_id)
        header = SomeIpHeader(
            service_id=service_id,
            method_id=event_id,
            client_id=0,
            session_id=self._next_session(),
            interface_version=major,
            message_type=MessageType.NOTIFICATION,
        )
        for host, port in subscribers:
            self._transmit(host, port, header, payload, tag)
        return len(subscribers)

    # -- client API ---------------------------------------------------------------

    def send_request(
        self,
        entry: ServiceEntry,
        method_id: int,
        payload: bytes,
        completion: Callable[[ReturnCode, bytes, Tag | None], None],
        tag: Tag | None = None,
        fire_and_forget: bool = False,
        timeout_ns: int | None = None,
    ) -> None:
        """Invoke a method on a remote service instance.

        *completion* is called in kernel context with the return code,
        response payload and tag (if any).  For fire-and-forget methods
        the completion is invoked immediately with an empty payload.
        """
        session = self._next_session()
        message_type = (
            MessageType.REQUEST_NO_RETURN if fire_and_forget else MessageType.REQUEST
        )
        header = SomeIpHeader(
            service_id=entry.service_id,
            method_id=method_id,
            client_id=self.client_id,
            session_id=session,
            interface_version=entry.major_version,
            message_type=message_type,
        )
        if not fire_and_forget:
            pending = _PendingRequest(completion)
            if timeout_ns is not None:
                pending.timeout_handle = self.platform.sim.after(
                    timeout_ns, lambda: self._on_timeout(session)
                )
            self._pending[session] = pending
        self._transmit(entry.host, entry.port, header, payload, tag)
        if fire_and_forget:
            completion(ReturnCode.E_OK, b"", None)

    def subscribe_event(
        self,
        entry: ServiceEntry,
        event_id: int,
        handler: Callable[[bytes, Tag | None], None],
    ) -> None:
        """Subscribe to an event; *handler* runs in kernel context."""
        if not event_id & EVENT_ID_FLAG:
            raise SomeIpError(f"event id 0x{event_id:04x} must have the MSB set")
        self._event_handlers[(entry.service_id, event_id)] = handler
        self.sd.subscribe(entry, event_id, self.socket.port)

    # -- transmit / receive ------------------------------------------------------------

    def _next_session(self) -> int:
        self._session = self._session % 0xFFFF + 1
        return self._session

    def _transmit(
        self,
        host: str,
        port: int,
        header: SomeIpHeader,
        payload: bytes,
        tag: Tag | None,
    ) -> None:
        """Serialize and send; the paper's modified binding lives here.

        A tag-aware endpoint first consults the explicit *tag* argument
        (used by internal replies) and otherwise collects from the TX
        bypass, then appends the tag trailer to the payload.
        """
        if self.tag_aware and tag is None:
            tag = self.tx_bypass.collect()
        native_tag = None
        if tag is not None:
            if self.tag_transport == "native":
                native_tag = tag
            else:
                payload = attach_tag(payload, tag)
        data = SomeIpMessage(header, payload, native_tag).pack()
        o = obs_context.ACTIVE
        if o.enabled:
            o.metrics.counter("someip.tx_messages").inc()
            if tag is not None:
                o.metrics.counter("someip.tx_tagged").inc()
        self.socket.send(host, port, data, len(data))

    def _on_frame(self, frame: Frame) -> None:
        o = obs_context.ACTIVE
        try:
            message = SomeIpMessage.unpack(frame.payload)
        except Exception:
            self.malformed_count += 1
            if o.enabled:
                o.metrics.counter("someip.malformed").inc()
                o.bus.instant(
                    TRACK_NETWORK,
                    f"malformed {self.name}",
                    self.platform.sim.now,
                    o.wall_ns(),
                )
                attribute_drop(
                    o, LAYER_SOMEIP, CAUSE_MALFORMED, self.platform.sim.now
                )
            return
        if o.enabled:
            o.metrics.counter("someip.rx_messages").inc()
            flows = o.flows
            if flows is not None and flows.current is not None:
                flows.hop(
                    flows.current,
                    LAYER_SOMEIP,
                    f"rx {self.name}",
                    self.platform.sim.now,
                )
        payload, tag = extract_tag(message.payload)
        if message.native_tag is not None:
            tag = message.native_tag
        if self.tag_aware and tag is not None:
            # Figure 3 steps (7)/(18): the binding deposits the received
            # tag into the bypass before invoking the upper layer, which
            # collects it synchronously.
            self.rx_bypass.deposit(tag)
        header = message.header
        if header.message_type in (MessageType.REQUEST, MessageType.REQUEST_NO_RETURN):
            self._dispatch_request(header, payload, tag, frame)
        elif header.message_type in (MessageType.RESPONSE, MessageType.ERROR):
            self._dispatch_response(header, payload, tag)
        elif header.message_type is MessageType.NOTIFICATION:
            self._dispatch_notification(header, payload, tag)

    def _dispatch_request(
        self, header: SomeIpHeader, payload: bytes, tag: Tag | None, frame: Frame
    ) -> None:
        request = IncomingRequest(
            endpoint=self,
            header=header,
            payload=payload,
            tag=tag,
            src_host=frame.src_host,
            src_port=frame.src_port,
        )
        registration = self._services.get(header.service_id)
        if registration is None:
            request.reply_error(ReturnCode.E_UNKNOWN_SERVICE)
            return
        if header.interface_version != registration.major_version:
            request.reply_error(ReturnCode.E_WRONG_INTERFACE_VERSION)
            return
        registration.handler(request)

    def _dispatch_response(
        self, header: SomeIpHeader, payload: bytes, tag: Tag | None
    ) -> None:
        if header.client_id != self.client_id:
            return
        pending = self._pending.pop(header.session_id, None)
        if pending is None:
            return
        if pending.timeout_handle is not None:
            pending.timeout_handle.cancel()
        pending.completion(header.return_code, payload, tag)

    def _dispatch_notification(
        self, header: SomeIpHeader, payload: bytes, tag: Tag | None
    ) -> None:
        handler = self._event_handlers.get((header.service_id, header.method_id))
        if handler is not None:
            handler(payload, tag)

    def _on_timeout(self, session: int) -> None:
        pending = self._pending.pop(session, None)
        if pending is not None:
            pending.completion(ReturnCode.E_TIMEOUT, b"", None)

    def __repr__(self) -> str:
        return f"SomeIpEndpoint({self.name!r} @ {self.host}:{self.port})"
