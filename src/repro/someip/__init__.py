"""A SOME/IP middleware over the simulated network.

Implements the protocol pieces the paper's system relies on:

* :mod:`repro.someip.wire` — the 16-byte SOME/IP header, message types
  and return codes, packed to real bytes;
* :mod:`repro.someip.serialization` — a typed payload serializer
  (integers, floats, strings, arrays, structs) standing in for the
  generated SOME/IP serializers;
* :mod:`repro.someip.sd` — service discovery: cyclic offers, find
  requests, event-group subscriptions with TTL;
* :mod:`repro.someip.runtime` — the per-process endpoint daemon routing
  requests, responses and notifications;
* :mod:`repro.someip.tagging` — the paper's extension: optional tag
  trailers on messages plus the *timestamp bypass* used by DEAR
  transactors (Section III.B).
"""

from repro.someip.wire import (
    MessageType,
    ReturnCode,
    SomeIpHeader,
    SomeIpMessage,
)
from repro.someip.serialization import (
    Array,
    BOOL,
    BYTES,
    FLOAT32,
    FLOAT64,
    INT8,
    INT16,
    INT32,
    INT64,
    STRING,
    Struct,
    TypeSpec,
    UINT8,
    UINT16,
    UINT32,
    UINT64,
)
from repro.someip.sd import SdConfig, SdDaemon
from repro.someip.runtime import SomeIpEndpoint
from repro.someip.tagging import TimestampBypass, attach_tag, extract_tag

__all__ = [
    "SomeIpHeader",
    "SomeIpMessage",
    "MessageType",
    "ReturnCode",
    "TypeSpec",
    "Struct",
    "Array",
    "BOOL",
    "BYTES",
    "STRING",
    "FLOAT32",
    "FLOAT64",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "UINT8",
    "UINT16",
    "UINT32",
    "UINT64",
    "SdDaemon",
    "SdConfig",
    "SomeIpEndpoint",
    "TimestampBypass",
    "attach_tag",
    "extract_tag",
]
