"""SOME/IP service discovery (SOME/IP-SD).

Implements the discovery workflow AP relies on for its *dynamic binding
of services* (the core adaptivity mechanism the paper describes in
Section II.A):

* servers **offer** service instances; offers are unicast to every host
  on the switch (standing in for the SD multicast group), repeated
  cyclically, and carry a TTL;
* clients **find** services, answered from cache or by querying peers;
* clients **subscribe** to event groups; servers ack and remember the
  subscriber's endpoint for notifications.

SD messages are genuine SOME/IP messages (service id ``0xFFFF``, method
``0x8100``) whose payload is serialized with the entry schema below.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.network.stack import NetworkInterface, Socket
from repro.network.switch import Frame
from repro.obs import context as obs_context
from repro.sim.platform import Platform
from repro.sim.process import Sleep
from repro.someip.serialization import Array, STRING, Struct, UINT8, UINT16, UINT32
from repro.someip.wire import MessageType, SomeIpHeader, SomeIpMessage
from repro.time.duration import MS, SEC

#: SOME/IP-SD well-known service id and method id.
SD_SERVICE_ID = 0xFFFF
SD_METHOD_ID = 0x8100

#: SD entry types (subset).
ENTRY_FIND = 0x00
ENTRY_OFFER = 0x01
ENTRY_SUBSCRIBE = 0x06
ENTRY_SUBSCRIBE_ACK = 0x07

_ENTRY_SPEC = Struct(
    [
        ("type", UINT8),
        ("service_id", UINT16),
        ("instance_id", UINT16),
        ("major_version", UINT8),
        ("ttl_ms", UINT32),
        ("eventgroup_id", UINT16),
        ("host", STRING),
        ("port", UINT16),
    ],
    name="sd_entry",
)

_SD_PAYLOAD_SPEC = Struct([("entries", Array(_ENTRY_SPEC))], name="sd_payload")


@dataclass(frozen=True, slots=True)
class SdConfig:
    """Timing parameters of the SD daemon."""

    port: int = 30490
    cyclic_offer_period_ns: int = 1 * SEC
    ttl_ns: int = 3 * SEC
    #: Delay before the first offer burst after startup.
    initial_delay_ns: int = 10 * MS
    #: FIND retransmission under loss: first retry after this backoff...
    find_retry_backoff_ns: int = 500 * MS
    #: ...then multiplied by this factor per attempt (exponential backoff).
    find_retry_factor: int = 2
    #: Maximum FIND retransmissions within one ``find_blocking`` call.
    find_max_retries: int = 3


@dataclass(frozen=True, slots=True)
class ServiceEntry:
    """A discovered (or locally offered) service instance."""

    service_id: int
    instance_id: int
    major_version: int
    host: str
    port: int


class SdDaemon:
    """One service-discovery daemon per platform."""

    def __init__(
        self,
        platform: Platform,
        nic: NetworkInterface,
        config: SdConfig | None = None,
    ) -> None:
        self.platform = platform
        self.config = config or SdConfig()
        self._nic = nic
        self._switch = nic._switch
        self._socket: Socket = nic.bind(self.config.port)
        self._socket.on_receive = self._on_frame
        #: Locally offered instances: key -> ServiceEntry.
        self._offered: dict[tuple[int, int], ServiceEntry] = {}
        #: Remote cache: key -> (entry, expiry_global_ns).
        self._cache: dict[tuple[int, int], tuple[ServiceEntry, int]] = {}
        #: Event subscribers per (service, instance, eventgroup).
        self._subscribers: dict[tuple[int, int, int], dict[tuple[str, int], int]] = {}
        #: Subscriptions we hold as a client (for renewal).
        self._our_subscriptions: list[tuple[ServiceEntry, int, int]] = []
        #: Condvar-like wakeups for threads blocked in find_blocking.
        self._find_mutex = platform.mutex("sd.find")
        self._find_cv = platform.condvar("sd.find")
        self._session = 0
        #: FIND retransmissions sent by ``find_blocking`` (loss recovery).
        self.find_retries = 0
        platform.attachments["sd"] = self
        platform.spawn("sd.cyclic", self._cyclic_loop(), self.config.initial_delay_ns)

    # -- server side --------------------------------------------------------

    def offer(
        self, service_id: int, instance_id: int, major_version: int, rpc_port: int
    ) -> ServiceEntry:
        """Start offering a service instance reachable at *rpc_port*."""
        entry = ServiceEntry(
            service_id, instance_id, major_version, self._nic.host, rpc_port
        )
        self._offered[(service_id, instance_id)] = entry
        self._broadcast_offers([entry])
        return entry

    def stop_offer(self, service_id: int, instance_id: int) -> None:
        """Withdraw an offer (broadcast with TTL 0).

        Also forgets the instance's event subscribers: a withdrawn
        service must not keep notifying stale endpoints, and a later
        re-offer starts from a clean subscriber table.
        """
        entry = self._offered.pop((service_id, instance_id), None)
        if entry is not None:
            self._broadcast_offers([entry], ttl_ms=0)
        for key in [
            k
            for k in self._subscribers
            if k[0] == service_id and k[1] == instance_id
        ]:
            del self._subscribers[key]

    def subscribers(
        self, service_id: int, instance_id: int, eventgroup_id: int
    ) -> list[tuple[str, int]]:
        """Current live subscribers of an event group."""
        now = self.platform.sim.now
        table = self._subscribers.get((service_id, instance_id, eventgroup_id), {})
        live = [ep for ep, expiry in table.items() if expiry > now]
        for endpoint in list(table):
            if table[endpoint] <= now:
                del table[endpoint]
        return sorted(live)

    # -- client side ---------------------------------------------------------

    def find(self, service_id: int, instance_id: int) -> ServiceEntry | None:
        """Non-blocking lookup: local offers first, then the remote cache."""
        local = self._offered.get((service_id, instance_id))
        if local is not None:
            return local
        cached = self._cache.get((service_id, instance_id))
        if cached is None:
            return None
        entry, expiry = cached
        if expiry <= self.platform.sim.now:
            del self._cache[(service_id, instance_id)]
            return None
        return entry

    def cached(self, service_id: int, instance_id: int) -> ServiceEntry | None:
        """Remote-cache-only lookup, ignoring this daemon's own offers.

        A standby publisher uses this to watch whether *somebody else*
        still offers the service: its own (prospective) offer must not
        mask the primary's disappearance, so :meth:`find` — which checks
        local offers first — is the wrong probe for failover logic.
        """
        cached = self._cache.get((service_id, instance_id))
        if cached is None:
            return None
        entry, expiry = cached
        if expiry <= self.platform.sim.now:
            del self._cache[(service_id, instance_id)]
            return None
        return entry

    def offering(self, service_id: int, instance_id: int) -> bool:
        """Whether this daemon currently offers the service itself."""
        return (service_id, instance_id) in self._offered

    def find_blocking(self, service_id: int, instance_id: int, timeout_ns: int):
        """Generator (thread context): resolve a service, querying peers.

        Sends FIND to all peers and blocks until an offer arrives or the
        timeout passes.  Returns the :class:`ServiceEntry` or ``None``.

        FIND messages are datagrams and can be lost; within the overall
        timeout the daemon retransmits with exponential backoff
        (``find_retry_backoff_ns`` × ``find_retry_factor`` per attempt,
        at most ``find_max_retries`` times) — the graceful-degradation
        path that keeps discovery alive under injected frame loss.  With
        the default 500 ms first backoff, a lossless discovery never
        retransmits.
        """
        from repro.sim.process import Acquire, Release, WaitUntil

        deadline = self.platform.local_now() + timeout_ns
        entry = self.find(service_id, instance_id)
        if entry is not None:
            return entry
        self._send_find(service_id, instance_id)
        backoff = self.config.find_retry_backoff_ns
        retries = 0
        next_find = self.platform.local_now() + backoff
        yield Acquire(self._find_mutex)
        while True:
            entry = self.find(service_id, instance_id)
            if entry is not None:
                yield Release(self._find_mutex)
                return entry
            now = self.platform.local_now()
            if now >= deadline:
                yield Release(self._find_mutex)
                return None
            if now >= next_find and retries < self.config.find_max_retries:
                retries += 1
                self.find_retries += 1
                backoff *= self.config.find_retry_factor
                next_find = now + backoff
                self._send_find(service_id, instance_id)
                o = obs_context.ACTIVE
                if o.enabled:
                    o.metrics.counter("sd.find_retries").inc()
            if retries >= self.config.find_max_retries:
                wait_deadline = deadline
            else:
                wait_deadline = min(deadline, next_find)
            # Loop re-checks cache and clocks whether notified or timed out.
            yield WaitUntil(self._find_cv, self._find_mutex, wait_deadline)

    def subscribe(
        self,
        entry: ServiceEntry,
        eventgroup_id: int,
        notify_port: int,
    ) -> None:
        """Subscribe *notify_port* on this host to an event group.

        Fire-and-forget (the ack updates server-side state); renewal is
        handled by the cyclic loop for as long as the process lives.
        """
        self._our_subscriptions.append((entry, eventgroup_id, notify_port))
        self._send_subscribe(entry, eventgroup_id, notify_port)

    # -- internals ---------------------------------------------------------------

    def _peers(self) -> list[str]:
        return [host for host in self._switch.hosts() if host != self._nic.host]

    def _next_session(self) -> int:
        self._session = self._session % 0xFFFF + 1
        return self._session

    def _send_entries(self, host: str, entries: list[dict]) -> None:
        payload = _SD_PAYLOAD_SPEC.to_bytes({"entries": entries})
        header = SomeIpHeader(
            service_id=SD_SERVICE_ID,
            method_id=SD_METHOD_ID,
            client_id=0,
            session_id=self._next_session(),
            message_type=MessageType.NOTIFICATION,
        )
        data = SomeIpMessage(header, payload).pack()
        self._socket.send(host, self.config.port, data, len(data))

    def _offer_dict(self, entry: ServiceEntry, ttl_ms: int) -> dict:
        return {
            "type": ENTRY_OFFER,
            "service_id": entry.service_id,
            "instance_id": entry.instance_id,
            "major_version": entry.major_version,
            "ttl_ms": ttl_ms,
            "eventgroup_id": 0,
            "host": entry.host,
            "port": entry.port,
        }

    def _broadcast_offers(self, entries: list[ServiceEntry], ttl_ms: int | None = None):
        if ttl_ms is None:
            ttl_ms = self.config.ttl_ns // MS
        dicts = [self._offer_dict(entry, ttl_ms) for entry in entries]
        if not dicts:
            return
        for host in self._peers():
            self._send_entries(host, dicts)

    def _send_find(self, service_id: int, instance_id: int) -> None:
        entry = {
            "type": ENTRY_FIND,
            "service_id": service_id,
            "instance_id": instance_id,
            "major_version": 0,
            "ttl_ms": 0,
            "eventgroup_id": 0,
            "host": self._nic.host,
            "port": self.config.port,
        }
        for host in self._peers():
            self._send_entries(host, [entry])

    def _send_subscribe(
        self, entry: ServiceEntry, eventgroup_id: int, notify_port: int
    ) -> None:
        subscribe = {
            "type": ENTRY_SUBSCRIBE,
            "service_id": entry.service_id,
            "instance_id": entry.instance_id,
            "major_version": entry.major_version,
            "ttl_ms": self.config.ttl_ns // MS,
            "eventgroup_id": eventgroup_id,
            "host": self._nic.host,
            "port": notify_port,
        }
        self._send_entries(entry.host, [subscribe])

    def _cyclic_loop(self):
        while True:
            self._broadcast_offers(list(self._offered.values()))
            for entry, eventgroup_id, notify_port in self._our_subscriptions:
                self._send_subscribe(entry, eventgroup_id, notify_port)
            self._purge_expired()
            yield Sleep(self.config.cyclic_offer_period_ns)

    def _purge_expired(self) -> None:
        now = self.platform.sim.now
        expired = [key for key, (_e, expiry) in self._cache.items() if expiry <= now]
        for key in expired:
            del self._cache[key]

    # -- receive path (kernel context) ----------------------------------------------

    def _on_frame(self, frame: Frame) -> None:
        message = SomeIpMessage.unpack(frame.payload)
        if message.header.service_id != SD_SERVICE_ID:
            return
        payload = _SD_PAYLOAD_SPEC.from_bytes(message.payload)
        for entry in payload["entries"]:
            self._handle_entry(entry)

    def _handle_entry(self, entry: dict) -> None:
        entry_type = entry["type"]
        if entry_type == ENTRY_OFFER:
            self._handle_offer(entry)
        elif entry_type == ENTRY_FIND:
            self._handle_find(entry)
        elif entry_type == ENTRY_SUBSCRIBE:
            self._handle_subscribe(entry)
        elif entry_type == ENTRY_SUBSCRIBE_ACK:
            pass  # client-side state is kept optimistically
        # Unknown entry types are ignored, as the spec requires.

    def _handle_offer(self, entry: dict) -> None:
        key = (entry["service_id"], entry["instance_id"])
        if entry["ttl_ms"] == 0:
            self._cache.pop(key, None)
            return
        service = ServiceEntry(
            entry["service_id"],
            entry["instance_id"],
            entry["major_version"],
            entry["host"],
            entry["port"],
        )
        expiry = self.platform.sim.now + entry["ttl_ms"] * MS
        self._cache[key] = (service, expiry)
        self.platform.scheduler.external_notify_all(self._find_cv)

    def _handle_find(self, entry: dict) -> None:
        key = (entry["service_id"], entry["instance_id"])
        offered = self._offered.get(key)
        if offered is not None:
            ttl_ms = self.config.ttl_ns // MS
            self._send_entries(entry["host"], [self._offer_dict(offered, ttl_ms)])

    def _handle_subscribe(self, entry: dict) -> None:
        key = (entry["service_id"], entry["instance_id"], entry["eventgroup_id"])
        if (entry["service_id"], entry["instance_id"]) not in self._offered:
            return
        table = self._subscribers.setdefault(key, {})
        expiry = self.platform.sim.now + entry["ttl_ms"] * MS
        table[(entry["host"], entry["port"])] = expiry
        ack = dict(entry, type=ENTRY_SUBSCRIBE_ACK)
        self._send_entries(entry["host"], [ack])

    def __repr__(self) -> str:
        return (
            f"SdDaemon({self._nic.host!r}, offered={len(self._offered)}, "
            f"cached={len(self._cache)})"
        )
