"""Typed payload serialization.

SOME/IP payloads are serialized per the interface description; real AP
toolchains generate serializers from ARXML.  This module provides the
same capability as composable :class:`TypeSpec` objects: fixed-width
integers and floats, booleans, length-prefixed strings and byte blobs,
homogeneous arrays and nested structs.  All multi-byte values are
big-endian, matching SOME/IP's network byte order default.
"""

from __future__ import annotations

import struct
from typing import Any, Sequence

from repro.errors import SerializationError


class TypeSpec:
    """Base class for payload type descriptions."""

    name = "abstract"

    def serialize(self, value: Any, out: bytearray) -> None:
        """Append the wire form of *value* to *out*."""
        raise NotImplementedError

    def deserialize(self, data: memoryview, offset: int) -> tuple[Any, int]:
        """Parse one value at *offset*; return ``(value, next_offset)``."""
        raise NotImplementedError

    def to_bytes(self, value: Any) -> bytes:
        """Convenience: serialize a single value to bytes."""
        out = bytearray()
        self.serialize(value, out)
        return bytes(out)

    def from_bytes(self, data: bytes) -> Any:
        """Convenience: deserialize a payload that holds exactly one value."""
        value, offset = self.deserialize(memoryview(data), 0)
        if offset != len(data):
            raise SerializationError(
                f"{len(data) - offset} trailing bytes after {self.name}"
            )
        return value

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class _Scalar(TypeSpec):
    """Fixed-width scalar packed with :mod:`struct`."""

    def __init__(
        self,
        name: str,
        fmt: str,
        lo: int | float | None = None,
        hi: int | float | None = None,
    ) -> None:
        self.name = name
        self.lo = lo
        self.hi = hi
        self._struct = struct.Struct(">" + fmt)

    def serialize(self, value: Any, out: bytearray) -> None:
        if self.lo is not None and not (self.lo <= value <= self.hi):
            raise SerializationError(
                f"{value!r} out of range for {self.name} [{self.lo}, {self.hi}]"
            )
        try:
            out += self._struct.pack(value)
        except struct.error as exc:
            raise SerializationError(f"cannot pack {value!r} as {self.name}") from exc

    def deserialize(self, data: memoryview, offset: int) -> tuple[Any, int]:
        end = offset + self._struct.size
        if end > len(data):
            raise SerializationError(f"truncated {self.name} at offset {offset}")
        (value,) = self._struct.unpack_from(data, offset)
        return value, end


UINT8 = _Scalar("uint8", "B", 0, 2**8 - 1)
UINT16 = _Scalar("uint16", "H", 0, 2**16 - 1)
UINT32 = _Scalar("uint32", "I", 0, 2**32 - 1)
UINT64 = _Scalar("uint64", "Q", 0, 2**64 - 1)
INT8 = _Scalar("int8", "b", -(2**7), 2**7 - 1)
INT16 = _Scalar("int16", "h", -(2**15), 2**15 - 1)
INT32 = _Scalar("int32", "i", -(2**31), 2**31 - 1)
INT64 = _Scalar("int64", "q", -(2**63), 2**63 - 1)
FLOAT32 = _Scalar("float32", "f")
FLOAT64 = _Scalar("float64", "d")


class _Bool(TypeSpec):
    """A boolean as one byte (0 or 1)."""

    name = "bool"

    def serialize(self, value: Any, out: bytearray) -> None:
        out.append(1 if value else 0)

    def deserialize(self, data: memoryview, offset: int) -> tuple[Any, int]:
        if offset >= len(data):
            raise SerializationError("truncated bool")
        byte = data[offset]
        if byte not in (0, 1):
            raise SerializationError(f"invalid bool byte 0x{byte:02x}")
        return bool(byte), offset + 1


BOOL = _Bool()


class _Bytes(TypeSpec):
    """A byte blob with a uint32 length prefix."""

    name = "bytes"

    def serialize(self, value: Any, out: bytearray) -> None:
        if not isinstance(value, (bytes, bytearray, memoryview)):
            raise SerializationError(f"expected bytes, got {type(value).__name__}")
        UINT32.serialize(len(value), out)
        out += bytes(value)

    def deserialize(self, data: memoryview, offset: int) -> tuple[Any, int]:
        length, offset = UINT32.deserialize(data, offset)
        end = offset + length
        if end > len(data):
            raise SerializationError("truncated bytes payload")
        return bytes(data[offset:end]), end


BYTES = _Bytes()


class _String(TypeSpec):
    """A UTF-8 string with a uint32 length prefix."""

    name = "string"

    def serialize(self, value: Any, out: bytearray) -> None:
        if not isinstance(value, str):
            raise SerializationError(f"expected str, got {type(value).__name__}")
        BYTES.serialize(value.encode("utf-8"), out)

    def deserialize(self, data: memoryview, offset: int) -> tuple[Any, int]:
        raw, offset = BYTES.deserialize(data, offset)
        try:
            return raw.decode("utf-8"), offset
        except UnicodeDecodeError as exc:
            raise SerializationError("invalid UTF-8 in string") from exc


STRING = _String()


class Array(TypeSpec):
    """A homogeneous dynamic array with a uint32 element count."""

    def __init__(self, element: TypeSpec) -> None:
        self.element = element
        self.name = f"array<{element.name}>"

    def serialize(self, value: Any, out: bytearray) -> None:
        if not isinstance(value, (list, tuple)):
            raise SerializationError(f"expected sequence, got {type(value).__name__}")
        UINT32.serialize(len(value), out)
        for item in value:
            self.element.serialize(item, out)

    def deserialize(self, data: memoryview, offset: int) -> tuple[Any, int]:
        count, offset = UINT32.deserialize(data, offset)
        items = []
        for _ in range(count):
            item, offset = self.element.deserialize(data, offset)
            items.append(item)
        return items, offset


class Struct(TypeSpec):
    """An ordered set of named fields, (de)serialized as a dict."""

    def __init__(self, fields: Sequence[tuple[str, TypeSpec]], name: str = "struct"):
        seen = set()
        for field_name, _spec in fields:
            if field_name in seen:
                raise ValueError(f"duplicate struct field {field_name!r}")
            seen.add(field_name)
        self.fields = list(fields)
        self.name = name

    def serialize(self, value: Any, out: bytearray) -> None:
        if not isinstance(value, dict):
            raise SerializationError(f"expected dict for {self.name}")
        extra = set(value) - {name for name, _ in self.fields}
        if extra:
            raise SerializationError(f"unknown fields {sorted(extra)} for {self.name}")
        for field_name, spec in self.fields:
            if field_name not in value:
                raise SerializationError(
                    f"missing field {field_name!r} for {self.name}"
                )
            spec.serialize(value[field_name], out)

    def deserialize(self, data: memoryview, offset: int) -> tuple[Any, int]:
        result = {}
        for field_name, spec in self.fields:
            result[field_name], offset = spec.deserialize(data, offset)
        return result, offset


#: An empty payload (zero-field struct), for methods without arguments.
VOID = Struct([], name="void")
