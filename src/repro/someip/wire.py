"""SOME/IP wire format.

Follows the AUTOSAR "SOME/IP Protocol Specification" (FO R1.5.0) message
layout used by the paper's middleware::

    Message ID (Service ID 16 | Method ID 16)          4 bytes
    Length (covers everything after this field)        4 bytes
    Request ID (Client ID 16 | Session ID 16)          4 bytes
    Protocol Version 8 | Interface Version 8
      | Message Type 8 | Return Code 8                 4 bytes
    Payload                                            variable

Messages are really packed to bytes and parsed back; the simulated
network carries the byte blobs, so the tagged-message extension
(:mod:`repro.someip.tagging`) has an honest wire representation to
extend, as in the paper.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.errors import MalformedMessageError
from repro.time.tag import Tag

#: SOME/IP protocol version carried in every message.
PROTOCOL_VERSION = 0x01
#: The standard extension the paper advocates (Section VI): a protocol
#: revision that carries reactor tags natively, "obviating the need for
#: the workarounds" (tag trailer + timestamp bypass).  A version-2
#: message has a 12-byte tag field between header and payload.
PROTOCOL_VERSION_TAGGED = 0x02

_HEADER = struct.Struct(">HHIHHBBBB")
_NATIVE_TAG = struct.Struct(">qI")
#: Bytes of the header before the payload.
HEADER_SIZE = _HEADER.size
#: Size of the native tag field in version-2 messages.
NATIVE_TAG_SIZE = _NATIVE_TAG.size
#: Bytes covered by the Length field that are not payload.
LENGTH_OVERHEAD = 8


class MessageType(enum.IntEnum):
    """SOME/IP message types (subset used by AP communication)."""

    REQUEST = 0x00
    REQUEST_NO_RETURN = 0x01
    NOTIFICATION = 0x02
    RESPONSE = 0x80
    ERROR = 0x81


class ReturnCode(enum.IntEnum):
    """SOME/IP return codes."""

    E_OK = 0x00
    E_NOT_OK = 0x01
    E_UNKNOWN_SERVICE = 0x02
    E_UNKNOWN_METHOD = 0x03
    E_NOT_READY = 0x04
    E_NOT_REACHABLE = 0x05
    E_TIMEOUT = 0x06
    E_WRONG_PROTOCOL_VERSION = 0x07
    E_WRONG_INTERFACE_VERSION = 0x08
    E_MALFORMED_MESSAGE = 0x09
    E_WRONG_MESSAGE_TYPE = 0x0A


@dataclass(frozen=True, slots=True)
class SomeIpHeader:
    """The fixed 16-byte SOME/IP header."""

    service_id: int
    method_id: int
    client_id: int
    session_id: int
    interface_version: int = 1
    message_type: MessageType = MessageType.REQUEST
    return_code: ReturnCode = ReturnCode.E_OK
    protocol_version: int = PROTOCOL_VERSION

    def pack(self, payload_length: int) -> bytes:
        """Pack the header; *payload_length* sizes the Length field."""
        return _HEADER.pack(
            self.service_id,
            self.method_id,
            payload_length + LENGTH_OVERHEAD,
            self.client_id,
            self.session_id,
            self.protocol_version,
            self.interface_version,
            int(self.message_type),
            int(self.return_code),
        )

    @property
    def message_id(self) -> int:
        """The 32-bit Message ID (service << 16 | method)."""
        return (self.service_id << 16) | self.method_id

    @property
    def request_id(self) -> int:
        """The 32-bit Request ID (client << 16 | session)."""
        return (self.client_id << 16) | self.session_id


@dataclass(frozen=True, slots=True)
class SomeIpMessage:
    """A parsed SOME/IP message: header, payload bytes, optional tag.

    A non-``None`` *native_tag* selects the version-2 wire format with
    the tag carried as a first-class field (the paper's proposed
    standard extension); otherwise the message is a plain version-1
    message (whose payload may still end in a DEAR tag trailer — the
    workaround encoding).
    """

    header: SomeIpHeader
    payload: bytes
    native_tag: Tag | None = None

    def pack(self) -> bytes:
        """Serialize to wire bytes."""
        if self.native_tag is None:
            return self.header.pack(len(self.payload)) + self.payload
        versioned = SomeIpHeader(
            service_id=self.header.service_id,
            method_id=self.header.method_id,
            client_id=self.header.client_id,
            session_id=self.header.session_id,
            interface_version=self.header.interface_version,
            message_type=self.header.message_type,
            return_code=self.header.return_code,
            protocol_version=PROTOCOL_VERSION_TAGGED,
        )
        tag_field = _NATIVE_TAG.pack(self.native_tag.time, self.native_tag.microstep)
        return (
            versioned.pack(len(self.payload) + NATIVE_TAG_SIZE)
            + tag_field
            + self.payload
        )

    @property
    def size_bytes(self) -> int:
        """On-wire size of the packed message."""
        extra = NATIVE_TAG_SIZE if self.native_tag is not None else 0
        return HEADER_SIZE + extra + len(self.payload)

    @staticmethod
    def unpack(data: bytes) -> "SomeIpMessage":
        """Parse wire bytes back into a message.

        Raises :class:`MalformedMessageError` on truncation, a length
        mismatch or an unsupported protocol version — the checks a
        conforming endpoint performs before dispatching.
        """
        if len(data) < HEADER_SIZE:
            raise MalformedMessageError(
                f"message truncated: {len(data)} bytes < header size"
            )
        (
            service_id,
            method_id,
            length,
            client_id,
            session_id,
            protocol_version,
            interface_version,
            message_type_raw,
            return_code_raw,
        ) = _HEADER.unpack_from(data)
        expected = length - LENGTH_OVERHEAD
        payload = data[HEADER_SIZE:]
        if expected != len(payload):
            raise MalformedMessageError(
                f"length field says {expected} payload bytes, got {len(payload)}"
            )
        native_tag = None
        if protocol_version == PROTOCOL_VERSION_TAGGED:
            if len(payload) < NATIVE_TAG_SIZE:
                raise MalformedMessageError("version-2 message lacks its tag field")
            time, microstep = _NATIVE_TAG.unpack_from(payload)
            native_tag = Tag(time, microstep)
            payload = payload[NATIVE_TAG_SIZE:]
        elif protocol_version != PROTOCOL_VERSION:
            raise MalformedMessageError(
                f"unsupported protocol version 0x{protocol_version:02x}"
            )
        try:
            message_type = MessageType(message_type_raw)
        except ValueError as exc:
            raise MalformedMessageError(
                f"unknown message type 0x{message_type_raw:02x}"
            ) from exc
        try:
            return_code = ReturnCode(return_code_raw)
        except ValueError as exc:
            raise MalformedMessageError(
                f"unknown return code 0x{return_code_raw:02x}"
            ) from exc
        header = SomeIpHeader(
            service_id=service_id,
            method_id=method_id,
            client_id=client_id,
            session_id=session_id,
            interface_version=interface_version,
            message_type=message_type,
            return_code=return_code,
            protocol_version=protocol_version,
        )
        return SomeIpMessage(header, bytes(payload), native_tag)
