"""The paper's tagged-message extension and timestamp bypass.

AUTOSAR AP has no way to attach metadata like reactor tags to method
calls or events.  The paper therefore (a) modifies the SOME/IP binding to
optionally append a tag to outgoing messages and read it from incoming
ones, and (b) introduces a *timestamp bypass*: a side channel between a
transactor and the binding through which the tag travels around the
standard proxy/skeleton API (steps (2)/(5) and (7)/(10) etc. of the
paper's Figure 3).

The wire form is a 16-byte trailer after the regular payload::

    magic   8 bytes  b"DEARtag:"
    time    8 bytes  signed big-endian nanoseconds
    microstep 4 bytes unsigned big-endian        (total 20 bytes)

A tag-aware endpoint checks for the trailer; a stock endpoint simply
sees a slightly longer payload, which is why the extension "is not in
violation of the standard" — it behaves like a third-party middleware
layered over SOME/IP.
"""

from __future__ import annotations

import struct
from collections import deque

from repro.obs import context as obs_context
from repro.time.tag import Tag

#: Trailer magic; chosen so an accidental payload collision is negligible.
TAG_MAGIC = b"DEARtag:"

_TAG_TRAILER = struct.Struct(">8sqI")
#: Total size of the tag trailer in bytes.
TRAILER_SIZE = _TAG_TRAILER.size


def attach_tag(payload: bytes, tag: Tag) -> bytes:
    """Append a tag trailer to *payload*."""
    return payload + _TAG_TRAILER.pack(TAG_MAGIC, tag.time, tag.microstep)


def extract_tag(payload: bytes) -> tuple[bytes, Tag | None]:
    """Split *payload* into ``(original_payload, tag_or_None)``.

    Returns the payload unchanged when no valid trailer is present, so
    tag-aware endpoints interoperate with stock senders.
    """
    if len(payload) < TRAILER_SIZE:
        return payload, None
    magic, time, microstep = _TAG_TRAILER.unpack_from(
        payload, len(payload) - TRAILER_SIZE
    )
    if magic != TAG_MAGIC:
        return payload, None
    return payload[: -TRAILER_SIZE], Tag(time, microstep)


class TimestampBypass:
    """The side channel between transactors and the SOME/IP binding.

    The sender-side transactor :meth:`deposit`\\ s a tag immediately
    before invoking the regular proxy/skeleton call; the modified binding
    :meth:`collect`\\ s it while serializing that call.  On the receiving
    side the binding deposits the extracted tag before invoking the
    skeleton/proxy handler, which collects it.

    Deposits are queued FIFO because a burst of calls may be serialized
    back-to-back before the binding drains them.  An empty collect
    returns ``None`` (an untagged message).
    """

    def __init__(self, name: str = "bypass") -> None:
        self.name = name
        self._tags: deque[Tag] = deque()

    def deposit(self, tag: Tag) -> None:
        """Store *tag* for the next binding operation."""
        self._tags.append(tag)
        o = obs_context.ACTIVE
        if o.enabled:
            o.metrics.counter("someip.bypass_deposits").inc()

    def collect(self) -> Tag | None:
        """Retrieve the oldest deposited tag, or ``None`` if empty."""
        o = obs_context.ACTIVE
        if self._tags:
            if o.enabled:
                o.metrics.counter("someip.bypass_hits").inc()
            return self._tags.popleft()
        if o.enabled:
            o.metrics.counter("someip.bypass_misses").inc()
        return None

    def __len__(self) -> int:
        return len(self._tags)

    def __repr__(self) -> str:
        return f"TimestampBypass({self.name!r}, pending={len(self._tags)})"
