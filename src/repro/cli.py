"""Command-line interface: regenerate any paper artifact from a shell.

Usage::

    python -m repro fig5 --runs 20 --frames 2000
    python -m repro det --seeds 5 --frames 500
    python -m repro fig5 --workers 8          # parallel sweep
    python -m repro fig5 --force              # ignore cached results
    python -m repro all
    python -m repro explore --strategy pct --shrink --record trace.json
    python -m repro explore --replay trace.json
    python -m repro trace det --trace-out trace.json      # Perfetto timeline
    python -m repro metrics det --seeds 20 --metrics-out metrics.json
    python -m repro faults --drop 0.05 --partition 800:1200 --seeds 10
    python -m repro faults --plan plan.json --out report.json
    python -m repro det --spec spec.json      # any subcommand from a spec
    python -m repro serve --port 8765 --local-workers 2   # sweep service
    python -m repro submit --spec spec.json --wait        # run a campaign
    python -m repro worker --coordinator http://host:8765 # join the fleet

Every subcommand runs the corresponding experiment driver and prints
the text rendering of the paper figure/table it reproduces.  Sweeps run
in parallel on a process pool (``--workers``, ``REPRO_WORKERS``,
default: all cores) and cache per-seed results under ``.repro_cache/``
so repeated invocations only pay for what changed; a throughput summary
(seeds/s, cache hits) is printed to stderr after each run.
"""

from __future__ import annotations

import argparse
import sys
import time


def _add_int(parser: argparse.ArgumentParser, name: str, default: int, help_text: str):
    parser.add_argument(name, type=int, default=default, help=help_text)


def _add_app(parser: argparse.ArgumentParser) -> None:
    """``--app`` selector: any registered application, brake by default."""
    from repro import apps

    parser.add_argument(
        "--app", choices=apps.names(), default="brake",
        help="application to run (default: brake; see `repro library` "
             "for the multi-ECU scenario library)",
    )


def _app_scenario(app: str, frames: int | None, brake_default: int):
    """The app's default scenario with ``--frames`` applied.

    Brake keeps its historical per-subcommand frame default; library
    scenarios run at their own size unless ``--frames`` is given.
    """
    from dataclasses import replace

    from repro import apps

    scenario = apps.get(app).default_scenario()
    if app == "brake":
        return replace(
            scenario, n_frames=frames if frames is not None else brake_default
        )
    if frames is not None:
        scenario = replace(scenario, n_frames=frames)
    return scenario


def _sweep_options() -> argparse.ArgumentParser:
    """Options shared by every subcommand: parallelism and caching."""
    common = argparse.ArgumentParser(add_help=False)
    group = common.add_argument_group("sweep execution")
    group.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process-pool size for seed sweeps "
             "(default: REPRO_WORKERS or all cores; 1 = sequential)",
    )
    group.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the on-disk result cache",
    )
    group.add_argument(
        "--force", action="store_true",
        help="recompute every seed, overwriting cached results",
    )
    group.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache location (default: REPRO_CACHE_DIR or .repro_cache)",
    )
    group.add_argument(
        "--spec", default=None, metavar="FILE",
        help="load a scenario-spec/v1 JSON file (seeds, scenario, network, "
             "STP bounds, fault plan) and run the experiment from it",
    )
    obs_group = common.add_argument_group("observability")
    obs_group.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="also run one observed representative brake run and write "
             "its Perfetto/Chrome trace_event JSON to FILE",
    )
    obs_group.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write the observed run's (or the metrics sweep's) "
             "metrics JSON to FILE",
    )
    return common


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Achieving Determinism in Adaptive AUTOSAR' "
            "(DATE 2020): run any experiment and print its figure."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)
    common = _sweep_options()

    fig1 = commands.add_parser(
        "fig1", help="Figure 1: client/server histogram", parents=[common]
    )
    _add_int(fig1, "--seeds", 200, "number of stock-AP runs")

    commands.add_parser(
        "fig3", help="Figure 3: tagged message sequence", parents=[common]
    )

    fig5 = commands.add_parser(
        "fig5", help="Figure 5: error prevalence", parents=[common]
    )
    _add_int(fig5, "--runs", 20, "number of experiment instances")
    _add_int(fig5, "--frames", 2_000, "frames per run (paper: 100000)")

    det = commands.add_parser(
        "det", help="Section IV.B: deterministic variant", parents=[common]
    )
    _add_int(det, "--seeds", 5, "number of seeds")
    _add_int(det, "--frames", 500, "frames per run")

    tradeoff = commands.add_parser(
        "tradeoff", help="deadline vs. error/latency", parents=[common]
    )
    _add_int(tradeoff, "--frames", 300, "frames per point")

    ablation = commands.add_parser(
        "ablation", help="the three sources (II.B)", parents=[common]
    )
    _add_int(ablation, "--seeds", 25, "seeds per configuration")

    overhead = commands.add_parser(
        "overhead", help="cost of determinism", parents=[common]
    )
    _add_int(overhead, "--frames", 400, "frames per variant")

    let = commands.add_parser(
        "let", help="LET baseline comparison", parents=[common]
    )
    _add_int(let, "--frames", 300, "frames")

    commands.add_parser(
        "skew", help="EXT: clock-sync error sweep", parents=[common]
    )
    commands.add_parser(
        "scaling", help="EXT: pipeline-depth latency", parents=[common]
    )
    commands.add_parser(
        "native", help="EXT: native tag transport", parents=[common]
    )

    distributed = commands.add_parser(
        "distributed",
        help="EXT: brake assistant across two processing ECUs",
        parents=[common],
    )
    _add_int(distributed, "--frames", 200, "frames per configuration")

    explore = commands.add_parser(
        "explore",
        help="search scheduler interleavings for a failure "
             "(record/replay, shrink, verify determinism)",
        parents=[common],
    )
    _add_app(explore)
    explore.add_argument(
        "--strategy", choices=("random", "pct"), default="pct",
        help="random = uniform seed sweeping; pct = bounded preemption "
             "injection (default)",
    )
    _add_int(explore, "--budget", 40, "maximum executions to explore")
    _add_int(explore, "--frames", 50, "frames per execution")
    _add_int(explore, "--seed", 0, "base root seed")
    _add_int(explore, "--depth", 6, "PCT: preemption points per execution")
    explore.add_argument(
        "--max-preempt-ms", type=float, default=25.0, metavar="MS",
        help="PCT: delay injected at each preemption point (default: 25)",
    )
    explore.add_argument(
        "--shrink", action="store_true",
        help="delta-debug the failing schedule to a minimal preemption set",
    )
    explore.add_argument(
        "--record", metavar="FILE", default=None,
        help="write the failing run's full decision trace as JSON",
    )
    explore.add_argument(
        "--replay", metavar="FILE", default=None,
        help="replay a recorded decision trace instead of exploring; "
             "exit 0 iff the recorded error counters reproduce",
    )
    explore.add_argument(
        "--schedule-out", metavar="FILE", default=None,
        help="write the (shrunk) failing schedule as a JSON artifact",
    )
    _add_int(
        explore, "--verify", 0,
        "also verify DEAR determinism across N in-budget schedules",
    )
    explore.add_argument(
        "--snapshot", action=argparse.BooleanOptionalAction, default=True,
        help="fork executions from copy-on-write snapshots of shared "
             "schedule prefixes instead of replaying from t=0 "
             "(default: on; falls back to plain runs where os.fork is "
             "unavailable)",
    )

    faults = commands.add_parser(
        "faults",
        help="deterministic fault-injection sweep: run the DEAR and stock "
             "variants under a seeded fault plan and check that in-bound "
             "faults keep DEAR's logical traces bit-identical",
        parents=[common],
    )
    _add_app(faults)
    faults.add_argument(
        "--plan", metavar="FILE", default=None,
        help="load a fault-plan/v1 JSON file (otherwise built from the "
             "quick flags below; library apps with no quick flags fall "
             "back to their scenario's own fault plan)",
    )
    faults.add_argument(
        "--drop", type=float, default=None, metavar="P",
        help="camera-flow frame drop probability "
             "(default: 0.05 for brake, 0 for library apps)",
    )
    faults.add_argument(
        "--duplicate", type=float, default=0.0, metavar="P",
        help="camera-flow duplication probability",
    )
    faults.add_argument(
        "--reorder", type=float, default=0.0, metavar="P",
        help="camera-flow reordering probability",
    )
    faults.add_argument(
        "--corrupt", type=float, default=0.0, metavar="P",
        help="camera-flow corruption (FCS drop) probability",
    )
    faults.add_argument(
        "--spike", type=float, default=0.0, metavar="P",
        help="camera-flow latency-spike probability",
    )
    faults.add_argument(
        "--spike-ms", type=float, default=2.0, metavar="MS",
        help="latency-spike magnitude in ms (default: 2)",
    )
    faults.add_argument(
        "--partition", action="append", metavar="START_MS:END_MS",
        default=None,
        help="sever all inter-host links over [START, END) ms; "
             "repeatable; deferred frames arrive after the heal",
    )
    _add_int(faults, "--fault-seed", 1, "fault-plan PRF seed")
    _add_int(faults, "--seeds", 5, "world seeds to sweep per variant")
    faults.add_argument(
        "--frames", type=int, default=None, metavar="N",
        help="frames per run (default: 150 for brake, the scenario's "
             "own size for library apps)",
    )
    faults.add_argument(
        "--late-policy",
        choices=("process", "drop", "last-known", "fault-signal"),
        default="process",
        help="DEAR policy for L-bound-violating messages (default: process)",
    )
    faults.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the full fault-sweep report JSON to FILE",
    )
    faults.add_argument(
        "--counterexample-out", metavar="FILE", default="fault-counterexample.json",
        help="where to write the divergence artifact if DEAR silently "
             "diverges (default: fault-counterexample.json)",
    )
    faults.add_argument(
        "--snapshot", action=argparse.BooleanOptionalAction, default=True,
        help="triage seed 0's fired faults down to the decisive subset "
             "by ddmin over copy-on-write snapshot forks (default: on "
             "where os.fork is available)",
    )

    flows = commands.add_parser(
        "flows",
        help="causal flow tracing: sweep any app's variants with per-frame "
             "hop records, print per-hop latency, drop attribution and the "
             "critical path, and diff stock vs DEAR",
        parents=[common],
    )
    _add_app(flows)
    _add_int(flows, "--seeds", 10, "world seeds to sweep per variant")
    flows.add_argument(
        "--frames", type=int, default=None, metavar="N",
        help="frames per run (default: 120 for brake, the scenario's "
             "own size for library apps)",
    )
    flows.add_argument(
        "--variant", choices=("det", "nondet", "both"), default="both",
        help="which variant(s) to flow-trace (default: both)",
    )
    flows.add_argument(
        "--drop", type=float, default=0.0, metavar="P",
        help="camera-flow fault-plan drop probability "
             "(default: 0, no plan; brake only)",
    )
    _add_int(flows, "--fault-seed", 1, "fault-plan PRF seed")
    flows.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the flow-sweep-report/v1 JSON to FILE",
    )

    bench_diff = commands.add_parser(
        "bench-diff",
        help="perf trajectory: compare fresh BENCH_*.json benchmark output "
             "against committed baselines with a configurable tolerance",
    )
    bench_diff.add_argument(
        "--baseline-dir", default="benchmarks/baselines", metavar="DIR",
        help="committed baseline BENCH_*.json directory "
             "(default: benchmarks/baselines)",
    )
    bench_diff.add_argument(
        "--current-dir", default="bench-artifacts", metavar="DIR",
        help="freshly generated BENCH_*.json directory (REPRO_BENCH_DIR; "
             "default: bench-artifacts)",
    )
    bench_diff.add_argument(
        "--tolerance", type=float, default=0.75, metavar="REL",
        help="relative tolerance for timing fields (default: 0.75 — CI "
             "runners are noisy; tighten locally)",
    )
    bench_diff.add_argument(
        "--strict", action="store_true",
        help="exit 1 on regressions beyond tolerance (default: warn only)",
    )
    bench_diff.add_argument(
        "--gate-fields", action="store_true",
        help="curated strict subset: structural mismatches, throughput "
             "(*_per_s) regressions and missing/new benchmarks fail; "
             "plain wall-time noise only warns (combine with --strict)",
    )
    bench_diff.add_argument(
        "--only", metavar="PATTERN", default=None,
        help="restrict the diff to benchmark names matching this fnmatch "
             "pattern (for partial runs that regenerate one suite)",
    )
    bench_diff.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the bench-diff/v1 JSON report to FILE",
    )

    serve = commands.add_parser(
        "serve",
        help="run the sweep-service coordinator: accept scenario-spec "
             "campaigns over HTTP (sweep-service/v1), shard them into "
             "seed-chunk jobs and queue them for the worker fleet",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    _add_int(serve, "--port", 8765, "bind port (0 = ephemeral)")
    serve.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help="shared content-addressed result store "
             "(default: <REPRO_CACHE_DIR or .repro_cache>/service)",
    )
    _add_int(
        serve, "--local-workers", 0,
        "also spawn N in-process workers over loopback HTTP (one-host mode)",
    )
    _add_int(serve, "--chunk-size", 4, "seeds per job")
    _add_int(
        serve, "--max-attempts", 3,
        "lease-or-fail attempts before a job fails terminally",
    )
    serve.add_argument(
        "--lease-ttl", type=float, default=15.0, metavar="S",
        help="lease seconds a job survives without a heartbeat "
             "(worker-death requeue horizon; default: 15)",
    )
    serve.add_argument(
        "--job-timeout", type=float, default=600.0, metavar="S",
        help="hard wall-clock budget per job attempt (default: 600)",
    )
    serve.add_argument(
        "--retry-backoff", type=float, default=0.25, metavar="S",
        help="requeue delay after the first failure, doubling per "
             "attempt (default: 0.25)",
    )
    _add_int(
        serve, "--campaigns", 0,
        "exit once N campaigns have completed (0 = serve forever)",
    )

    submit = commands.add_parser(
        "submit",
        help="submit a scenario-spec campaign to a running coordinator "
             "and optionally wait for the merged result",
    )
    submit.add_argument(
        "--spec", required=True, metavar="FILE",
        help="scenario-spec/v1 JSON file describing the campaign",
    )
    submit.add_argument(
        "--coordinator", default="http://127.0.0.1:8765", metavar="URL",
        help="coordinator base URL (default: http://127.0.0.1:8765)",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="poll until the campaign completes and print the summary",
    )
    submit.add_argument(
        "--timeout", type=float, default=600.0, metavar="S",
        help="--wait timeout in seconds (default: 600)",
    )
    submit.add_argument(
        "--connect-timeout", type=float, default=30.0, metavar="S",
        help="seconds to wait for the coordinator to come up (default: 30)",
    )
    submit.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the merged sweep-service/v1 result document to FILE",
    )
    submit.add_argument(
        "--report-out", metavar="FILE", default=None,
        help="write the campaign post-mortem report JSON to FILE",
    )

    worker = commands.add_parser(
        "worker",
        help="run one sweep-service worker: lease jobs from a "
             "coordinator under a heartbeat and stream results back",
    )
    worker.add_argument(
        "--coordinator", default="http://127.0.0.1:8765", metavar="URL",
        help="coordinator base URL (default: http://127.0.0.1:8765)",
    )
    worker.add_argument(
        "--poll", type=float, default=0.2, metavar="S",
        help="idle poll interval in seconds (default: 0.2)",
    )
    worker.add_argument(
        "--idle-exit", type=float, default=None, metavar="S",
        help="exit after this long without work (default: run forever)",
    )
    _add_int(worker, "--max-jobs", 0, "exit after completing N jobs (0 = no limit)")
    worker.add_argument(
        "--connect-timeout", type=float, default=30.0, metavar="S",
        help="seconds to wait for the coordinator to come up (default: 30)",
    )

    status = commands.add_parser(
        "status",
        help="live campaign status from a running coordinator "
             "(per-job state, queue depth, seeds/s, ETA)",
    )
    status.add_argument(
        "campaign", nargs="?", default=None,
        help="campaign id (default: the most recently submitted)",
    )
    status.add_argument(
        "--coordinator", default="http://127.0.0.1:8765", metavar="URL",
        help="coordinator base URL (default: http://127.0.0.1:8765)",
    )
    status.add_argument(
        "--watch", action="store_true",
        help="refresh the table until the campaign completes",
    )
    status.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="--watch refresh interval in seconds (default: 1)",
    )

    report = commands.add_parser(
        "report",
        help="fetch a campaign's post-mortem report; --trace-out renders "
             "the job timelines as a Perfetto fleet trace",
    )
    report.add_argument(
        "campaign", nargs="?", default=None,
        help="campaign id (default: the most recently submitted)",
    )
    report.add_argument(
        "--coordinator", default="http://127.0.0.1:8765", metavar="URL",
        help="coordinator base URL (default: http://127.0.0.1:8765)",
    )
    report.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the sweep-service/v1 report JSON to FILE",
    )
    report.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="write the fleet Perfetto trace (trace_event JSON) to FILE",
    )

    trace = commands.add_parser(
        "trace",
        help="run one observed app run and export a Perfetto trace",
        parents=[common],
    )
    _add_app(trace)
    trace.add_argument(
        "experiment", choices=("det", "nondet"),
        help="variant to observe",
    )
    _add_int(trace, "--seed", 0, "seed of the observed run")
    trace.add_argument(
        "--frames", type=int, default=None, metavar="N",
        help="frames for the observed run (default: 200 for brake, the "
             "scenario's own size for library apps)",
    )

    metrics = commands.add_parser(
        "metrics",
        help="sweep observed app runs and print cross-seed "
             "metric aggregates (p50/p95/max)",
        parents=[common],
    )
    _add_app(metrics)
    metrics.add_argument(
        "experiment", choices=("det", "nondet"),
        help="variant to observe",
    )
    _add_int(metrics, "--seeds", 10, "number of observed seeds")
    metrics.add_argument(
        "--frames", type=int, default=None, metavar="N",
        help="frames per run (default: 200 for brake, the scenario's "
             "own size for library apps)",
    )

    library = commands.add_parser(
        "library",
        help="list the registered applications and the multi-ECU "
             "scenario library (topology size, variants, default faults)",
    )
    library.add_argument(
        "--json", action="store_true",
        help="emit the listing as JSON instead of a table",
    )

    run_all = commands.add_parser(
        "all", help="run every experiment (default scale)", parents=[common]
    )
    run_all.add_argument(
        "--quick", action="store_true", help="reduced sizes for a fast pass"
    )
    return parser


def _make_sweep(args: argparse.Namespace):
    """A :class:`SweepRunner` configured from the common CLI options."""
    from repro.harness.sweep import SweepRunner

    return SweepRunner(
        workers=args.workers,
        use_cache=False if args.no_cache else None,
        force=args.force,
        cache_dir=args.cache_dir,
    )


def _load_spec(args: argparse.Namespace):
    """The :class:`ScenarioSpec` named by ``--spec``, or ``None``."""
    if not getattr(args, "spec", None):
        return None
    from repro.harness.config import ScenarioSpec

    return ScenarioSpec.load(args.spec)


def _run_one(name: str, args: argparse.Namespace, sweep) -> str:
    from repro.harness import extensions, figures

    spec = _load_spec(args)
    if name == "fig1":
        return figures.figure1(nondet_seeds=args.seeds, sweep=sweep).render()
    if name == "fig3":
        return figures.figure3_sequence().render()
    if name == "fig5":
        return figures.figure5(
            n_runs=args.runs, n_frames=args.frames, sweep=sweep, spec=spec
        ).render()
    if name == "det":
        return figures.det_case_study(
            n_seeds=args.seeds, n_frames=args.frames, sweep=sweep, spec=spec
        ).render()
    if name == "tradeoff":
        return figures.tradeoff(
            n_frames=args.frames, sweep=sweep, spec=spec
        ).render()
    if name == "ablation":
        return figures.ablation_sources(n_seeds=args.seeds, sweep=sweep).render()
    if name == "overhead":
        return figures.overhead(
            n_frames=args.frames, sweep=sweep, spec=spec
        ).render()
    if name == "let":
        return figures.let_baseline(n_frames=args.frames, sweep=sweep).render()
    if name == "skew":
        return extensions.clock_skew_sweep(sweep=sweep, spec=spec).render()
    if name == "scaling":
        return extensions.pipeline_scaling(sweep=sweep, spec=spec).render()
    if name == "native":
        return extensions.native_transport_comparison(sweep=sweep).render()
    if name == "distributed":
        return _render_distributed(args.frames, sweep)
    raise ValueError(f"unknown command {name!r}")


def _distributed_point(configuration, frames: int):
    """One (skew, assumed E) distributed run (runs in a worker)."""
    from repro.apps.brake import BrakeScenario, run_det_brake_assistant

    skew, error = configuration
    scenario = BrakeScenario(
        n_frames=frames, distributed=True,
        processing_clock_skew_ns=skew, clock_error_ns=error,
    )
    return run_det_brake_assistant(0, scenario)


def _render_distributed(frames: int, sweep) -> str:
    from functools import partial

    from repro.analysis.report import render_table
    from repro.time import MS

    configurations = [(0, 0), (15 * MS, 0), (20 * MS, 25 * MS)]
    runs = sweep.map(
        partial(_distributed_point, frames=frames),
        configurations,
        name="ext-dist",
        params={"frames": frames},
    )
    rows = []
    for (skew, error), run in zip(configurations, runs):
        rows.append([
            f"{skew / 1e6:.0f} ms", f"{error / 1e6:.0f} ms",
            str(run.stp_violations), f"{len(run.commands)}/{frames}",
        ])
    return render_table(
        ["clock skew", "assumed E", "STP violations", "frames answered"],
        rows,
        title="EXT-DIST - distributed brake assistant:",
    )


def _explore_scenario(app: str, frames: int, deterministic: bool = False):
    """The scenario explore/replay runs: hazard-prone and small.

    Brake uses its calibration scenario (tightened to provoke failures);
    library scenarios are hazard-prone by construction and just get the
    frame count applied.  *deterministic* selects the DEAR-friendly
    camera for brake; library det variants need no such knob.
    """
    from dataclasses import replace

    from repro import apps
    from repro.explore import calibration_scenario

    if app == "brake":
        return calibration_scenario(frames, deterministic_camera=deterministic)
    return replace(
        apps.get(app).default_scenario(),
        n_frames=frames,
        deterministic_inputs=deterministic,
    )


def _replay_trace(args: argparse.Namespace) -> int:
    """``repro explore --replay FILE``: re-execute a recorded trace."""
    from repro import apps
    from repro.explore import ScheduleReplayer
    from repro.explore.decisions import DecisionTrace
    from repro.sim.rng import stream_hooks

    trace = DecisionTrace.load(args.replay)
    app = trace.params.get("app", getattr(args, "app", "brake"))
    frames = trace.params.get("frames", args.frames)
    scenario = _explore_scenario(app, frames)
    replayer = ScheduleReplayer(trace)
    with stream_hooks(replayer):
        result = apps.get(app).runner("nondet")(trace.base_seed, scenario)
    errors = result.errors.as_dict()
    print(
        f"replay: {replayer.consumed}/{len(trace.records)} recorded "
        f"decisions consumed (seed {trace.base_seed}, {frames} frames)"
    )
    expected = trace.params.get("errors")
    if expected is not None and errors != expected:
        print(
            "replay: error counters DIVERGED\n"
            f"  expected: {expected}\n  got:      {errors}"
        )
        return 1
    nonzero = {name: count for name, count in errors.items() if count}
    print(f"replay: errors reproduced: {nonzero or 'none'}")
    return 0


def _run_explore(args: argparse.Namespace, sweep) -> int:
    """``repro explore``: search, then optionally shrink/record/verify."""
    from repro.explore import PctStrategy, RandomSweepStrategy
    from repro.time import MS

    if args.replay:
        return _replay_trace(args)

    if args.strategy == "pct":
        strategy = PctStrategy(
            depth=args.depth,
            preempt_ns=int(args.max_preempt_ms * MS),
            seed=args.seed,
        )
    else:
        strategy = RandomSweepStrategy()
    engine = None
    if args.snapshot:
        from repro.snapshot import SNAPSHOTS_SUPPORTED, SnapshotEngine

        if SNAPSHOTS_SUPPORTED:
            engine = SnapshotEngine()
    try:
        return _run_explore_inner(args, sweep, strategy, engine)
    finally:
        if engine is not None:
            engine.close()
            print(engine.stats.describe(), file=sys.stderr)


def _run_explore_inner(args, sweep, strategy, engine) -> int:
    import json

    from repro.analysis.report import (
        exploration_report,
        shrink_report,
        verification_report,
    )
    from repro import apps
    from repro.explore import (
        IN_BUDGET_PREEMPT_NS,
        Explorer,
        PctStrategy,
        shrink_schedule,
        verify_determinism,
    )

    app = getattr(args, "app", "brake")
    definition = apps.get(app)
    explorer = Explorer(
        experiment=definition.runner("nondet"),
        scenario=_explore_scenario(app, args.frames),
        base_seed=args.seed,
        strategy=strategy,
        sweep=sweep,
        snapshots=engine,
    )
    result = explorer.explore(budget=args.budget)
    print(exploration_report(result))

    schedule = result.found.schedule if result.found else None
    errors = dict(result.found.errors) if result.found else {}
    shrunk = None
    if result.found is not None and args.shrink:
        if schedule.preemptions:
            shrunk = shrink_schedule(explorer, schedule)
            schedule, errors = shrunk.minimal, dict(shrunk.errors)
            print(shrink_report(shrunk))
        else:
            print("shrink: schedule has no preemption points, nothing to remove")

    if result.found is not None and args.record:
        run_result, trace = explorer.record(schedule)
        trace.params["app"] = app
        trace.params["frames"] = args.frames
        trace.params["errors"] = run_result.errors.as_dict()
        trace.save(args.record)
        print(
            f"record: {len(trace.records)} decisions "
            f"({trace.fingerprint()[:12]}) -> {args.record}"
        )

    if args.schedule_out:
        artifact = {
            "app": app,
            "experiment": getattr(
                explorer.experiment, "__name__", repr(explorer.experiment)
            ),
            "strategy": result.strategy,
            "budget": result.budget,
            "executions_used": result.executions_used,
            "horizon": result.horizon,
            "found": result.found is not None,
            "schedule": schedule.to_dict() if schedule else None,
            "errors": errors,
            "shrink": (
                {"trials": shrunk.trials, "removed": shrunk.removed}
                if shrunk
                else None
            ),
            "snapshots": engine.stats.as_dict() if engine is not None else None,
        }
        with open(args.schedule_out, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2)
        print(f"schedule artifact -> {args.schedule_out}")

    code = 0 if result.found is not None else 1
    if args.verify > 0:
        det_scenario = _explore_scenario(app, args.frames, deterministic=True)
        det_horizon = Explorer(
            experiment=definition.runner("det"),
            scenario=det_scenario,
            base_seed=args.seed,
        ).horizon
        in_budget = PctStrategy(
            depth=args.depth, preempt_ns=IN_BUDGET_PREEMPT_NS, seed=args.seed + 9
        )
        schedules = [
            in_budget.schedule_for(index + 1, args.seed, det_horizon)
            for index in range(args.verify)
        ]
        verification = verify_determinism(
            schedules,
            det_scenario,
            base_seed=args.seed,
            experiment=definition.runner("det"),
            input_threads=definition.input_threads,
            sweep=sweep,
        )
        print(verification_report(verification))
        if not verification.ok:
            code = 1
    return code


def _faults_plan(args: argparse.Namespace):
    """The :class:`FaultPlan` from ``--plan`` or the quick flags.

    Returns ``None`` when a library app was selected and no quick fault
    flag was set — the spec then falls through to the app's own default
    plan (e.g. the failover scenario's primary-node outage).
    """
    from repro.faults import FaultPlan, Partition
    from repro.time import MS

    if args.plan:
        return FaultPlan.load(args.plan)
    app = getattr(args, "app", "brake")
    partitions = []
    for window in args.partition or ():
        start_text, _, end_text = window.partition(":")
        try:
            start_ms, end_ms = float(start_text), float(end_text)
        except ValueError:
            raise SystemExit(
                f"--partition expects START_MS:END_MS, got {window!r}"
            ) from None
        partitions.append(
            Partition(start_ns=int(start_ms * MS), end_ns=int(end_ms * MS))
        )
    drop = args.drop if args.drop is not None else (
        0.05 if app == "brake" else 0.0
    )
    quick = any(
        p > 0.0
        for p in (drop, args.duplicate, args.reorder, args.corrupt, args.spike)
    ) or bool(partitions)
    if app != "brake" and not quick:
        return None
    return FaultPlan.camera_faults(
        seed=args.fault_seed,
        drop=drop,
        duplicate=args.duplicate,
        reorder=args.reorder,
        corrupt=args.corrupt,
        spike=args.spike,
        spike_ns=int(args.spike_ms * MS),
        partitions=tuple(partitions),
        label="cli-faults",
    )


def _faults_snapshot_triage(spec, det_runs, plan):
    """Minimize seed 0's fired faults to the decisive subset.

    ddmin over the fired-fault trace, with every probe forked from the
    deepest copy-on-write snapshot whose membership prefix matches —
    answering "which of the faults that fired actually changed the
    outcome?" without paying a full re-run per probe.  Returns a JSON
    block for the fault-sweep report, or ``None`` when there is nothing
    to triage (no faults fired, outcome unchanged, or no ``os.fork``).
    """
    from dataclasses import replace

    from repro.explore.decisions import DecisionTrace
    from repro.faults import shrink_fault_trace
    from repro.harness.config import run_scenario_spec
    from repro.snapshot import SNAPSHOTS_SUPPORTED, SnapshotEngine

    if not SNAPSHOTS_SUPPORTED or not det_runs:
        return None
    run0 = det_runs[0]
    trace_dict = (run0.fault_summary or {}).get("trace")
    if not trace_dict or not trace_dict.get("records"):
        return None
    trace = DecisionTrace.from_dict(trace_dict)
    seed = run0.seed

    def signature(result):
        return tuple(sorted(result.trace_fingerprints.items()))

    clean = signature(
        run_scenario_spec(seed, spec, fault_replay=replace(trace, records=[]))
    )
    if clean == signature(run0):
        return None  # the fired faults left no observable mark

    def failure(candidate, checkpointer=None):
        result = run_scenario_spec(
            seed,
            spec,
            fault_replay=candidate,
            fault_universe=trace if checkpointer is not None else None,
            fault_checkpointer=checkpointer,
        )
        return signature(result) != clean

    engine = SnapshotEngine()
    try:
        shrunk = shrink_fault_trace(plan, trace, failure, snapshots=engine)
    except ValueError:
        return None  # full-trace replay did not reproduce; don't guess
    finally:
        engine.close()
    print(f"snapshot triage (seed {seed}): {shrunk.describe()}")
    print(f"  {engine.stats.describe()}")
    return {
        "seed": seed,
        "fired": len(trace.records),
        "trials": shrunk.trials,
        "minimal": shrunk.minimal.to_dict(),
        "summary": shrunk.describe(),
        "stats": engine.stats.as_dict(),
    }


def _run_faults(args: argparse.Namespace, sweep) -> int:
    """``repro faults``: seeded fault sweep + DEAR determinism check.

    Runs both variants under the same fault plan with the deterministic
    camera.  In-bound faults must leave DEAR's logical traces identical
    across world seeds; divergence is acceptable only when flagged by
    the runtime (STP violations / deadline faults).  Silent divergence
    writes a counterexample artifact and exits nonzero.
    """
    import json
    from dataclasses import replace

    from repro.analysis.report import render_table
    from repro.faults import FaultPlan
    from repro.harness.config import ScenarioSpec

    plan = _faults_plan(args)
    spec = _load_spec(args)
    if spec is not None:
        app = spec.app
        if plan is not None:
            spec = replace(spec, faults=plan, variant="det")
        else:
            spec = replace(spec, variant="det")
    else:
        app = getattr(args, "app", "brake")
        scenario = _app_scenario(app, args.frames, 150)
        # The cross-seed trace-identity check needs seed-fixed inputs:
        # the deterministic camera for brake, the library analogue
        # (calm hosts, constant latencies, no input jitter) otherwise.
        deterministic_knob = (
            "deterministic_camera" if app == "brake" else "deterministic_inputs"
        )
        scenario = replace(
            scenario,
            late_policy=args.late_policy,
            **{deterministic_knob: True},
        )
        spec = ScenarioSpec(
            variant="det",
            seeds=tuple(range(args.seeds)),
            scenario=scenario,
            faults=plan,
            label="faults-det" if app == "brake" else f"faults-{app}-det",
            app=app,
        )
    # Library apps may carry their fault plan in the scenario itself
    # (e.g. failover's primary outage); report whatever actually runs.
    plan = spec.effective_faults() or FaultPlan(label="none")
    print(plan.describe())
    det_runs = sweep.run_spec(spec).values()
    nondet_label = (
        "faults-nondet" if app == "brake" else f"faults-{app}-nondet"
    )
    nondet_spec = replace(spec, variant="nondet", label=nondet_label)
    nondet_runs = sweep.run_spec(nondet_spec).values()

    rows = []
    for run in det_runs:
        summary = run.fault_summary or {}
        counters = summary.get("counters", {})
        rows.append([
            str(run.seed),
            str(summary.get("fired", 0)),
            str(counters.get("drop", 0) + counters.get("partition", 0)),
            str(run.errors.total()),
            str(run.stp_violations),
            str(run.deadline_misses),
        ])
    print(render_table(
        ["seed", "faults fired", "drops", "errors", "STP violations",
         "deadline misses"],
        rows,
        title="FAULTS - DEAR under the fault plan:",
    ))

    fingerprints = {
        tuple(sorted(run.trace_fingerprints.items())) for run in det_runs
    }
    det_deterministic = len(fingerprints) == 1
    flagged = sum(
        run.stp_violations + run.deadline_misses for run in det_runs
    )
    stock_outcomes = {
        tuple(sorted(run.commands.items())) for run in nondet_runs
    }
    print(
        f"DEAR logical traces identical across {len(det_runs)} seeds: "
        f"{det_deterministic} (flagged violations: {flagged})"
    )
    print(
        f"stock outcomes across {len(nondet_runs)} seeds: "
        f"{len(stock_outcomes)} distinct"
    )

    snapshots_block = (
        _faults_snapshot_triage(spec, det_runs, plan) if args.snapshot else None
    )

    silent_divergence = not det_deterministic and flagged == 0
    report = {
        "format": "fault-sweep-report/v1",
        "plan": plan.to_dict(),
        "spec": spec.to_dict(),
        "det": {
            "deterministic": det_deterministic,
            "distinct_fingerprints": len(fingerprints),
            "flagged_violations": flagged,
            "fingerprints": {
                str(run.seed): dict(run.trace_fingerprints)
                for run in det_runs
            },
            "fault_summaries": {
                str(run.seed): run.fault_summary for run in det_runs
            },
        },
        "stock": {
            "distinct_outcomes": len(stock_outcomes),
            "errors": {
                str(run.seed): run.errors.as_dict() for run in nondet_runs
            },
        },
        "silent_divergence": silent_divergence,
        "snapshots": snapshots_block,
    }
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"fault-sweep report -> {args.out}")
    if silent_divergence:
        with open(args.counterexample_out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(
            "FAULTS: silent DEAR divergence under in-bound faults; "
            f"counterexample -> {args.counterexample_out}",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_flows(args: argparse.Namespace, sweep) -> int:
    """``repro flows``: causal flow sweep with a stock-vs-DEAR diff.

    Maps :func:`repro.obs.drivers.run_brake_flows` over the seed range
    for each requested variant, merges the per-seed ``flow-report/v1``
    documents, prints drop attribution and the critical path, and (with
    both variants) a stock-vs-DEAR delivery/drop diff.
    """
    import json
    from dataclasses import replace
    from functools import partial

    from repro import apps, obs
    from repro.obs.drivers import run_brake_flows
    from repro.analysis.report import render_table

    spec = _load_spec(args)
    fault_plan = None
    switch_config = None
    if spec is not None:
        app = spec.app
        scenario = spec.effective_scenario()
        seeds = list(spec.seeds)
        fault_plan = spec.faults
        switch_config = spec.switch_config()
    else:
        app = getattr(args, "app", "brake")
        scenario = _app_scenario(app, args.frames, 120)
        seeds = list(range(args.seeds))
        if args.drop > 0.0:
            if app != "brake":
                raise SystemExit(
                    "flows: --drop targets the brake camera flow; use "
                    "--spec with a fault plan for library apps"
                )
            from repro.faults import FaultPlan

            fault_plan = FaultPlan.camera_faults(
                seed=args.fault_seed, drop=args.drop, label="cli-flows"
            )
    definition = apps.get(app)
    variants = (
        ("det", "nondet") if args.variant == "both" else (args.variant,)
    )
    for variant in variants:
        if variant not in definition.variants():
            raise SystemExit(
                f"flows: app {app!r} has no variant {variant!r}; "
                f"known: {list(definition.variants())}"
            )
    merged: dict[str, dict] = {}
    for variant in variants:
        # The brake sweep name and params predate --app; keep them
        # byte-identical so existing result caches stay warm.
        params = {
            "frames": scenario.n_frames,
            "spec": spec.to_dict() if spec is not None else None,
            "faults": fault_plan.to_dict() if fault_plan is not None else None,
        }
        if app != "brake":
            params["app"] = app
        runs = sweep.map(
            partial(
                run_brake_flows,
                scenario=scenario,
                variant=variant,
                fault_plan=fault_plan,
                switch_config=switch_config,
                app=app,
            ),
            seeds,
            name=(
                f"flows-{variant}" if app == "brake"
                else f"flows-{app}-{variant}"
            ),
            params=params,
        )
        merged[variant] = obs.merge_flow_reports([run["report"] for run in runs])
        summary = merged[variant]["summary"]
        tag = variant if app == "brake" else f"{app} {variant}"
        drop_rows = [
            [cause, str(count)]
            for cause, count in summary["drops_by_cause"].items()
        ] or [["(none)", "0"]]
        print(render_table(
            ["drop cause", "frames"],
            drop_rows,
            title=(
                f"FLOWS - {tag}: {summary['delivered']}/{summary['total']} "
                f"delivered over {len(seeds)} seed(s), e2e p50 "
                f"{summary['e2e_p50_ns']} ns, p95 {summary['e2e_p95_ns']} ns"
            ),
        ))
        path = merged[variant]["critical_path"]
        seg_rows = [
            [name, str(stats["count"]), f"{stats['mean_ns']:.0f}",
             str(stats["max_ns"]), str(path["dominant"].get(name, 0))]
            for name, stats in path["segments"].items()
        ]
        print(render_table(
            ["segment", "hops", "mean ns", "max ns", "dominant for"],
            seg_rows,
            title=f"FLOWS - {tag} critical path:",
        ))

    diff = None
    if len(variants) == 2:
        det_s = merged["det"]["summary"]
        stock_s = merged["nondet"]["summary"]
        diff = {
            "det_delivered": det_s["delivered"],
            "stock_delivered": stock_s["delivered"],
            "det_dropped": det_s["dropped"],
            "stock_dropped": stock_s["dropped"],
            "det_drops_by_cause": det_s["drops_by_cause"],
            "stock_drops_by_cause": stock_s["drops_by_cause"],
            "stock_only_causes": sorted(
                set(stock_s["drops_by_cause"]) - set(det_s["drops_by_cause"])
            ),
            "det_e2e_p95_ns": det_s["e2e_p95_ns"],
            "stock_e2e_p95_ns": stock_s["e2e_p95_ns"],
        }
        print(
            f"FLOWS diff: DEAR delivered {det_s['delivered']}/{det_s['total']}"
            f" vs stock {stock_s['delivered']}/{stock_s['total']}; "
            f"stock-only drop causes: {diff['stock_only_causes'] or 'none'}"
        )

    if args.out:
        document = {
            "format": "flow-sweep-report/v1",
            "app": app,
            "frames": scenario.n_frames,
            "seeds": len(seeds),
            **{variant: merged[variant] for variant in variants},
        }
        if diff is not None:
            document["diff"] = diff
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
        print(f"flow-sweep report -> {args.out}")

    if args.trace_out or args.metrics_out:
        observation, _ = obs.observe_brake_flows(
            seeds[0] if seeds else 0,
            replace(scenario, n_frames=min(scenario.n_frames, 200)),
            variants[0],
            fault_plan=fault_plan,
            switch_config=switch_config,
            app=app,
        )
        if args.trace_out:
            obs.write_trace(observation, args.trace_out)
            print(
                f"flow trace (seed {seeds[0] if seeds else 0}, "
                f"{variants[0]}) -> {args.trace_out}",
                file=sys.stderr,
            )
        if args.metrics_out:
            obs.write_metrics(observation, args.metrics_out)
            print(f"flow metrics -> {args.metrics_out}", file=sys.stderr)
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """``repro serve``: coordinator + HTTP API (+ optional local workers)."""
    import os
    import threading

    from repro.obs import fleet
    from repro.service import (
        Coordinator,
        CoordinatorConfig,
        HttpClient,
        ResultStore,
        Worker,
        serve,
    )

    fleet.enable_from_env()
    store_dir = args.store_dir or os.path.join(
        os.environ.get("REPRO_CACHE_DIR", ".repro_cache"), "service"
    )
    config = CoordinatorConfig(
        chunk_size=args.chunk_size,
        max_attempts=args.max_attempts,
        lease_ttl_s=args.lease_ttl,
        job_timeout_s=args.job_timeout,
        retry_backoff_s=args.retry_backoff,
    )
    coordinator = Coordinator(ResultStore(store_dir), config)
    server = serve(coordinator, args.host, args.port)
    print(
        f"sweep-service/v1 coordinator on {server.url} "
        f"(store: {store_dir}, chunk {config.chunk_size}, "
        f"lease TTL {config.lease_ttl_s:g}s)",
        flush=True,
    )
    stop = threading.Event()
    threads = []
    for index in range(args.local_workers):
        local = Worker(
            HttpClient(server.url), info={"local": True, "index": index}
        )
        thread = threading.Thread(
            target=local.run, kwargs={"stop": stop}, daemon=True
        )
        threads.append(thread)
        thread.start()
    if args.local_workers:
        print(f"spawned {args.local_workers} local worker(s)", flush=True)
    try:
        if args.campaigns > 0:
            import time as _time

            while True:
                campaigns = coordinator.campaigns()
                done = sum(1 for c in campaigns if c["status"] == "done")
                if done >= args.campaigns:
                    # Wind down the local workers (their lease polling
                    # would otherwise never let the API go quiet), then
                    # linger until clients finish draining results: a
                    # `submit --wait` still has result/report reads in
                    # flight when its campaign completes.
                    stop.set()
                    if _time.monotonic() - server.last_request > 1.0:
                        print(
                            f"served {done} campaign(s); shutting down",
                            flush=True,
                        )
                        break
                    _time.sleep(0.1)
                else:
                    stop.wait(0.2)
        else:
            while not stop.wait(3600.0):
                pass
    except KeyboardInterrupt:
        print("interrupted; shutting down", file=sys.stderr)
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
        server.shutdown()
        server.server_close()
    return 0


def _run_submit(args: argparse.Namespace) -> int:
    """``repro submit``: one campaign in, (optionally) one merged result out."""
    import json

    from repro.harness.config import ScenarioSpec
    from repro.service import HttpClient, seed_outcomes

    spec = ScenarioSpec.load(args.spec)
    client = HttpClient(args.coordinator)
    client.connect(timeout_s=args.connect_timeout)
    status = client.submit(spec)
    campaign = status["campaign"]
    print(
        f"campaign {campaign}: {status['seeds']} seed(s), "
        f"{status['cached']} cached, {status['jobs']} job(s) queued"
    )
    if not args.wait:
        print(f"poll with: repro submit --wait or GET /v1/status/{campaign}")
        return 0
    result = client.wait(campaign, timeout_s=args.timeout)
    outcomes = seed_outcomes(result)
    failures = [outcome for outcome in outcomes if not outcome.ok]
    cached = sum(1 for outcome in outcomes if outcome.cached)
    print(
        f"campaign {campaign} done in {result['elapsed_s']:.3f}s: "
        f"{len(outcomes)} seed(s), {cached} cached, "
        f"{len(failures)} failure(s)"
    )
    for outcome in failures:
        first_line = (outcome.error or "").strip().splitlines()[-1:]
        print(f"  seed {outcome.seed}: {first_line[0] if first_line else '?'}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
        print(f"result -> {args.out}")
    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as handle:
            json.dump(client.report(campaign), handle, indent=2, sort_keys=True)
        print(f"report -> {args.report_out}")
    return 1 if failures else 0


def _run_worker(args: argparse.Namespace) -> int:
    """``repro worker``: join a coordinator's fleet from this host."""
    from repro.obs import fleet
    from repro.service import HttpClient, Worker

    fleet.enable_from_env()
    client = HttpClient(args.coordinator)
    client.connect(timeout_s=args.connect_timeout)
    worker = Worker(client, poll_interval_s=args.poll)
    completed = worker.run(
        max_idle_s=args.idle_exit, max_jobs=args.max_jobs or None
    )
    print(
        f"worker {worker.worker_id}: {completed} job(s) completed, "
        f"{worker.jobs_failed} failed "
        f"({worker.heartbeat_failures} heartbeat failure(s))"
    )
    return 0


def _latest_campaign(client, campaign_id: str | None) -> str:
    """Resolve the campaign argument (default: most recently submitted)."""
    if campaign_id:
        return campaign_id
    campaigns = client.campaigns()
    if not campaigns:
        raise SystemExit("no campaigns submitted to this coordinator yet")
    return campaigns[-1]["campaign"]


def _status_table(status: dict, report: dict) -> str:
    """Render one campaign's live status as a fixed-width table."""
    eta = status.get("eta_s")
    lines = [
        f"campaign {status['campaign']} [{status['status']}]  "
        f"label: {status.get('label', '?')}",
        f"  seeds: {status['seeds']}  pending: {status['pending']}  "
        f"cached: {status['cached']}  failed: {status['failed']}",
        f"  jobs: {status['jobs']}  done: {status['jobs_done']}  "
        f"queue: {status.get('queue_depth', '?')}  "
        f"leased: {status.get('leased', '?')}",
        f"  elapsed: {status.get('elapsed_s', 0):.1f}s  "
        f"rate: {status.get('seeds_per_s', 0):.2f} seeds/s  "
        f"eta: {f'{eta:.1f}s' if isinstance(eta, (int, float)) else '?'}",
        "",
        f"  {'job':<24} {'state':<8} {'attempt':>7} {'requeues':>8} "
        f"{'worker':<8} {'seeds'}",
    ]
    for job in report.get("jobs", []):
        seeds = ",".join(str(seed) for seed in job.get("seeds", []))
        if len(seeds) > 24:
            seeds = seeds[:21] + "..."
        lines.append(
            f"  {job['job']:<24} {job['state']:<8} {job['attempt']:>7} "
            f"{job['requeues']:>8} {str(job.get('worker') or '-'):<8} {seeds}"
        )
    return "\n".join(lines)


def _run_status(args: argparse.Namespace) -> int:
    """``repro status [campaign] [--watch]``: live campaign status."""
    import time as _time

    from repro.service import HttpClient

    client = HttpClient(args.coordinator)
    campaign = _latest_campaign(client, args.campaign)
    while True:
        status = client.status(campaign)
        report = client.report(campaign)
        table = _status_table(status, report)
        if args.watch:
            # Clear + home, like `watch(1)`, so the table refreshes in
            # place on any ANSI terminal.
            print(f"\x1b[2J\x1b[H{table}", flush=True)
        else:
            print(table)
        if not args.watch or status["status"] == "done":
            return 0
        _time.sleep(max(0.05, args.interval))


def _run_report(args: argparse.Namespace) -> int:
    """``repro report [campaign]``: post-mortem + optional fleet trace."""
    import json

    from repro.obs import fleet
    from repro.service import HttpClient

    client = HttpClient(args.coordinator)
    campaign = _latest_campaign(client, args.campaign)
    report = client.report(campaign)
    merged = report.get("fleet", {}).get("merged", {})
    print(
        f"campaign {campaign} [{report['status']}]: "
        f"{report['seeds']} seed(s), {report['cached']} cached, "
        f"{report['failed']} failed, {report['requeues']} requeue(s), "
        f"{report['retries']} retry(ies)"
    )
    print(
        f"  fleet: {report.get('fleet', {}).get('sources', 0)} telemetry "
        f"source(s), {len(merged.get('counters', {}))} counter(s), "
        f"{len(merged.get('histograms', {}))} histogram(s)"
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"report -> {args.out}")
    if args.trace_out:
        path = fleet.write_fleet_trace(report, args.trace_out)
        events = len(fleet.fleet_trace_events(report))
        print(f"fleet trace: {events} event(s) -> {path}")
    return 0


def _run_bench_diff(args: argparse.Namespace) -> int:
    """``repro bench-diff``: the perf-trajectory gate."""
    import json

    from repro.harness.benchdiff import compare_dirs, render_bench_diff

    report = compare_dirs(
        args.baseline_dir,
        args.current_dir,
        tolerance=args.tolerance,
        gate_fields=args.gate_fields,
        only=args.only,
    )
    print(render_bench_diff(report))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"bench-diff report -> {args.out}")
    if args.strict and report["summary"]["fail"]:
        print(
            f"bench-diff: {report['summary']['fail']} regression(s) beyond "
            f"tolerance {args.tolerance}",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_trace(args: argparse.Namespace) -> int:
    """``repro trace det|nondet``: one observed run -> Perfetto JSON."""
    from repro import obs

    app = getattr(args, "app", "brake")
    scenario = _app_scenario(app, args.frames, 200)
    observation, result = obs.observe_brake_run(
        args.seed, scenario, args.experiment, app=app
    )
    path = obs.write_trace(observation, args.trace_out or "trace.json")
    print(
        f"trace: {len(observation.bus)} events on tracks "
        f"{observation.bus.tracks()} -> {path}"
    )
    if args.metrics_out:
        obs.write_metrics(observation, args.metrics_out)
        print(f"metrics -> {args.metrics_out}")
    errors = {k: v for k, v in result.errors.as_dict().items() if v}
    print(
        f"run: {app} {args.experiment}, seed {args.seed}, "
        f"{scenario.n_frames} frames, errors: {errors or 'none'}"
    )
    return 0


def _run_metrics(args: argparse.Namespace, sweep) -> int:
    """``repro metrics det|nondet``: cross-seed metric aggregates."""
    import json
    from functools import partial

    from repro import obs
    from repro.analysis.report import render_table
    from repro.harness.sweep import merge_metric_snapshots
    from repro.obs.drivers import run_brake_with_obs

    app = getattr(args, "app", "brake")
    scenario = _app_scenario(app, args.frames, 200)
    params = {"frames": scenario.n_frames}
    if app != "brake":
        params["app"] = app
    runs = sweep.map(
        partial(
            run_brake_with_obs,
            scenario=scenario,
            variant=args.experiment,
            app=app,
        ),
        range(args.seeds),
        name=(
            f"obs-{args.experiment}" if app == "brake"
            else f"obs-{app}-{args.experiment}"
        ),
        params=params,
    )
    aggregate = merge_metric_snapshots(runs)

    tag = args.experiment if app == "brake" else f"{app} {args.experiment}"
    rows = [
        [name, str(entry["total"]), str(entry["p50"]), str(entry["max"])]
        for name, entry in aggregate["counters"].items()
    ]
    print(render_table(
        ["counter", "total", "p50/seed", "max/seed"], rows,
        title=f"OBS - {tag} counters over {args.seeds} seeds:",
    ))
    rows = [
        [
            name,
            str(entry["count"]),
            f"{entry['mean']:.0f}",
            str(entry["p50"]),
            str(entry["p95"]),
            str(entry["max"]),
        ]
        for name, entry in aggregate["histograms"].items()
    ]
    print(render_table(
        ["histogram", "samples", "mean", "p50", "p95", "max"], rows,
        title="OBS - merged histograms (ns):",
    ))
    if args.metrics_out:
        document = {
            "format": "repro-metrics-aggregate/v1",
            "app": app,
            "experiment": args.experiment,
            "frames": scenario.n_frames,
            "seeds": args.seeds,
            "aggregate": aggregate,
        }
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
        print(f"metrics aggregate -> {args.metrics_out}")
    if args.trace_out:
        observation, _ = obs.observe_brake_run(
            0, scenario, args.experiment, app=app
        )
        obs.write_trace(observation, args.trace_out)
        print(f"representative trace (seed 0) -> {args.trace_out}")
    return 0


def _run_library(args: argparse.Namespace) -> int:
    """``repro library``: list the registered applications."""
    import json

    from repro import apps
    from repro.analysis.report import render_table

    entries = []
    for definition in apps.apps():
        scenario = definition.default_scenario()
        topology = definition.topology_for(scenario)
        entries.append({
            "name": definition.name,
            "title": definition.title,
            "library": definition.library,
            "variants": list(definition.variants()),
            "nodes": list(topology.nodes) if topology is not None else [],
            "switches": list(topology.switches) if topology is not None else [],
            "default_faults": definition.default_faults is not None,
            "description": definition.description,
        })
    if args.json:
        print(json.dumps({"format": "app-library/v1", "apps": entries},
                         indent=2, sort_keys=True))
        return 0
    rows = [
        [
            entry["name"],
            ",".join(entry["variants"]),
            (f"{len(entry['nodes'])} nodes / {len(entry['switches'])} "
             "switches") if entry["nodes"] else "(app default)",
            "yes" if entry["default_faults"] else "-",
            entry["title"],
        ]
        for entry in entries
    ]
    print(render_table(
        ["app", "variants", "topology", "faults", "title"],
        rows,
        title="Registered applications (run with --app NAME or a v2 spec):",
    ))
    for entry in entries:
        print(f"  {entry['name']}: {entry['description']}")
    return 0


def _export_observability(args: argparse.Namespace) -> None:
    """Honour ``--trace-out``/``--metrics-out`` on regular subcommands.

    Runs one observed representative brake run (nondet for the stock-AP
    figures, det otherwise) and writes the requested artifacts, without
    touching the experiment results themselves.
    """
    if not (getattr(args, "trace_out", None) or getattr(args, "metrics_out", None)):
        return
    from repro import obs

    variant = "nondet" if args.command in ("fig1", "fig5") else "det"
    app = getattr(args, "app", "brake")
    frames = getattr(args, "frames", None)
    frames = min(frames, 500) if frames is not None else None
    seed = getattr(args, "seed", 0) or 0
    scenario = _app_scenario(app, frames, 200)
    observation, _ = obs.observe_brake_run(seed, scenario, variant, app=app)
    if args.trace_out:
        obs.write_trace(observation, args.trace_out)
        print(
            f"observability: representative {variant} trace -> {args.trace_out}",
            file=sys.stderr,
        )
    if args.metrics_out:
        obs.write_metrics(observation, args.metrics_out)
        print(
            f"observability: representative {variant} metrics -> {args.metrics_out}",
            file=sys.stderr,
        )


_ALL = (
    "fig1", "fig3", "fig5", "det", "tradeoff", "ablation",
    "overhead", "let", "skew", "scaling", "native", "distributed",
)

_QUICK_SIZES = {
    "fig1": {"seeds": 40},
    "fig5": {"runs": 6, "frames": 400},
    "det": {"seeds": 2, "frames": 150},
    "tradeoff": {"frames": 100},
    "ablation": {"seeds": 8},
    "overhead": {"frames": 150},
    "let": {"frames": 100},
    "distributed": {"frames": 100},
}


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "bench-diff":
        # No sweep options: dispatched before _make_sweep reads them.
        return _run_bench_diff(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "submit":
        return _run_submit(args)
    if args.command == "worker":
        return _run_worker(args)
    if args.command == "status":
        return _run_status(args)
    if args.command == "report":
        return _run_report(args)
    if args.command == "library":
        return _run_library(args)
    sweep = _make_sweep(args)
    if args.command == "trace":
        return _run_trace(args)
    if args.command == "metrics":
        code = _run_metrics(args, sweep)
        if sweep.stats.sweeps:
            print(sweep.stats.summary_line(), file=sys.stderr)
        return code
    if args.command == "flows":
        code = _run_flows(args, sweep)
        if sweep.stats.sweeps:
            print(sweep.stats.summary_line(), file=sys.stderr)
        return code
    if args.command == "faults":
        code = _run_faults(args, sweep)
        _export_observability(args)
        if sweep.stats.sweeps:
            print(sweep.stats.summary_line(), file=sys.stderr)
        return code
    if args.command == "explore":
        code = _run_explore(args, sweep)
        _export_observability(args)
        if sweep.stats.sweeps:
            print(sweep.stats.summary_line(), file=sys.stderr)
        return code
    if args.command != "all":
        print(_run_one(args.command, args, sweep))
        _export_observability(args)
        if sweep.stats.sweeps:
            print(sweep.stats.summary_line(), file=sys.stderr)
        return 0
    for name in _ALL:
        sub_args = build_parser().parse_args([name])
        if args.quick:
            for key, value in _QUICK_SIZES.get(name, {}).items():
                setattr(sub_args, key, value)
        started = time.time()
        print(f"==== {name} " + "=" * (60 - len(name)))
        print(_run_one(name, sub_args, sweep))
        print(f"---- {name} done in {time.time() - started:.1f}s\n")
    _export_observability(args)
    if sweep.stats.sweeps:
        print(sweep.stats.summary_line(), file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
