"""Command-line interface: regenerate any paper artifact from a shell.

Usage::

    python -m repro fig5 --runs 20 --frames 2000
    python -m repro det --seeds 5 --frames 500
    python -m repro fig5 --workers 8          # parallel sweep
    python -m repro fig5 --force              # ignore cached results
    python -m repro all

Every subcommand runs the corresponding experiment driver and prints
the text rendering of the paper figure/table it reproduces.  Sweeps run
in parallel on a process pool (``--workers``, ``REPRO_WORKERS``,
default: all cores) and cache per-seed results under ``.repro_cache/``
so repeated invocations only pay for what changed; a throughput summary
(seeds/s, cache hits) is printed to stderr after each run.
"""

from __future__ import annotations

import argparse
import sys
import time


def _add_int(parser: argparse.ArgumentParser, name: str, default: int, help_text: str):
    parser.add_argument(name, type=int, default=default, help=help_text)


def _sweep_options() -> argparse.ArgumentParser:
    """Options shared by every subcommand: parallelism and caching."""
    common = argparse.ArgumentParser(add_help=False)
    group = common.add_argument_group("sweep execution")
    group.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process-pool size for seed sweeps "
             "(default: REPRO_WORKERS or all cores; 1 = sequential)",
    )
    group.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the on-disk result cache",
    )
    group.add_argument(
        "--force", action="store_true",
        help="recompute every seed, overwriting cached results",
    )
    group.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache location (default: REPRO_CACHE_DIR or .repro_cache)",
    )
    return common


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Achieving Determinism in Adaptive AUTOSAR' "
            "(DATE 2020): run any experiment and print its figure."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)
    common = _sweep_options()

    fig1 = commands.add_parser(
        "fig1", help="Figure 1: client/server histogram", parents=[common]
    )
    _add_int(fig1, "--seeds", 200, "number of stock-AP runs")

    commands.add_parser(
        "fig3", help="Figure 3: tagged message sequence", parents=[common]
    )

    fig5 = commands.add_parser(
        "fig5", help="Figure 5: error prevalence", parents=[common]
    )
    _add_int(fig5, "--runs", 20, "number of experiment instances")
    _add_int(fig5, "--frames", 2_000, "frames per run (paper: 100000)")

    det = commands.add_parser(
        "det", help="Section IV.B: deterministic variant", parents=[common]
    )
    _add_int(det, "--seeds", 5, "number of seeds")
    _add_int(det, "--frames", 500, "frames per run")

    tradeoff = commands.add_parser(
        "tradeoff", help="deadline vs. error/latency", parents=[common]
    )
    _add_int(tradeoff, "--frames", 300, "frames per point")

    ablation = commands.add_parser(
        "ablation", help="the three sources (II.B)", parents=[common]
    )
    _add_int(ablation, "--seeds", 25, "seeds per configuration")

    overhead = commands.add_parser(
        "overhead", help="cost of determinism", parents=[common]
    )
    _add_int(overhead, "--frames", 400, "frames per variant")

    let = commands.add_parser(
        "let", help="LET baseline comparison", parents=[common]
    )
    _add_int(let, "--frames", 300, "frames")

    commands.add_parser(
        "skew", help="EXT: clock-sync error sweep", parents=[common]
    )
    commands.add_parser(
        "scaling", help="EXT: pipeline-depth latency", parents=[common]
    )
    commands.add_parser(
        "native", help="EXT: native tag transport", parents=[common]
    )

    distributed = commands.add_parser(
        "distributed",
        help="EXT: brake assistant across two processing ECUs",
        parents=[common],
    )
    _add_int(distributed, "--frames", 200, "frames per configuration")

    run_all = commands.add_parser(
        "all", help="run every experiment (default scale)", parents=[common]
    )
    run_all.add_argument(
        "--quick", action="store_true", help="reduced sizes for a fast pass"
    )
    return parser


def _make_sweep(args: argparse.Namespace):
    """A :class:`SweepRunner` configured from the common CLI options."""
    from repro.harness.sweep import SweepRunner

    return SweepRunner(
        workers=args.workers,
        use_cache=False if args.no_cache else None,
        force=args.force,
        cache_dir=args.cache_dir,
    )


def _run_one(name: str, args: argparse.Namespace, sweep) -> str:
    from repro.harness import extensions, figures

    if name == "fig1":
        return figures.figure1(nondet_seeds=args.seeds, sweep=sweep).render()
    if name == "fig3":
        return figures.figure3_sequence().render()
    if name == "fig5":
        return figures.figure5(
            n_runs=args.runs, n_frames=args.frames, sweep=sweep
        ).render()
    if name == "det":
        return figures.det_case_study(
            n_seeds=args.seeds, n_frames=args.frames, sweep=sweep
        ).render()
    if name == "tradeoff":
        return figures.tradeoff(n_frames=args.frames, sweep=sweep).render()
    if name == "ablation":
        return figures.ablation_sources(n_seeds=args.seeds, sweep=sweep).render()
    if name == "overhead":
        return figures.overhead(n_frames=args.frames, sweep=sweep).render()
    if name == "let":
        return figures.let_baseline(n_frames=args.frames, sweep=sweep).render()
    if name == "skew":
        return extensions.clock_skew_sweep(sweep=sweep).render()
    if name == "scaling":
        return extensions.pipeline_scaling(sweep=sweep).render()
    if name == "native":
        return extensions.native_transport_comparison(sweep=sweep).render()
    if name == "distributed":
        return _render_distributed(args.frames, sweep)
    raise ValueError(f"unknown command {name!r}")


def _distributed_point(configuration, frames: int):
    """One (skew, assumed E) distributed run (runs in a worker)."""
    from repro.apps.brake import BrakeScenario, run_det_brake_assistant

    skew, error = configuration
    scenario = BrakeScenario(
        n_frames=frames, distributed=True,
        processing_clock_skew_ns=skew, clock_error_ns=error,
    )
    return run_det_brake_assistant(0, scenario)


def _render_distributed(frames: int, sweep) -> str:
    from functools import partial

    from repro.analysis.report import render_table
    from repro.time import MS

    configurations = [(0, 0), (15 * MS, 0), (20 * MS, 25 * MS)]
    runs = sweep.map(
        partial(_distributed_point, frames=frames),
        configurations,
        name="ext-dist",
        params={"frames": frames},
    )
    rows = []
    for (skew, error), run in zip(configurations, runs):
        rows.append([
            f"{skew / 1e6:.0f} ms", f"{error / 1e6:.0f} ms",
            str(run.stp_violations), f"{len(run.commands)}/{frames}",
        ])
    return render_table(
        ["clock skew", "assumed E", "STP violations", "frames answered"],
        rows,
        title="EXT-DIST - distributed brake assistant:",
    )


_ALL = (
    "fig1", "fig3", "fig5", "det", "tradeoff", "ablation",
    "overhead", "let", "skew", "scaling", "native", "distributed",
)

_QUICK_SIZES = {
    "fig1": {"seeds": 40},
    "fig5": {"runs": 6, "frames": 400},
    "det": {"seeds": 2, "frames": 150},
    "tradeoff": {"frames": 100},
    "ablation": {"seeds": 8},
    "overhead": {"frames": 150},
    "let": {"frames": 100},
    "distributed": {"frames": 100},
}


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    sweep = _make_sweep(args)
    if args.command != "all":
        print(_run_one(args.command, args, sweep))
        if sweep.stats.sweeps:
            print(sweep.stats.summary_line(), file=sys.stderr)
        return 0
    for name in _ALL:
        sub_args = build_parser().parse_args([name])
        if args.quick:
            for key, value in _QUICK_SIZES.get(name, {}).items():
                setattr(sub_args, key, value)
        started = time.time()
        print(f"==== {name} " + "=" * (60 - len(name)))
        print(_run_one(name, sub_args, sweep))
        print(f"---- {name} done in {time.time() - started:.1f}s\n")
    if sweep.stats.sweeps:
        print(sweep.stats.summary_line(), file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
