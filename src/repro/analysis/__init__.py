"""Analysis utilities: statistics, trace comparison, text reports."""

from repro.analysis.stats import Summary, summarize
from repro.analysis.traces import compare_traces, first_divergence
from repro.analysis.report import ascii_bar_chart, histogram_table, render_table
from repro.analysis.persistence import diff_trace_files, load_trace, save_trace

__all__ = [
    "Summary",
    "summarize",
    "compare_traces",
    "first_divergence",
    "render_table",
    "ascii_bar_chart",
    "histogram_table",
    "save_trace",
    "load_trace",
    "diff_trace_files",
]
