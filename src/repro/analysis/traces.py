"""Comparing logical traces.

Fingerprints (:meth:`repro.reactors.telemetry.Trace.fingerprint`) answer
"are these runs identical?"; these helpers answer "where do they differ?"
which is what you want when a determinism check fails.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.reactors.telemetry import Trace


@dataclass(frozen=True)
class TraceDivergence:
    """The first point at which two traces disagree."""

    index: int
    left_line: str | None
    right_line: str | None

    def __str__(self) -> str:
        return (
            f"traces diverge at record {self.index}:\n"
            f"  left:  {self.left_line}\n"
            f"  right: {self.right_line}"
        )


def first_divergence(left: Trace, right: Trace) -> TraceDivergence | None:
    """The first differing record, or ``None`` when traces are equal."""
    left_lines = left.lines()
    right_lines = right.lines()
    for index, (a, b) in enumerate(zip(left_lines, right_lines)):
        if a != b:
            return TraceDivergence(index, a, b)
    if len(left_lines) != len(right_lines):
        index = min(len(left_lines), len(right_lines))
        longer_left = len(left_lines) > len(right_lines)
        return TraceDivergence(
            index,
            left_lines[index] if longer_left else None,
            None if longer_left else right_lines[index],
        )
    return None


def compare_traces(traces: list[Trace]) -> bool:
    """Whether all *traces* are identical (at least one required)."""
    if not traces:
        raise ValueError("need at least one trace")
    reference = traces[0].fingerprint()
    return all(trace.fingerprint() == reference for trace in traces[1:])
