"""Summary statistics for experiment results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float

    def row(self, scale: float = 1.0, fmt: str = "{:.3f}") -> list[str]:
        """Render as table cells, values multiplied by *scale*."""
        return [
            str(self.count),
            fmt.format(self.mean * scale),
            fmt.format(self.std * scale),
            fmt.format(self.minimum * scale),
            fmt.format(self.median * scale),
            fmt.format(self.maximum * scale),
        ]

    @staticmethod
    def header() -> list[str]:
        """Column names matching :meth:`row`."""
        return ["n", "mean", "std", "min", "median", "max"]


def summarize(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` of *values*."""
    if not values:
        raise ValueError("cannot summarize an empty sample")
    array = np.asarray(list(values), dtype=float)
    return Summary(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std(ddof=0)),
        minimum=float(array.min()),
        p25=float(np.percentile(array, 25)),
        median=float(np.percentile(array, 50)),
        p75=float(np.percentile(array, 75)),
        maximum=float(array.max()),
    )
