"""Plain-text rendering of experiment outputs.

The benchmark harness prints the paper's figures as text: Figure 1
becomes a probability histogram, Figure 5 a sorted stacked bar chart.
Everything renders with plain ASCII so it reads the same in any log.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]], title: str | None = None
) -> str:
    """Fixed-width table with a header rule."""
    columns = len(headers)
    widths = [len(str(header)) for header in headers]
    for row in rows:
        if len(row) != columns:
            raise ValueError("row width does not match headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(str(cell).rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)


def sweep_summary(
    *,
    seeds: int,
    elapsed_s: float,
    cache_hits: int,
    errors: int,
    workers: int,
) -> str:
    """One-line throughput summary of a seeded sweep.

    Printed by the CLI and the benchmark drivers after each experiment,
    e.g. ``sweep: 20 seeds in 1.9s (10.4 seeds/s, 12 cache hits,
    0 errors, 4 workers)``.
    """
    rate = seeds / elapsed_s if elapsed_s > 0 else 0.0
    return (
        f"sweep: {seeds} seeds in {elapsed_s:.1f}s "
        f"({rate:.1f} seeds/s, {cache_hits} cache hits, "
        f"{errors} errors, {workers} workers)"
    )


def histogram_table(
    counts: Mapping[int, int], title: str, width: int = 40
) -> str:
    """Probability histogram like the paper's Figure 1 (right side)."""
    total = sum(counts.values())
    if total == 0:
        raise ValueError("empty histogram")
    lines = [title]
    for value in sorted(counts):
        probability = counts[value] / total
        bar = "#" * max(1 if counts[value] else 0, round(probability * width))
        lines.append(f"  {value}: {probability:6.3f} |{bar}")
    return "\n".join(lines)


def _errors_line(errors: Mapping[str, int]) -> str:
    nonzero = {name: count for name, count in errors.items() if count}
    if not nonzero:
        return "none"
    return "  ".join(f"{name}={count}" for name, count in sorted(nonzero.items()))


def exploration_report(result) -> str:
    """Human-readable rendering of an exploration run.

    *result* is an :class:`repro.explore.explorer.ExplorationResult`;
    duck-typed so this module stays free of explore imports.
    """
    lines = [
        f"explore ({result.strategy}): "
        + (
            f"failing schedule found at execution {result.found.index}"
            if result.found is not None
            else f"no failure in {len(result.executions)} executions"
        ),
        f"  budget: {result.executions_used}/{result.budget} executions used, "
        f"horizon {result.horizon} dispatches",
    ]
    if result.found is not None:
        schedule = result.found.schedule
        lines.append(
            f"  schedule: base seed {schedule.base_seed}, "
            f"{len(schedule.preemptions)} preemption point(s)"
        )
        for point in schedule.preemptions:
            lines.append(f"    {point.describe()}")
        lines.append(f"  errors: {_errors_line(result.found.errors)}")
    snapshots = getattr(result, "snapshots", None)
    if snapshots is not None:
        lines.append(f"  {snapshots.describe()}")
    return "\n".join(lines)


def shrink_report(result) -> str:
    """Human-readable rendering of a ddmin shrink.

    *result* is a :class:`repro.explore.shrink.ShrinkResult`.  The
    payoff line is the diagnosis: the failure needs *exactly* the
    remaining preemptions — removing any one of them makes it vanish.
    """
    kept = len(result.minimal.preemptions)
    lines = [
        f"shrink: {len(result.original.preemptions)} -> {kept} "
        f"preemption(s) in {result.trials} trials "
        f"({result.removed} removed)",
        f"  the failure needs exactly "
        + (f"these {kept} preemptions:" if kept != 1 else "this 1 preemption:"),
    ]
    for point in result.minimal.preemptions:
        lines.append(f"    {point.describe()}")
    lines.append(f"  errors: {_errors_line(result.errors)}")
    return "\n".join(lines)


def verification_report(result) -> str:
    """Human-readable rendering of a determinism verification.

    *result* is a :class:`repro.explore.verify.VerificationResult`.
    """
    lines = [
        f"determinism verification: {result.schedules} schedules",
        f"  identical: {result.identical}  flagged: {len(result.flagged)}  "
        f"silent divergences: {len(result.silent_divergences)}",
    ]
    for verdict in result.silent_divergences:
        lines.append(f"  SILENT DIVERGENCE: {verdict.label}")
    lines.append(
        "  verdict: "
        + (
            "OK - divergence only ever with a violation flagged"
            if result.ok
            else "FAILED - trace diverged without any violation flagged"
        )
    )
    return "\n".join(lines)


def ascii_bar_chart(
    rows: Sequence[tuple[str, Mapping[str, float]]],
    categories: Sequence[str],
    title: str,
    width: int = 50,
    unit: str = "%",
) -> str:
    """Stacked horizontal bars like the paper's Figure 5.

    *rows* is ``[(label, {category: value})]``; each bar is scaled to the
    global maximum total and drawn with one letter per category.
    """
    letters = {}
    for index, category in enumerate(categories):
        letters[category] = chr(ord("A") + index)
    totals = [sum(values.values()) for _label, values in rows]
    maximum = max(totals) if totals else 0.0
    lines = [title]
    for category in categories:
        lines.append(f"  {letters[category]} = {category}")
    for (label, values), total in zip(rows, totals):
        bar = ""
        if maximum > 0:
            for category in categories:
                segment = round(values.get(category, 0.0) / maximum * width)
                bar += letters[category] * segment
        lines.append(f"  {label:>12} {total:8.3f}{unit} |{bar}")
    return "\n".join(lines)
