"""Saving, loading and diffing logical traces.

A determinism library lives or dies by its debugging story: when two
runs that should match do not, you want the traces on disk and the
first divergence located.  The format is JSON-lines with a small
header, so traces from different machines/versions can be compared with
standard tools as well.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.traces import TraceDivergence, first_divergence
from repro.reactors.telemetry import Trace, TraceRecord
from repro.time.tag import Tag

#: Format marker written in the header line.
FORMAT = "repro-trace-v1"


def save_trace(trace: Trace, path: str | Path) -> int:
    """Write *trace* to *path*; returns the number of records written."""
    path = Path(path)
    with path.open("w") as handle:
        header = {
            "format": FORMAT,
            "records": len(trace.records),
            "fingerprint": trace.fingerprint(),
        }
        handle.write(json.dumps(header) + "\n")
        for record in trace.records:
            handle.write(
                json.dumps(
                    {
                        "t": record.tag.time,
                        "m": record.tag.microstep,
                        "k": record.kind,
                        "n": record.name,
                        "v": record.value,
                    }
                )
                + "\n"
            )
    return len(trace.records)


def load_trace(path: str | Path) -> Trace:
    """Read a trace written by :func:`save_trace`.

    The stored fingerprint is verified against the reloaded records, so
    a corrupted or hand-edited file is detected immediately.
    """
    path = Path(path)
    with path.open() as handle:
        header = json.loads(handle.readline())
        if header.get("format") != FORMAT:
            raise ValueError(f"{path} is not a {FORMAT} file")
        trace = Trace()
        for line in handle:
            entry = json.loads(line)
            trace.records.append(
                TraceRecord(
                    Tag(entry["t"], entry["m"]), entry["k"], entry["n"], entry["v"]
                )
            )
    if trace.fingerprint() != header["fingerprint"]:
        raise ValueError(f"{path}: fingerprint mismatch (file corrupted?)")
    return trace


def diff_trace_files(left: str | Path, right: str | Path) -> TraceDivergence | None:
    """Locate the first divergence between two saved traces."""
    return first_divergence(load_trace(left), load_trace(right))
