"""Time base for the reproduction.

All time values in this library are **integer nanoseconds**.  Floating
point time would introduce rounding that is itself a source of
nondeterminism, which would defeat the purpose of the paper's model.

Three concepts live here:

* :mod:`repro.time.duration` — helpers to construct and format durations;
* :mod:`repro.time.tag` — the reactor model's superdense time
  ``Tag = (time, microstep)``;
* :mod:`repro.time.clock` — physical clocks with offset, drift and
  read-jitter relative to the simulation's global timeline, as needed to
  model the bounded clock-synchronization error ``E`` of the paper.
"""

from repro.time.duration import (
    NS,
    US,
    MS,
    SEC,
    MIN,
    Duration,
    duration,
    format_duration,
    nsec,
    usec,
    msec,
    sec,
)
from repro.time.tag import FOREVER, NEVER, Tag
from repro.time.clock import ClockModel, PhysicalClock

__all__ = [
    "NS",
    "US",
    "MS",
    "SEC",
    "MIN",
    "Duration",
    "duration",
    "format_duration",
    "nsec",
    "usec",
    "msec",
    "sec",
    "Tag",
    "FOREVER",
    "NEVER",
    "ClockModel",
    "PhysicalClock",
]
