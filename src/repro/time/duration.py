"""Durations as integer nanoseconds.

A duration is a plain ``int`` counting nanoseconds.  We deliberately avoid
a wrapper class on the hot path (the simulator compares and adds times
millions of times per run); instead this module provides constructors,
unit constants and parsing/formatting helpers.  The :data:`Duration` alias
documents intent in signatures.
"""

from __future__ import annotations

import re

#: Type alias used in signatures: a duration in integer nanoseconds.
Duration = int

#: One nanosecond.
NS: Duration = 1
#: One microsecond in nanoseconds.
US: Duration = 1_000
#: One millisecond in nanoseconds.
MS: Duration = 1_000_000
#: One second in nanoseconds.
SEC: Duration = 1_000_000_000
#: One minute in nanoseconds.
MIN: Duration = 60 * SEC

_UNIT_FACTORS: dict[str, int] = {
    "ns": NS,
    "nsec": NS,
    "us": US,
    "usec": US,
    "ms": MS,
    "msec": MS,
    "s": SEC,
    "sec": SEC,
    "min": MIN,
}

_DURATION_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([a-z]+)\s*$")


def nsec(value: int) -> Duration:
    """Return *value* nanoseconds."""
    return int(value) * NS


def usec(value: int) -> Duration:
    """Return *value* microseconds as nanoseconds."""
    return int(value) * US


def msec(value: int) -> Duration:
    """Return *value* milliseconds as nanoseconds."""
    return int(value) * MS


def sec(value: int) -> Duration:
    """Return *value* seconds as nanoseconds."""
    return int(value) * SEC


def duration(spec: str | int) -> Duration:
    """Parse a duration.

    Accepts either an ``int`` (taken as nanoseconds) or a string such as
    ``"50ms"``, ``"5 us"``, ``"1.5s"``.  Fractional values are permitted
    in strings as long as the result is a whole number of nanoseconds.

    >>> duration("50ms")
    50000000
    >>> duration("1.5s")
    1500000000
    """
    if isinstance(spec, int):
        return spec
    match = _DURATION_RE.match(spec.lower())
    if match is None:
        raise ValueError(f"cannot parse duration {spec!r}")
    magnitude, unit = match.groups()
    if unit not in _UNIT_FACTORS:
        raise ValueError(f"unknown time unit {unit!r} in {spec!r}")
    scaled = float(magnitude) * _UNIT_FACTORS[unit]
    rounded = round(scaled)
    if abs(scaled - rounded) > 1e-6:
        raise ValueError(f"duration {spec!r} is not a whole number of ns")
    return rounded


def format_duration(value: Duration) -> str:
    """Format a nanosecond duration with the largest exact unit.

    >>> format_duration(50 * MS)
    '50ms'
    >>> format_duration(1500)
    '1500ns'
    """
    if value == 0:
        return "0s"
    sign = "-" if value < 0 else ""
    magnitude = abs(value)
    for unit, factor in (("s", SEC), ("ms", MS), ("us", US)):
        if magnitude % factor == 0:
            return f"{sign}{magnitude // factor}{unit}"
    return f"{sign}{magnitude}ns"
