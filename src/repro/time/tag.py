"""Superdense time tags for the reactor model.

A tag ``(time, microstep)`` identifies a logical instant.  Events with the
same time but different microsteps are logically ordered but take place at
the same *physical* instant; the microstep dimension is what lets a
logical action scheduled with zero delay be strictly *after* the reaction
that scheduled it without advancing time.

Tags are totally ordered lexicographically and immutable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.time.duration import Duration, format_duration


@dataclass(frozen=True, order=True, slots=True)
class Tag:
    """A point in superdense logical time.

    Attributes:
        time: logical time in integer nanoseconds since simulation start.
        microstep: index within the same logical time.
    """

    time: int
    microstep: int = 0

    def __post_init__(self) -> None:
        if self.microstep < 0:
            raise ValueError("microstep must be non-negative")

    def delay(self, duration: Duration) -> "Tag":
        """Return the tag obtained by delaying this one.

        A strictly positive *duration* advances logical time and resets the
        microstep; a zero *duration* advances only the microstep.  This is
        the standard reactor-model delay rule used when scheduling logical
        actions and when routing events through delayed connections.
        """
        if duration < 0:
            raise ValueError("cannot delay a tag by a negative duration")
        if duration == 0:
            return Tag(self.time, self.microstep + 1)
        return Tag(self.time + duration, 0)

    def advance_to(self, time: int) -> "Tag":
        """Return the earliest tag at *time* that is after this tag."""
        if time < self.time:
            raise ValueError("cannot advance a tag backwards in time")
        if time == self.time:
            return Tag(self.time, self.microstep + 1)
        return Tag(time, 0)

    def is_after(self, other: "Tag") -> bool:
        """Whether this tag is strictly after *other*."""
        return self > other

    def __str__(self) -> str:
        return f"({format_duration(self.time)}, {self.microstep})"

    def __repr__(self) -> str:
        return f"Tag(time={self.time}, microstep={self.microstep})"

    def as_tuple(self) -> tuple[int, int]:
        """Return ``(time, microstep)`` for serialization."""
        return (self.time, self.microstep)

    @staticmethod
    def from_tuple(value: tuple[int, int] | list[int] | Any) -> "Tag":
        """Reconstruct a tag from :meth:`as_tuple` output."""
        time, microstep = value
        return Tag(int(time), int(microstep))


#: A tag later than every achievable tag (used as "no event pending").
FOREVER = Tag(2**62, 0)

#: A tag earlier than every achievable tag (used as "before startup").
NEVER = Tag(-(2**62), 0)
