"""Physical clocks with bounded synchronization error.

The paper's distributed coordination (PTIDES safe-to-process analysis)
assumes platforms have synchronized physical clocks with a bounded error
``E``.  AUTOSAR AP specifies such synchronization.  We model each
platform's clock as an affine-plus-noise function of the simulator's
*global* timeline:

``local(t) = t + offset + drift_ppb * t / 1e9  (+ read jitter)``

with all terms integers so clock reads stay deterministic for a given RNG
stream.  :meth:`ClockModel.sync_error_bound` computes a bound on
``|local(t) - t|`` over a mission duration, which feeds the ``E`` term of
the safe-to-process rule.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.time.duration import Duration


@dataclass(frozen=True, slots=True)
class ClockModel:
    """Parameters of a platform clock relative to global time.

    Attributes:
        offset_ns: constant offset from global time.
        drift_ppb: rate deviation in parts per billion (an ideal clock has
            0; real oscillators are tens of ppm, i.e. tens of thousands of
            ppb, but a synchronized AP clock is much tighter).
        read_jitter_ns: maximum magnitude of uniformly distributed noise
            added to each read (models read granularity / sync wobble).
    """

    offset_ns: int = 0
    drift_ppb: int = 0
    read_jitter_ns: int = 0

    def sync_error_bound(self, mission_ns: Duration) -> int:
        """Upper bound on ``|local - global|`` over *mission_ns*.

        This is the value to use for the paper's clock-synchronization
        error ``E`` when platforms use this model.
        """
        drift_term = abs(self.drift_ppb) * mission_ns // 1_000_000_000 + 1
        if self.drift_ppb == 0:
            drift_term = 0
        return abs(self.offset_ns) + drift_term + self.read_jitter_ns

    @staticmethod
    def perfect() -> "ClockModel":
        """An ideal clock identical to global time."""
        return ClockModel(0, 0, 0)


class PhysicalClock:
    """A readable physical clock owned by a platform.

    The clock converts the simulator's global time into the platform's
    local time.  Jitter is drawn from the RNG stream supplied at
    construction, so reads are reproducible per experiment seed.
    """

    def __init__(self, model: ClockModel, rng=None) -> None:
        self._model = model
        self._rng = rng
        self._last_read: int | None = None

    @property
    def model(self) -> ClockModel:
        """The clock's parameter set."""
        return self._model

    def apply_fault(
        self, global_time: int, step_ns: int = 0, drift_ppb: int = 0
    ) -> None:
        """Step the clock and/or change its rate at *global_time*.

        Models a time-sync fault (``repro.faults`` clock faults): local
        time jumps by exactly *step_ns* at the fault instant, and from
        then on the rate deviates by an additional *drift_ppb*.  The
        offset is rebased so the drift change is not retroactive — the
        only discontinuity is the requested step.  Backwards steps are
        visible to :meth:`local_time` (and the STP analysis) while
        :meth:`read` keeps its monotonic-clock guarantee.
        """
        # local(t) gains drift_ppb*t/1e9 from the rate change; cancel the
        # accumulated part at the fault instant so only step_ns jumps.
        rebase = drift_ppb * global_time // 1_000_000_000
        self._model = replace(
            self._model,
            offset_ns=self._model.offset_ns + step_ns - rebase,
            drift_ppb=self._model.drift_ppb + drift_ppb,
        )

    def local_time(self, global_time: int) -> int:
        """Convert *global_time* to local time, without jitter.

        This is the deterministic core mapping; :meth:`read` adds jitter.
        """
        drift = self._model.drift_ppb * global_time // 1_000_000_000
        return global_time + self._model.offset_ns + drift

    def read(self, global_time: int) -> int:
        """Read the clock at *global_time*, monotonically.

        Adds uniform read jitter (if configured) and clamps so that
        successive reads never go backwards, as a real monotonic clock API
        guarantees.
        """
        value = self.local_time(global_time)
        jitter_bound = self._model.read_jitter_ns
        if jitter_bound and self._rng is not None:
            value += self._rng.randint(-jitter_bound, jitter_bound)
        if self._last_read is not None and value < self._last_read:
            value = self._last_read
        self._last_read = value
        return value

    def global_time_for(self, local_time: int) -> int:
        """Invert :meth:`local_time` (ignoring jitter).

        Used by the simulation to convert "wake me at local time T"
        requests into global event times.  With drift the inversion is
        exact up to 1 ns due to integer division; we round so the local
        deadline is never undershot.
        """
        base = local_time - self._model.offset_ns
        if self._model.drift_ppb == 0:
            return base
        # local = g + offset + drift*g/1e9  =>  g = (local - offset) / (1 + drift/1e9)
        denominator = 1_000_000_000 + self._model.drift_ppb
        numerator = base * 1_000_000_000
        global_time = numerator // denominator
        while self.local_time(global_time) < local_time:
            global_time += 1
        return global_time
