"""Reproduction of *Achieving Determinism in Adaptive AUTOSAR* (DATE 2020).

The package provides, bottom-up:

* :mod:`repro.time` — integer-nanosecond time, superdense tags, clocks;
* :mod:`repro.sim` — a deterministic discrete-event simulator with
  seeded-random thread scheduling (the "hardware/OS" substrate);
* :mod:`repro.network` — links, switch and latency models;
* :mod:`repro.someip` — a SOME/IP middleware with service discovery and
  the paper's tagged-message extension;
* :mod:`repro.ara` — the AUTOSAR Adaptive runtime API: service
  interfaces, futures, generated proxies and skeletons;
* :mod:`repro.reactors` — a full reactor-model runtime (the programming
  model the paper proposes);
* :mod:`repro.dear` — the DEAR framework: transactors, timestamp bypass
  and PTIDES-style safe-to-process coordination;
* :mod:`repro.let` — a logical-execution-time baseline;
* :mod:`repro.apps` — the paper's applications (Figure 1 client/server,
  brake assistant in stock-AP and DEAR variants);
* :mod:`repro.analysis`, :mod:`repro.harness` — statistics, determinism
  checking and the experiment driver regenerating the paper's figures.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
