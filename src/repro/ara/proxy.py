"""Service proxies — the client side of Figure 2.

A :class:`ServiceProxy` is "generated" from a :class:`ServiceInterface`
at construction: every interface method becomes a callable attribute
that serializes its arguments, hands the request to the SOME/IP binding
and immediately returns an ``ara::core::Future`` — the non-blocking call
style whose misuse the paper's Figure 1 demonstrates.

Event subscription handlers are, by default, dispatched through the
process's worker pool (middleware threads), so the *order* in which
handlers for different events run is up to the thread scheduler.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.errors import AraError
from repro.ara.future import Future, Promise
from repro.ara.interface import Method, ServiceInterface
from repro.someip.runtime import SomeIpEndpoint
from repro.someip.sd import ServiceEntry
from repro.someip.wire import ReturnCode
from repro.time.tag import Tag


def unwrap_payload(names: list[str], data: dict) -> Any:
    """Collapse a wire struct into a friendly Python value.

    Zero fields -> ``None``; one field -> its bare value; otherwise the
    dict itself.
    """
    if not names:
        return None
    if len(names) == 1:
        return data[names[0]]
    return data


def wrap_payload(names: list[str], value: Any, what: str) -> dict:
    """Inverse of :func:`unwrap_payload`, with validation."""
    if not names:
        if value is not None:
            raise AraError(f"{what} takes no data, got {value!r}")
        return {}
    if isinstance(value, dict) and set(value) == set(names):
        return value
    if len(names) == 1:
        return {names[0]: value}
    raise AraError(f"{what} needs fields {names}, got {value!r}")


class MethodCallError(AraError):
    """A method call failed middleware-side (non-OK SOME/IP return code)."""

    def __init__(self, method_name: str, return_code: ReturnCode) -> None:
        super().__init__(f"call to {method_name!r} failed: {return_code.name}")
        self.method_name = method_name
        self.return_code = return_code


class ProxyMethod:
    """A bound, callable proxy method returning a future."""

    def __init__(self, proxy: "ServiceProxy", method: Method) -> None:
        self._proxy = proxy
        self.method = method

    def __call__(
        self, *args: Any, timeout_ns: int | None = None, **kwargs: Any
    ) -> Future:
        method = self.method
        names = method.argument_names
        if args:
            if len(args) > len(names):
                raise AraError(f"too many arguments for {method.name!r}")
            for name, value in zip(names, args):
                if name in kwargs:
                    raise AraError(f"duplicate argument {name!r}")
                kwargs[name] = value
        payload = method.request_spec.to_bytes(kwargs)
        proxy = self._proxy
        promise = Promise(proxy.platform, f"{method.name}.result")

        def completion(code: ReturnCode, data: bytes, _tag: Tag | None) -> None:
            if code is not ReturnCode.E_OK:
                promise.set_error(MethodCallError(method.name, code))
                return
            result = method.response_spec.from_bytes(data)
            promise.set_value(unwrap_payload(method.return_names, result))

        proxy.endpoint.send_request(
            proxy.entry,
            method.method_id,
            payload,
            completion,
            fire_and_forget=method.fire_and_forget,
            timeout_ns=timeout_ns,
        )
        return promise.future

    def __repr__(self) -> str:
        return f"ProxyMethod({self.method.name!r})"


class ProxyField:
    """Client-side accessor for a service field."""

    def __init__(self, proxy: "ServiceProxy", name: str) -> None:
        self._proxy = proxy
        self.name = name
        elements = proxy.interface.field_elements(name)
        self._get = elements["get"]
        self._set = elements["set"]
        self._notify = elements["notify"]

    def get(self) -> Future:
        """Request the current value; returns a future."""
        if self._get is None:
            raise AraError(f"field {self.name!r} has no getter")
        return self._proxy.call(self._get.name)

    def set(self, value: Any) -> Future:
        """Request a value change; the future resolves to the new value."""
        if self._set is None:
            raise AraError(f"field {self.name!r} has no setter")
        return self._proxy.call(self._set.name, value=value)

    def subscribe(self, handler: Callable, via_pool: bool = True) -> None:
        """Subscribe to change notifications."""
        if self._notify is None:
            raise AraError(f"field {self.name!r} has no notifier")
        self._proxy.subscribe(self._notify.name, handler, via_pool=via_pool)


class ServiceProxy:
    """The client's view of one remote service instance."""

    def __init__(
        self,
        process: "AraProcess",  # noqa: F821 - circular type, see ara.process
        interface: ServiceInterface,
        entry: ServiceEntry,
    ) -> None:
        if entry.service_id != interface.service_id:
            raise AraError(
                f"entry service 0x{entry.service_id:04x} does not match "
                f"interface 0x{interface.service_id:04x}"
            )
        if entry.major_version != interface.major_version:
            raise AraError(
                f"major version mismatch: offered {entry.major_version}, "
                f"interface wants {interface.major_version}"
            )
        self.process = process
        self.interface = interface
        self.entry = entry
        self._methods: dict[str, ProxyMethod] = {}
        for method in interface.methods:
            bound = ProxyMethod(self, method)
            self._methods[method.name] = bound
            if not hasattr(self, method.name):
                setattr(self, method.name, bound)

    # -- plumbing ------------------------------------------------------------

    @property
    def platform(self):
        """The platform the owning process runs on."""
        return self.process.platform

    @property
    def endpoint(self) -> SomeIpEndpoint:
        """The owning process's SOME/IP endpoint."""
        return self.process.endpoint

    # -- methods ----------------------------------------------------------------

    def call(self, method_name: str, *args: Any, **kwargs: Any) -> Future:
        """Invoke a method by name (explicit form of the attribute call)."""
        return self._methods[method_name](*args, **kwargs)

    def method(self, method_name: str) -> ProxyMethod:
        """The bound proxy method object for *method_name*."""
        return self._methods[method_name]

    # -- events ------------------------------------------------------------------

    def subscribe(
        self, event_name: str, handler: Callable, via_pool: bool = True
    ) -> None:
        """Subscribe to an event.

        With ``via_pool`` (the default, matching AP), *handler* runs on a
        middleware worker thread and may be a plain function or a
        generator function (simulated work).  With ``via_pool=False`` the
        handler runs synchronously in the receive path (kernel context)
        and must not block — this is what DEAR transactors use.
        """
        event = self.interface.event(event_name)
        names = [name for name, _ in event.data]
        process = self.process

        def on_notification(payload: bytes, _tag: Tag | None) -> None:
            data = event.data_spec.from_bytes(payload)
            value = unwrap_payload(names, data)
            if via_pool:
                process.pool.submit(lambda: _as_generator(handler, value))
            else:
                handler(value)

        self.endpoint.subscribe_event(self.entry, event.event_id, on_notification)

    def subscribe_raw(
        self, event_name: str, handler: Callable[[dict, Tag | None], None]
    ) -> None:
        """Subscribe with a kernel-context handler that also receives the tag.

        Used by DEAR's client event transactor, which needs the tag that
        the modified binding extracted from the notification.
        """
        event = self.interface.event(event_name)

        def on_notification(payload: bytes, tag: Tag | None) -> None:
            handler(event.data_spec.from_bytes(payload), tag)

        self.endpoint.subscribe_event(self.entry, event.event_id, on_notification)

    # -- fields ---------------------------------------------------------------------

    def field(self, name: str) -> ProxyField:
        """Accessor for field *name*."""
        return ProxyField(self, name)

    def __repr__(self) -> str:
        return (
            f"ServiceProxy({self.interface.name!r} @ "
            f"{self.entry.host}:{self.entry.port})"
        )


def _as_generator(handler: Callable, value: Any) -> Generator[Any, Any, None]:
    """Run *handler(value)*, supporting plain and generator functions."""
    result = handler(value)
    if result is not None and hasattr(result, "__next__"):
        yield from result
