"""``ara::core::Future`` / ``Promise`` for simulated threads.

Service method calls in AP are non-blocking and return a future; the
server fulfils the corresponding promise when its (possibly
asynchronous) implementation completes.  The Figure 1 bug depends on
exactly this: the client may *choose* not to wait on the future, leaving
call ordering to the middleware.

Futures here can be fulfilled from kernel context (the SOME/IP response
path) or thread context, and waited on from simulated threads via
``yield from future.get()``.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Generator

from repro.errors import FutureError
from repro.sim.platform import Platform
from repro.sim.process import Acquire, Release, Wait, WaitResult, WaitUntil


class FutureState(enum.Enum):
    """Lifecycle of a future."""

    PENDING = "pending"
    RESOLVED = "resolved"
    REJECTED = "rejected"


class Future:
    """A single-assignment result container."""

    def __init__(self, platform: Platform, name: str = "future") -> None:
        self._platform = platform
        self._state = FutureState.PENDING
        self._value: Any = None
        self._error: BaseException | None = None
        self._mutex = platform.mutex(f"{name}.mutex")
        self._cv = platform.condvar(f"{name}.cv")
        self._callbacks: list[Callable[["Future"], None]] = []

    # -- inspection ---------------------------------------------------------

    @property
    def state(self) -> FutureState:
        """Current state."""
        return self._state

    def is_ready(self) -> bool:
        """Whether a value or error is available."""
        return self._state is not FutureState.PENDING

    # -- completion (producer side) -------------------------------------------

    def _complete(self, state: FutureState, value: Any, error) -> None:
        if self._state is not FutureState.PENDING:
            raise FutureError("future already completed")
        self._state = state
        self._value = value
        self._error = error
        scheduler = self._platform.scheduler
        scheduler.external_notify_all(self._cv)
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    # -- consumption -----------------------------------------------------------

    def then(self, callback: Callable[["Future"], None]) -> None:
        """Invoke *callback(self)* once completed (immediately if ready).

        Callbacks run in whatever context completes the future — usually
        the middleware receive path — so they must not block.
        """
        if self.is_ready():
            callback(self)
        else:
            self._callbacks.append(callback)

    def result(self) -> Any:
        """Return the value (or raise the error) without blocking.

        Raises :class:`FutureError` if the future is still pending.
        """
        if self._state is FutureState.PENDING:
            raise FutureError("future is not ready")
        if self._state is FutureState.REJECTED:
            raise self._error
        return self._value

    def get(self) -> Generator[Any, Any, Any]:
        """Thread context: block until completed, then return/raise."""
        yield Acquire(self._mutex)
        while not self.is_ready():
            yield Wait(self._cv, self._mutex)
        yield Release(self._mutex)
        return self.result()

    def wait_until(self, local_deadline: int) -> Generator[Any, Any, bool]:
        """Thread context: block until ready or *local_deadline*.

        Returns ``True`` when the future completed in time.
        """
        yield Acquire(self._mutex)
        while not self.is_ready():
            outcome = yield WaitUntil(self._cv, self._mutex, local_deadline)
            if outcome is WaitResult.TIMEOUT and not self.is_ready():
                yield Release(self._mutex)
                return False
        yield Release(self._mutex)
        return True

    def __repr__(self) -> str:
        return f"Future({self._state.value})"


class Promise:
    """The producer side of a :class:`Future`."""

    def __init__(self, platform: Platform, name: str = "promise") -> None:
        self._future = Future(platform, name)

    @property
    def future(self) -> Future:
        """The associated future."""
        return self._future

    def set_value(self, value: Any = None) -> None:
        """Resolve the future with *value*."""
        self._future._complete(FutureState.RESOLVED, value, None)

    def set_error(self, error: BaseException) -> None:
        """Reject the future with *error*."""
        self._future._complete(FutureState.REJECTED, None, error)

    def __repr__(self) -> str:
        return f"Promise({self._future._state.value})"
