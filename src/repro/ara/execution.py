"""A minimal execution manager.

AP's execution management starts processes in dependency order and
tracks their reported state.  The reproduction needs only a thin
version: ordered startup with per-process start offsets (the *phase
offsets* that Section IV.A identifies as the main driver of the brake
assistant's error-rate variance) and state reporting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from repro.errors import AraError
from repro.sim.world import World


class ProcessState(enum.Enum):
    """Reported execution state of a managed process."""

    IDLE = "idle"
    STARTING = "starting"
    RUNNING = "running"
    TERMINATED = "terminated"


@dataclass
class ManagedProcess:
    """Bookkeeping for one process under execution management."""

    name: str
    start: Callable[[], None]
    dependencies: tuple[str, ...]
    start_offset_ns: int
    state: ProcessState = ProcessState.IDLE


class ExecutionManager:
    """Starts registered processes respecting declared dependencies."""

    def __init__(self, world: World) -> None:
        self._world = world
        self._processes: dict[str, ManagedProcess] = {}

    def register(
        self,
        name: str,
        start: Callable[[], None],
        dependencies: tuple[str, ...] = (),
        start_offset_ns: int = 0,
    ) -> None:
        """Register a process; *start* is invoked at its start time."""
        if name in self._processes:
            raise AraError(f"process {name!r} already registered")
        self._processes[name] = ManagedProcess(
            name, start, dependencies, start_offset_ns
        )

    def state(self, name: str) -> ProcessState:
        """Reported state of process *name*."""
        return self._processes[name].state

    def report_running(self, name: str) -> None:
        """Process self-report: startup complete."""
        self._processes[name].state = ProcessState.RUNNING

    def report_terminated(self, name: str) -> None:
        """Process self-report: shut down."""
        self._processes[name].state = ProcessState.TERMINATED

    def start_all(self) -> None:
        """Schedule every process's start, dependencies first.

        Dependency order is enforced by start time: a process never
        starts earlier than any of its dependencies; its configured
        offset is applied on top.
        """
        order = self._topological_order()
        start_times: dict[str, int] = {}
        for name in order:
            process = self._processes[name]
            earliest = 0
            for dependency in process.dependencies:
                earliest = max(earliest, start_times[dependency])
            start_time = earliest + process.start_offset_ns
            start_times[name] = start_time

            def launch(process=process):
                process.state = ProcessState.STARTING
                process.start()

            self._world.sim.after(start_time, launch)

    def _topological_order(self) -> list[str]:
        visited: dict[str, int] = {}
        order: list[str] = []

        def visit(name: str) -> None:
            mark = visited.get(name, 0)
            if mark == 1:
                raise AraError(f"dependency cycle involving {name!r}")
            if mark == 2:
                return
            if name not in self._processes:
                raise AraError(f"unknown dependency {name!r}")
            visited[name] = 1
            for dependency in self._processes[name].dependencies:
                visit(dependency)
            visited[name] = 2
            order.append(name)

        for name in self._processes:
            visit(name)
        return order
