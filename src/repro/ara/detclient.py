"""The AP "deterministic client" (execution-management specification).

The paper discusses this provision in Section II.B: a task-based,
cyclic programming model that makes the *internals* of one SWC
deterministic — redundantly deployed processes see the same activation
sequence, the same random numbers and a deterministic worker pool.  Its
scope is limited to a single SWC, so (as the paper stresses) it fixes
only the **first** source of nondeterminism; applications composed of
several deterministic clients still misbehave through sources 2 and 3.
We implement it to reproduce that ablation.
"""

from __future__ import annotations

import enum
import hashlib
from typing import Any, Callable, Generator, Sequence

from repro.sim.platform import Platform
from repro.sim.process import SleepUntil


class ActivationReturnType(enum.Enum):
    """What the deterministic client asks the process to do this cycle."""

    REGISTER_SERVICES = "register-services"
    SERVICE_DISCOVERY = "service-discovery"
    INIT = "init"
    RUN = "run"
    TERMINATE = "terminate"


class DeterministicClient:
    """Cyclic, reproducible activation for one SWC.

    Usage (thread context)::

        client = DeterministicClient(platform, cycle_ns=50 * MS, seed=7)
        while True:
            activation = yield from client.wait_for_activation()
            if activation is ActivationReturnType.TERMINATE:
                break
            if activation is ActivationReturnType.RUN:
                ...  # one deterministic step

    The first activations walk through the startup phases in order, then
    every subsequent activation is ``RUN`` on a strict period of the
    local clock.
    """

    _STARTUP = (
        ActivationReturnType.REGISTER_SERVICES,
        ActivationReturnType.SERVICE_DISCOVERY,
        ActivationReturnType.INIT,
    )

    def __init__(
        self,
        platform: Platform,
        cycle_ns: int,
        seed: int = 0,
        offset_ns: int = 0,
        max_cycles: int | None = None,
    ) -> None:
        if cycle_ns <= 0:
            raise ValueError("cycle must be positive")
        self.platform = platform
        self.cycle_ns = cycle_ns
        self.offset_ns = offset_ns
        self.max_cycles = max_cycles
        self._seed = seed
        self._activation_index = 0
        self._run_cycles = 0
        self._anchor: int | None = None

    # -- activation --------------------------------------------------------

    def wait_for_activation(self) -> Generator[Any, Any, ActivationReturnType]:
        """Thread context: block until the next activation point."""
        if self._anchor is None:
            self._anchor = self.platform.local_now() + self.offset_ns
        index = self._activation_index
        self._activation_index += 1
        target = self._anchor + index * self.cycle_ns
        yield SleepUntil(target)
        if index < len(self._STARTUP):
            return self._STARTUP[index]
        if self.max_cycles is not None and self._run_cycles >= self.max_cycles:
            return ActivationReturnType.TERMINATE
        self._run_cycles += 1
        return ActivationReturnType.RUN

    def get_activation_time(self) -> int:
        """The *logical* activation time of the current cycle.

        Defined as ``offset + index * cycle`` — a pure function of the
        activation index, so redundantly executed instances observe
        identical values even when their physical wakeups jitter (a clock
        read here would differ between replicas, which the specification
        forbids).
        """
        if self._activation_index == 0:
            raise RuntimeError("no activation yet")
        return self.offset_ns + (self._activation_index - 1) * self.cycle_ns

    # -- deterministic randomness ------------------------------------------------

    def get_random(self) -> int:
        """A 64-bit random number that is identical across replicas.

        Derived from the seed and the activation index only, per the
        spec's requirement that redundant instances draw identical
        sequences.
        """
        digest = hashlib.sha256(
            f"{self._seed}/{self._activation_index}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big")

    # -- deterministic worker pool ------------------------------------------------

    def run_worker_pool(
        self,
        work: Callable[[Any], Any],
        container: Sequence[Any],
    ) -> list[Any]:
        """Apply *work* to every element with a deterministic result order.

        The spec allows physical parallelism but requires the observable
        result to be independent of it; we model the semantics directly
        by mapping in container order.
        """
        return [work(item) for item in container]

    def __repr__(self) -> str:
        return (
            f"DeterministicClient(cycle={self.cycle_ns}, "
            f"activation={self._activation_index})"
        )
