"""The middleware worker-thread pool.

Per the communication-management specification the paper cites, the AP
runtime *by default maps each method invocation to a different thread*.
This pool is that mechanism: jobs submitted from the receive path are
picked up by whichever worker the OS schedules first, so two jobs
submitted in order may complete — or even *start* — out of order.  This
is the machinery behind the paper's Figure 1 histogram.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.sim.platform import Platform
from repro.sim.sync import MessageQueue

#: A job is a no-argument callable returning a generator (simulated work).
Job = Callable[[], Generator[Any, Any, Any]]


class DispatchPool:
    """A fixed set of worker threads draining a shared job queue."""

    def __init__(self, platform: Platform, name: str, workers: int = 4) -> None:
        if workers < 1:
            raise ValueError("pool needs at least one worker")
        self.platform = platform
        self.name = name
        self.workers = workers
        self._queue: MessageQueue = platform.queue(f"{name}.jobs")
        self._jobs_submitted = 0
        self._jobs_completed = 0
        self._stopped = False
        for index in range(workers):
            platform.spawn(f"{name}.worker{index}", self._worker_loop())

    @property
    def jobs_submitted(self) -> int:
        """Total jobs ever submitted."""
        return self._jobs_submitted

    @property
    def jobs_completed(self) -> int:
        """Total jobs fully executed."""
        return self._jobs_completed

    @property
    def backlog(self) -> int:
        """Jobs waiting in the queue right now."""
        return len(self._queue)

    def submit(self, job: Job) -> None:
        """Queue *job*; callable from kernel or thread context."""
        if self._stopped:
            return
        self._jobs_submitted += 1
        self._queue.post(job)

    def stop(self) -> None:
        """Ask the workers to exit once the queue drains."""
        if self._stopped:
            return
        self._stopped = True
        for _ in range(self.workers):
            self._queue.post(None)

    def _worker_loop(self) -> Generator[Any, Any, None]:
        from repro.sim.process import Yield

        while True:
            job = yield from self._queue.get()
            if job is None:
                return
            # Jobs are dequeued in FIFO order, but each then waits for its
            # worker thread to be scheduled again — so two jobs submitted
            # back-to-back may *execute* in either order, exactly the
            # "order determined purely by the thread scheduler" behaviour
            # the paper describes for AP method dispatch.
            yield Yield()
            yield from job()
            self._jobs_completed += 1

    def __repr__(self) -> str:
        return (
            f"DispatchPool({self.name!r}, workers={self.workers}, "
            f"backlog={self.backlog})"
        )
