"""The ARA layer: AUTOSAR Runtime for Adaptive Applications.

This is the programming API that application SWCs use, mirroring the
``ara::com`` design the paper describes (Section II.A):

* :mod:`repro.ara.interface` — design-time service interface
  descriptions composed of methods, events and fields;
* :mod:`repro.ara.future` — ``ara::core::Future``/``Promise`` on top of
  simulated threads;
* :mod:`repro.ara.pool` — the middleware worker-thread pool that, by
  default, "maps each invocation to a different thread";
* :mod:`repro.ara.proxy` / :mod:`repro.ara.skeleton` — the generated
  communication endpoints of Figure 2, including the three method-call
  processing modes of the communication-management spec;
* :mod:`repro.ara.process` — an adaptive application (one SWC = one
  process) bundling endpoint, SD access and worker pool;
* :mod:`repro.ara.execution` — a minimal execution manager;
* :mod:`repro.ara.detclient` — the AP "deterministic client", which the
  paper notes addresses only the first source of nondeterminism.
"""

from repro.ara.interface import Event, Field, Method, ServiceInterface
from repro.ara.future import Future, FutureState, Promise
from repro.ara.pool import DispatchPool
from repro.ara.proxy import ServiceProxy
from repro.ara.skeleton import MethodCallProcessingMode, ServiceSkeleton
from repro.ara.process import AraProcess
from repro.ara.execution import ExecutionManager, ProcessState
from repro.ara.detclient import ActivationReturnType, DeterministicClient

__all__ = [
    "ServiceInterface",
    "Method",
    "Event",
    "Field",
    "Future",
    "Promise",
    "FutureState",
    "DispatchPool",
    "ServiceProxy",
    "ServiceSkeleton",
    "MethodCallProcessingMode",
    "AraProcess",
    "ExecutionManager",
    "ProcessState",
    "DeterministicClient",
    "ActivationReturnType",
]
