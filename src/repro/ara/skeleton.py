"""Service skeletons — the server side of Figure 2.

A :class:`ServiceSkeleton` is generated from a :class:`ServiceInterface`
and dispatches incoming method calls to the application's
implementations according to its *method-call processing mode* (from the
communication-management specification):

* ``EVENT`` (the AP default): every invocation becomes a job on the
  middleware worker pool — "the runtime maps each invocation to a
  different thread", the behaviour behind the paper's Figure 1;
* ``EVENT_SINGLE_THREAD``: invocations are serialized on one dedicated
  thread (mutual exclusion, but *arrival order* still decides execution
  order, so cross-client nondeterminism remains);
* ``POLL``: the application thread explicitly pumps
  :meth:`ServiceSkeleton.process_next_method_call`.

Implementations may be plain functions, generator functions (simulated
work), or may return an ``ara::core::Future`` to resolve later — the
"non-blocking fashion" the paper's server example uses.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Generator

from repro.errors import AraError
from repro.ara.future import Future
from repro.ara.interface import Method, ServiceInterface
from repro.ara.pool import DispatchPool
from repro.ara.proxy import wrap_payload
from repro.obs import context as obs_context
from repro.obs.flows import LAYER_SOMEIP, flow_id_of
from repro.someip.runtime import IncomingRequest, SomeIpEndpoint
from repro.someip.wire import ReturnCode
from repro.time.tag import Tag


class MethodCallProcessingMode(enum.Enum):
    """How incoming method calls are mapped to execution contexts."""

    EVENT = "event"
    EVENT_SINGLE_THREAD = "event-single-thread"
    POLL = "poll"


class ServiceSkeleton:
    """The server's communication endpoint for one service instance."""

    def __init__(
        self,
        process: "AraProcess",  # noqa: F821 - circular type, see ara.process
        interface: ServiceInterface,
        instance_id: int,
        processing_mode: MethodCallProcessingMode = MethodCallProcessingMode.EVENT,
        field_defaults: dict[str, Any] | None = None,
    ) -> None:
        self.process = process
        self.interface = interface
        self.instance_id = instance_id
        self.processing_mode = processing_mode
        self._impls: dict[str, Callable] = {}
        self._request_interceptor: Callable[[IncomingRequest], bool] | None = None
        self._offered = False
        self._poll_queue = process.platform.queue(
            f"{interface.name}.poll", overflow="error"
        )
        self._serial_pool: DispatchPool | None = None
        if processing_mode is MethodCallProcessingMode.EVENT_SINGLE_THREAD:
            self._serial_pool = DispatchPool(
                process.platform, f"{process.name}.{interface.name}.serial", workers=1
            )
        self._field_values: dict[str, Any] = dict(field_defaults or {})
        self._install_field_impls()

    # -- implementation registration --------------------------------------------

    def implement(self, method_name: str, impl: Callable) -> None:
        """Provide the implementation for *method_name*.

        *impl* receives the request arguments as keyword arguments and
        returns the result (value, dict, ``Future``), or is a generator
        function whose return value is the result.
        """
        self.interface.method(method_name)  # validates the name
        self._impls[method_name] = impl

    def intercept_requests(
        self, interceptor: Callable[[IncomingRequest], bool]
    ) -> None:
        """Install a raw request hook (kernel context).

        The interceptor sees every incoming request *before* normal
        dispatch and returns ``True`` to consume it.  DEAR's server
        method transactor uses this to take over method handling while
        the skeleton still owns the service registration.
        """
        self._request_interceptor = interceptor

    def _install_field_impls(self) -> None:
        for field_def in self.interface.fields:
            elements = self.interface.field_elements(field_def.name)
            if elements["get"] is not None:
                self._impls.setdefault(
                    elements["get"].name,
                    lambda name=field_def.name: self._field_values.get(name),
                )
            if elements["set"] is not None:
                self._impls.setdefault(
                    elements["set"].name,
                    lambda value, name=field_def.name: self._apply_field(name, value),
                )

    def _apply_field(self, name: str, value: Any) -> Any:
        self.update_field(name, value)
        return value

    # -- offering ----------------------------------------------------------------

    def offer(self) -> None:
        """Validate implementations and offer the service via SD."""
        missing = [
            method.name
            for method in self.interface.methods
            if method.name not in self._impls
        ]
        if missing and self._request_interceptor is None:
            raise AraError(
                f"skeleton for {self.interface.name!r} lacks implementations "
                f"for: {', '.join(sorted(missing))}"
            )
        self.endpoint.provide_service(
            self.interface.service_id,
            self.instance_id,
            self.interface.major_version,
            self._on_request,
        )
        self._offered = True

    def stop_offer(self) -> None:
        """Withdraw the service offer."""
        if self._offered:
            self.endpoint.withdraw_service(self.interface.service_id)
            self._offered = False

    @property
    def endpoint(self) -> SomeIpEndpoint:
        """The owning process's SOME/IP endpoint."""
        return self.process.endpoint

    # -- events and fields -----------------------------------------------------------

    def send_event(
        self, event_name: str, data: Any = None, tag: Tag | None = None
    ) -> int:
        """Publish an event to all subscribers; returns the receiver count."""
        event = self.interface.event(event_name)
        names = [name for name, _ in event.data]
        o = obs_context.ACTIVE
        flows = o.flows if o.enabled else None
        swapped = False
        previous = None
        if flows is not None:
            # Reaction bodies publish from worker/reactor context where
            # no current flow is set; the wire dict self-correlates via
            # its frame sequence, re-establishing the flow for the
            # synchronous serialize -> switch chain below.
            flow = flow_id_of(data)
            if flow is not None and flows.known(flow):
                previous = flows.swap_current(flow)
                swapped = True
                flows.hop(
                    flow,
                    LAYER_SOMEIP,
                    f"tx {event_name}",
                    self.process.platform.sim.now,
                )
        try:
            payload = event.data_spec.to_bytes(
                wrap_payload(names, data, f"event {event_name!r}")
            )
            return self.endpoint.send_event(
                self.interface.service_id,
                self.instance_id,
                event.event_id,
                payload,
                tag,
            )
        finally:
            if swapped:
                flows.restore_current(previous)

    def update_field(self, name: str, value: Any) -> None:
        """Set a field value and send its change notification."""
        self.interface.field(name)  # validates
        self._field_values[name] = value
        notifier = self.interface.field_elements(name)["notify"]
        if notifier is not None:
            self.send_event(notifier.name, value)

    def field_value(self, name: str) -> Any:
        """Current value of field *name*."""
        return self._field_values.get(name)

    # -- request dispatch --------------------------------------------------------------

    def _on_request(self, request: IncomingRequest) -> None:
        """Kernel context: route one incoming invocation."""
        if self._request_interceptor is not None:
            if self._request_interceptor(request):
                return
        method = self.interface.method_by_id(request.header.method_id)
        if method is None:
            request.reply_error(ReturnCode.E_UNKNOWN_METHOD)
            return
        impl = self._impls.get(method.name)
        if impl is None:
            request.reply_error(ReturnCode.E_NOT_OK)
            return
        job = self._make_job(method, impl, request)
        if self.processing_mode is MethodCallProcessingMode.EVENT:
            self.process.pool.submit(job)
        elif self.processing_mode is MethodCallProcessingMode.EVENT_SINGLE_THREAD:
            self._serial_pool.submit(job)
        else:
            self._poll_queue.post(job)

    def _make_job(
        self, method: Method, impl: Callable, request: IncomingRequest
    ) -> Callable[[], Generator[Any, Any, None]]:
        def job() -> Generator[Any, Any, None]:
            try:
                kwargs = method.request_spec.from_bytes(request.payload)
            except Exception:
                request.reply_error(ReturnCode.E_MALFORMED_MESSAGE)
                return
            try:
                result = impl(**kwargs)
                if result is not None and hasattr(result, "__next__"):
                    result = yield from result
                if isinstance(result, Future):
                    result = yield from result.get()
            except Exception:
                request.reply_error(ReturnCode.E_NOT_OK)
                return
            payload = method.response_spec.to_bytes(
                wrap_payload(method.return_names, result, f"method {method.name!r}")
            )
            request.reply(payload)

        return job

    # -- poll mode ---------------------------------------------------------------------

    def process_next_method_call(self) -> Generator[Any, Any, bool]:
        """Thread context (POLL mode): run one queued invocation.

        Returns ``True`` if a call was processed, ``False`` if the queue
        was empty.
        """
        if self.processing_mode is not MethodCallProcessingMode.POLL:
            raise AraError("process_next_method_call requires POLL mode")
        job = yield from self._poll_queue.try_get()
        if job is None:
            return False
        yield from job()
        return True

    @property
    def pending_calls(self) -> int:
        """POLL mode: invocations waiting to be processed."""
        return len(self._poll_queue)

    def __repr__(self) -> str:
        return (
            f"ServiceSkeleton({self.interface.name!r}, instance={self.instance_id}, "
            f"mode={self.processing_mode.value})"
        )
