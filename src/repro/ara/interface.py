"""Service interface descriptions.

AP service interfaces are fully specified at design time and composed of
**methods**, **events** and **fields** (Section II.A of the paper).  A
:class:`ServiceInterface` is that design-time artifact; proxies,
skeletons and DEAR transactors are generated from it.

Fields expand into up to three elements, as the standard defines: a
``get`` method, a ``set`` method and a change-notification event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.someip.serialization import Struct, TypeSpec

#: Method ids below this bound are user methods; field accessors are
#: allocated downward from the top of the method id space.
_FIELD_METHOD_BASE = 0x7F00
#: Event ids must have the MSB set; field notifiers are allocated from here.
_FIELD_EVENT_BASE = 0xFF00
_EVENT_FLAG = 0x8000


@dataclass(frozen=True)
class Method:
    """One service method: typed arguments and a typed (struct) result."""

    name: str
    method_id: int
    arguments: Sequence[tuple[str, TypeSpec]] = ()
    returns: Sequence[tuple[str, TypeSpec]] = ()
    fire_and_forget: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.method_id < _EVENT_FLAG:
            raise ValueError(
                f"method id 0x{self.method_id:04x} out of range (MSB reserved)"
            )
        if self.fire_and_forget and self.returns:
            raise ValueError(f"fire-and-forget method {self.name!r} cannot return")
        object.__setattr__(
            self, "request_spec", Struct(list(self.arguments), f"{self.name}.req")
        )
        object.__setattr__(
            self, "response_spec", Struct(list(self.returns), f"{self.name}.res")
        )

    @property
    def argument_names(self) -> list[str]:
        """The declared argument names, in wire order."""
        return [name for name, _ in self.arguments]

    @property
    def return_names(self) -> list[str]:
        """The declared result field names, in wire order."""
        return [name for name, _ in self.returns]


@dataclass(frozen=True)
class Event:
    """One service event: a one-way server-to-client message."""

    name: str
    event_id: int
    data: Sequence[tuple[str, TypeSpec]] = ()

    def __post_init__(self) -> None:
        if not self.event_id & _EVENT_FLAG:
            raise ValueError(
                f"event id 0x{self.event_id:04x} must have the MSB set"
            )
        object.__setattr__(
            self, "data_spec", Struct(list(self.data), f"{self.name}.data")
        )


@dataclass(frozen=True)
class Field:
    """A state variable exposed by the server.

    Expands into a get method, a set method and a notifier event, each of
    which can be disabled (a field must have at least a getter or a
    notifier to be observable, which we require).
    """

    name: str
    value_type: TypeSpec
    has_getter: bool = True
    has_setter: bool = True
    has_notifier: bool = True

    def __post_init__(self) -> None:
        if not (self.has_getter or self.has_notifier):
            raise ValueError(f"field {self.name!r} would be write-only")


class ServiceInterface:
    """A complete design-time service description."""

    def __init__(
        self,
        name: str,
        service_id: int,
        major_version: int = 1,
        minor_version: int = 0,
        methods: Sequence[Method] = (),
        events: Sequence[Event] = (),
        fields: Sequence[Field] = (),
    ) -> None:
        if not 0 < service_id < 0xFFFF:
            raise ValueError(f"service id 0x{service_id:04x} out of range")
        self.name = name
        self.service_id = service_id
        self.major_version = major_version
        self.minor_version = minor_version
        self.fields = list(fields)
        self.methods: list[Method] = list(methods)
        self.events: list[Event] = list(events)
        self._field_elements: dict[str, dict[str, Method | Event | None]] = {}
        self._expand_fields()
        self._index()

    def _expand_fields(self) -> None:
        method_id = _FIELD_METHOD_BASE
        event_id = _FIELD_EVENT_BASE
        for field_def in self.fields:
            elements: dict[str, Method | Event | None] = {
                "get": None,
                "set": None,
                "notify": None,
            }
            if field_def.has_getter:
                getter = Method(
                    f"get_{field_def.name}",
                    method_id,
                    arguments=[],
                    returns=[("value", field_def.value_type)],
                )
                self.methods.append(getter)
                elements["get"] = getter
                method_id += 1
            if field_def.has_setter:
                setter = Method(
                    f"set_{field_def.name}",
                    method_id,
                    arguments=[("value", field_def.value_type)],
                    returns=[("value", field_def.value_type)],
                )
                self.methods.append(setter)
                elements["set"] = setter
                method_id += 1
            if field_def.has_notifier:
                notifier = Event(
                    f"{field_def.name}_changed",
                    event_id,
                    data=[("value", field_def.value_type)],
                )
                self.events.append(notifier)
                elements["notify"] = notifier
                event_id += 1
            self._field_elements[field_def.name] = elements

    def _index(self) -> None:
        self._methods_by_name: dict[str, Method] = {}
        self._methods_by_id: dict[int, Method] = {}
        self._events_by_name: dict[str, Event] = {}
        self._events_by_id: dict[int, Event] = {}
        for method in self.methods:
            if method.name in self._methods_by_name:
                raise ValueError(f"duplicate method name {method.name!r}")
            if method.method_id in self._methods_by_id:
                raise ValueError(f"duplicate method id 0x{method.method_id:04x}")
            self._methods_by_name[method.name] = method
            self._methods_by_id[method.method_id] = method
        for event in self.events:
            if event.name in self._events_by_name:
                raise ValueError(f"duplicate event name {event.name!r}")
            if event.event_id in self._events_by_id:
                raise ValueError(f"duplicate event id 0x{event.event_id:04x}")
            self._events_by_name[event.name] = event
            self._events_by_id[event.event_id] = event

    # -- lookup -----------------------------------------------------------

    def method(self, name: str) -> Method:
        """Look up a method by name (includes field accessors)."""
        return self._methods_by_name[name]

    def method_by_id(self, method_id: int) -> Method | None:
        """Look up a method by wire id."""
        return self._methods_by_id.get(method_id)

    def event(self, name: str) -> Event:
        """Look up an event by name (includes field notifiers)."""
        return self._events_by_name[name]

    def event_by_id(self, event_id: int) -> Event | None:
        """Look up an event by wire id."""
        return self._events_by_id.get(event_id)

    def field(self, name: str) -> Field:
        """Look up a field definition by name."""
        for field_def in self.fields:
            if field_def.name == name:
                return field_def
        raise KeyError(name)

    def field_elements(self, name: str) -> dict[str, Method | Event | None]:
        """The expanded get/set/notify elements of a field."""
        return self._field_elements[name]

    def __repr__(self) -> str:
        return (
            f"ServiceInterface({self.name!r}, id=0x{self.service_id:04x}, "
            f"methods={len(self.methods)}, events={len(self.events)}, "
            f"fields={len(self.fields)})"
        )
