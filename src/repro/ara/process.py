"""Adaptive applications: one SWC = one process.

An :class:`AraProcess` bundles what every AP application process owns:
a SOME/IP endpoint (with optional DEAR tag awareness), access to the
platform's SD daemon, and the middleware worker pool.  It is the factory
for proxies and skeletons.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import AraError, ServiceNotAvailableError
from repro.ara.interface import ServiceInterface
from repro.ara.pool import DispatchPool
from repro.ara.proxy import ServiceProxy
from repro.ara.skeleton import MethodCallProcessingMode, ServiceSkeleton
from repro.sim.platform import Platform
from repro.sim.process import SimThread
from repro.someip.runtime import SomeIpEndpoint
from repro.someip.sd import SdDaemon
from repro.time.duration import SEC


class AraProcess:
    """One adaptive application process on a platform."""

    def __init__(
        self,
        platform: Platform,
        name: str,
        workers: int = 4,
        tag_aware: bool = False,
        tag_transport: str = "trailer",
    ) -> None:
        sd = platform.attachments.get("sd")
        if not isinstance(sd, SdDaemon):
            raise AraError(
                f"platform {platform.name!r} has no SD daemon; create an "
                f"SdDaemon (and NetworkInterface) before AraProcess"
            )
        self.platform = platform
        self.name = name
        self.sd = sd
        self.endpoint = SomeIpEndpoint(
            platform, sd, name, tag_aware=tag_aware, tag_transport=tag_transport
        )
        self.pool = DispatchPool(platform, f"{name}.pool", workers)

    # -- client side -----------------------------------------------------------

    def find_service(
        self,
        interface: ServiceInterface,
        instance_id: int,
        timeout_ns: int = 2 * SEC,
    ) -> Generator[Any, Any, ServiceProxy]:
        """Thread context: resolve a service and build its proxy.

        Raises :class:`ServiceNotAvailableError` when discovery times
        out — the AP behaviour of a failed ``FindService``.
        """
        entry = yield from self.sd.find_blocking(
            interface.service_id, instance_id, timeout_ns
        )
        if entry is None:
            raise ServiceNotAvailableError(
                f"{interface.name!r} instance {instance_id} not found "
                f"within {timeout_ns} ns"
            )
        return ServiceProxy(self, interface, entry)

    def try_find_service(
        self, interface: ServiceInterface, instance_id: int
    ) -> ServiceProxy | None:
        """Non-blocking variant: proxy if already discovered, else ``None``."""
        entry = self.sd.find(interface.service_id, instance_id)
        if entry is None:
            return None
        return ServiceProxy(self, interface, entry)

    # -- server side -------------------------------------------------------------

    def create_skeleton(
        self,
        interface: ServiceInterface,
        instance_id: int,
        processing_mode: MethodCallProcessingMode = MethodCallProcessingMode.EVENT,
        field_defaults: dict[str, Any] | None = None,
    ) -> ServiceSkeleton:
        """Create (but do not yet offer) a skeleton for *interface*."""
        return ServiceSkeleton(
            self, interface, instance_id, processing_mode, field_defaults
        )

    # -- threads ------------------------------------------------------------------

    def spawn(
        self, name: str, generator: Generator, start_delay_ns: int = 0
    ) -> SimThread:
        """Start an application thread belonging to this process."""
        return self.platform.spawn(f"{self.name}.{name}", generator, start_delay_ns)

    def __repr__(self) -> str:
        return f"AraProcess({self.name!r} on {self.platform.name!r})"
