"""Exploration strategies: how execution *i* maps to a schedule.

Two strategies, both deterministic functions of ``(strategy seed,
execution index)`` so exploration results are reproducible and
cache-friendly:

* :class:`RandomSweepStrategy` — the status quo baseline: execution
  *i* is simply the stock run for root seed ``base_seed + i``.  This
  is exactly what ``SweepRunner``-based seed sweeps do, expressed as a
  strategy so the explorer can compare against it.
* :class:`PctStrategy` — probabilistic concurrency testing adapted to
  a timed multicore simulator.  Classic PCT (Burckhardt et al.,
  ASPLOS 2010) runs a deterministic priority scheduler and inserts
  ``d`` random priority-change points; on a work-conserving multicore
  with timed events the analogue of "demote the running thread" is a
  *bounded preemption*: at ``depth`` uniformly chosen dispatch events
  the dispatched thread is delayed by ``preempt_ns``.  A bug needing
  ``d`` specific preemptions is found with probability
  ``≥ 1/horizonᵈ`` per execution independent of the seed space, which
  for shallow bugs (frame drops need 1-2 well-placed preemptions) is
  orders of magnitude better than waiting for a seed whose phase
  offsets happen to collide.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.explore.decisions import InterventionSchedule, PreemptionPoint
from repro.time.duration import MS


@dataclass(frozen=True)
class RandomSweepStrategy:
    """Uniform-random seed sweeping (the pre-explorer baseline)."""

    name: str = "random"

    def schedule_for(
        self, execution: int, base_seed: int, horizon: int
    ) -> InterventionSchedule:
        """Execution *i* = the stock seeded run of ``base_seed + i``."""
        return InterventionSchedule(
            base_seed=base_seed + execution, label=f"random[{execution}]"
        )


@dataclass(frozen=True)
class PctStrategy:
    """PCT-style exploration with bounded preemption points.

    ``depth`` preemption sites are drawn uniformly from the baseline
    run's dispatch horizon; each delays the dispatched thread by
    ``preempt_ns`` (default half a camera period — a realistic OS
    preemption, far below the paper's 100 ms blackout scenarios).
    Execution 0 is the unperturbed baseline (it doubles as the horizon
    calibration run).
    """

    depth: int = 6
    preempt_ns: int = 25 * MS
    seed: int = 0
    name: str = "pct"

    def schedule_for(
        self, execution: int, base_seed: int, horizon: int
    ) -> InterventionSchedule:
        if execution == 0 or horizon <= 0:
            return InterventionSchedule(base_seed=base_seed, label="pct[baseline]")
        rng = random.Random((self.seed << 24) ^ execution)
        sites = sorted({rng.randrange(horizon) for _ in range(self.depth)})
        points = tuple(PreemptionPoint(site, self.preempt_ns) for site in sites)
        return InterventionSchedule(
            base_seed=base_seed, preemptions=points, label=f"pct[{execution}]"
        )
