"""Scheduler decision traces: record, replay, intervene.

Three stream-hook controllers (installed via
:func:`repro.sim.rng.stream_hooks` for the duration of one experiment
run) cover the whole record/replay/perturb lifecycle:

* :class:`ScheduleRecorder` — wraps every ``*/scheduler`` stream and
  records each decision the :class:`~repro.sim.scheduler.CpuScheduler`
  draws, in one globally ordered :class:`DecisionTrace` (the simulator
  is single-threaded, so the order is deterministic);
* :class:`ScheduleReplayer` — answers every decision from a recorded
  trace instead of the RNG; with the same program and base seed the run
  is bit-exact, and any divergence raises :class:`ReplayDivergence`
  rather than silently desynchronizing;
* :class:`InterventionSchedule` — the seeded baseline plus a sparse set
  of :class:`PreemptionPoint` overrides ("delay the k-th dispatch by
  δ ns").  This is the representation the PCT-style explorer searches
  and the delta-debugging shrinker minimizes: every subset of
  preemption points is itself a valid, runnable schedule.

Hooks compose: installing an intervention hook *and* a recorder hook
records the effective (perturbed) decisions, which is how a found
failure is exported as a portable replay artifact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Iterable

from repro.errors import SimulationError
from repro.sim.rng import RandomDecisionSource


def is_scheduler_stream(path: str) -> bool:
    """Whether a full stream path is a platform scheduler stream."""
    return path == "scheduler" or path.endswith("/scheduler")


class ReplayDivergence(SimulationError):
    """A replayed run diverged from its recorded decision trace."""


# ---------------------------------------------------------------------------
# Decision traces (full record of one run).
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class DecisionRecord:
    """One scheduler decision.

    ``kind`` is one of ``dispatch`` / ``mutex`` / ``notify`` (picks,
    where ``bound`` is the candidate count and ``choice`` the chosen
    index), ``timer`` / ``dispatch-jitter`` (delays in ``[0, bound]``)
    or ``preempt`` (extra dispatch delay, normally 0).  ``name`` is the
    simulated thread the decision applied to.
    """

    index: int
    stream: str
    kind: str
    name: str
    bound: int
    choice: int

    def describe(self) -> str:
        """Human-readable one-liner (used by shrink/replay reports)."""
        platform = self.stream.rsplit("/", 1)[0]
        if self.kind in ("dispatch", "mutex", "notify"):
            return (
                f"#{self.index} {platform}: {self.kind} -> {self.name} "
                f"({self.choice + 1} of {self.bound})"
            )
        return (
            f"#{self.index} {platform}: {self.kind} {self.name} "
            f"+{self.choice / 1e6:.3f} ms"
        )


@dataclass
class DecisionTrace:
    """All scheduler decisions of one run, in global order."""

    base_seed: int
    records: list[DecisionRecord] = field(default_factory=list)
    experiment: str = ""
    params: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)

    def fingerprint(self) -> str:
        """Stable hash of the decision sequence."""
        import hashlib

        digest = hashlib.sha256()
        for record in self.records:
            digest.update(
                f"{record.stream}|{record.kind}|{record.name}"
                f"|{record.bound}|{record.choice}\n".encode()
            )
        return digest.hexdigest()

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        """Compact JSON form (string tables for streams/kinds/names)."""
        streams: dict[str, int] = {}
        kinds: dict[str, int] = {}
        names: dict[str, int] = {}

        def intern(table: dict[str, int], value: str) -> int:
            return table.setdefault(value, len(table))

        rows = [
            [
                intern(streams, record.stream),
                intern(kinds, record.kind),
                intern(names, record.name),
                record.bound,
                record.choice,
            ]
            for record in self.records
        ]
        return {
            "format": "decision-trace/v1",
            "base_seed": self.base_seed,
            "experiment": self.experiment,
            "params": self.params,
            "streams": list(streams),
            "kinds": list(kinds),
            "names": list(names),
            "records": rows,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DecisionTrace":
        if data.get("format") != "decision-trace/v1":
            raise ValueError(f"not a decision trace: {data.get('format')!r}")
        streams = data["streams"]
        kinds = data["kinds"]
        names = data["names"]
        records = [
            DecisionRecord(
                index, streams[s], kinds[k], names[n], bound, choice
            )
            for index, (s, k, n, bound, choice) in enumerate(data["records"])
        ]
        return cls(
            base_seed=data["base_seed"],
            records=records,
            experiment=data.get("experiment", ""),
            params=dict(data.get("params", {})),
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "DecisionTrace":
        return cls.from_dict(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------------
# Recording.
# ---------------------------------------------------------------------------


class ScheduleRecorder:
    """Stream hook recording every scheduler decision of one run.

    Use as ``with stream_hooks(recorder): run_experiment()`` and read
    :attr:`trace` afterwards.  Composes with other decision sources: if
    the stream was already wrapped (replay or intervention hook
    installed first), the *effective* decisions are recorded.
    """

    def __init__(self, base_seed: int = 0) -> None:
        self.trace = DecisionTrace(base_seed=base_seed)

    def __call__(self, path: str, rng: Any):
        if not is_scheduler_stream(path):
            return None
        inner = rng if hasattr(rng, "pick_index") else RandomDecisionSource(rng)
        return _RecordingSource(self, path, inner)

    def _add(self, stream: str, kind: str, name: str, bound: int, choice: int) -> int:
        records = self.trace.records
        records.append(
            DecisionRecord(len(records), stream, kind, name, bound, choice)
        )
        return choice


class _RecordingSource:
    __slots__ = ("_recorder", "_path", "_inner")

    def __init__(self, recorder: ScheduleRecorder, path: str, inner) -> None:
        self._recorder = recorder
        self._path = path
        self._inner = inner

    def pick_index(self, kind: str, names: list[str]) -> int:
        choice = self._inner.pick_index(kind, names)
        self._recorder._add(self._path, kind, names[choice], len(names), choice)
        return choice

    def jitter(self, kind: str, name: str, bound_ns: int) -> int:
        kind_label = "timer" if kind == "timer" else "dispatch-jitter"
        choice = self._inner.jitter(kind, name, bound_ns)
        self._recorder._add(self._path, kind_label, name, bound_ns, choice)
        return choice

    def preempt(self, name: str) -> int:
        choice = self._inner.preempt(name)
        self._recorder._add(self._path, "preempt", name, 0, choice)
        return choice


# ---------------------------------------------------------------------------
# Replay.
# ---------------------------------------------------------------------------


class ScheduleReplayer:
    """Stream hook answering scheduler decisions from a recorded trace.

    The RNG behind each scheduler stream is never consulted; with the
    same program and base seed the replayed run is bit-exact.  In
    ``strict`` mode (the default) any mismatch between the running
    program and the trace — wrong platform, wrong decision kind, a
    candidate set the recorded choice no longer fits — raises
    :class:`ReplayDivergence` identifying the offending decision.
    """

    def __init__(self, trace: DecisionTrace, strict: bool = True) -> None:
        self.trace = trace
        self.strict = strict
        self._cursor = 0

    def __call__(self, path: str, rng: Any):
        if not is_scheduler_stream(path):
            return None
        fallback = rng if hasattr(rng, "pick_index") else RandomDecisionSource(rng)
        return _ReplaySource(self, path, fallback)

    @property
    def consumed(self) -> int:
        """How many recorded decisions have been replayed."""
        return self._cursor

    def _next(self, path: str, kind: str) -> DecisionRecord | None:
        if self._cursor >= len(self.trace.records):
            if self.strict:
                raise ReplayDivergence(
                    f"decision trace exhausted after {self._cursor} decisions "
                    f"(next request: {kind} on {path})"
                )
            return None
        record = self.trace.records[self._cursor]
        if record.stream != path or record.kind != kind:
            if self.strict:
                raise ReplayDivergence(
                    f"replay diverged at decision {record.index}: recorded "
                    f"{record.kind!r} on {record.stream!r}, program asked for "
                    f"{kind!r} on {path!r}"
                )
            return None
        self._cursor += 1
        return record


class _ReplaySource:
    __slots__ = ("_replayer", "_path", "_fallback")

    def __init__(self, replayer: ScheduleReplayer, path: str, fallback) -> None:
        self._replayer = replayer
        self._path = path
        self._fallback = fallback

    def pick_index(self, kind: str, names: list[str]) -> int:
        record = self._replayer._next(self._path, kind)
        if record is None:
            return self._fallback.pick_index(kind, names)
        if record.choice >= len(names):
            raise ReplayDivergence(
                f"replay diverged at decision {record.index}: recorded pick "
                f"{record.choice} of {record.bound}, but only "
                f"{len(names)} candidates exist now"
            )
        return record.choice

    def jitter(self, kind: str, name: str, bound_ns: int) -> int:
        label = "timer" if kind == "timer" else "dispatch-jitter"
        record = self._replayer._next(self._path, label)
        if record is None:
            return self._fallback.jitter(kind, name, bound_ns)
        return record.choice

    def preempt(self, name: str) -> int:
        record = self._replayer._next(self._path, "preempt")
        if record is None:
            return self._fallback.preempt(name)
        return record.choice


# ---------------------------------------------------------------------------
# Interventions (sparse preemption overrides on the seeded baseline).
# ---------------------------------------------------------------------------


@dataclass(frozen=True, order=True)
class PreemptionPoint:
    """Delay the ``site``-th dispatch of the run by ``delay_ns``.

    Sites count the scheduler's preemption queries (one per dispatch)
    globally across all platforms, so a point pins one specific
    "the OS preempts this thread right here" event.  ``thread`` is
    filled in after a run for reporting; it does not affect matching.
    """

    site: int
    delay_ns: int
    thread: str = field(default="", compare=False)

    def describe(self) -> str:
        target = self.thread or "?"
        return f"dispatch #{self.site} of {target}: +{self.delay_ns / 1e6:.1f} ms"


@dataclass(frozen=True)
class InterventionSchedule:
    """A seeded baseline schedule plus sparse preemption points.

    With no points this is exactly the stock seeded run for
    ``base_seed``.  Points only *add* dispatch delay, so any subset is
    a valid schedule — the property delta-debugging relies on.
    """

    base_seed: int
    preemptions: tuple[PreemptionPoint, ...] = ()
    label: str = ""

    def controller(
        self, exclude: tuple[str, ...] = (), checkpointer: Any = None
    ) -> "InterventionController":
        """A fresh stream-hook controller applying this schedule.

        *exclude* suppresses preemptions whose target thread name
        contains any of the given substrings (the site is still
        counted, keeping ordinals aligned with unfiltered runs).
        *checkpointer* (a :class:`repro.snapshot.Checkpointer`) lets the
        snapshot engine capture copy-on-write holders at planned sites.
        """
        return InterventionController(
            self, exclude=exclude, checkpointer=checkpointer
        )

    def with_points(
        self, points: Iterable[PreemptionPoint], label: str | None = None
    ) -> "InterventionSchedule":
        """A copy with a different preemption set."""
        return replace(
            self,
            preemptions=tuple(sorted(points)),
            label=self.label if label is None else label,
        )

    def describe(self) -> str:
        if not self.preemptions:
            return f"seed {self.base_seed}, no preemptions"
        points = "; ".join(point.describe() for point in self.preemptions)
        return f"seed {self.base_seed}, {len(self.preemptions)} preemption(s): {points}"

    def to_dict(self) -> dict:
        return {
            "format": "intervention-schedule/v1",
            "base_seed": self.base_seed,
            "label": self.label,
            "preemptions": [
                {"site": p.site, "delay_ns": p.delay_ns, "thread": p.thread}
                for p in self.preemptions
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "InterventionSchedule":
        if data.get("format") != "intervention-schedule/v1":
            raise ValueError(f"not a schedule: {data.get('format')!r}")
        return cls(
            base_seed=data["base_seed"],
            label=data.get("label", ""),
            preemptions=tuple(
                PreemptionPoint(p["site"], p["delay_ns"], p.get("thread", ""))
                for p in data["preemptions"]
            ),
        )


class InterventionController:
    """Stream hook applying an :class:`InterventionSchedule`.

    Non-intervened decisions delegate to the stream's seeded RNG, so an
    empty schedule reproduces the baseline run bit-exactly.  After the
    run, :attr:`applied` holds the points that actually fired, with the
    affected thread names resolved.

    *exclude* names thread-name substrings whose preemptions are
    suppressed (applied as a zero delay).  The determinism verifier
    uses this to keep environment/sensor threads unperturbed: delaying
    a sensor driver shifts *when* its physical action is scheduled —
    an input-timeline change, not scheduler nondeterminism — so it is
    out of scope for a "same inputs ⇒ same trace" comparison.
    Suppressed sites still advance the ordinal counter, so site
    numbering stays aligned with unfiltered runs of the same schedule.
    """

    def __init__(
        self,
        schedule: InterventionSchedule,
        exclude: tuple[str, ...] = (),
        checkpointer: Any = None,
    ) -> None:
        self.schedule = schedule
        self.exclude = tuple(exclude)
        self._delays = {point.site: point.delay_ns for point in schedule.preemptions}
        self._site = 0
        self._ckpt = checkpointer
        self.applied: list[PreemptionPoint] = []
        self.suppressed: list[PreemptionPoint] = []

    def __call__(self, path: str, rng: Any):
        if not is_scheduler_stream(path):
            return None
        inner = rng if hasattr(rng, "pick_index") else RandomDecisionSource(rng)
        return _InterventionSource(self, inner)

    def _adopt(self, delays: dict[int, int]) -> None:
        """Snapshot-fork seam: a forked continuation swaps in its own
        schedule's delay map before resuming (sites already consumed in
        the shared prefix are identical by construction)."""
        self._delays = dict(delays)

    def _preempt(self, name: str) -> int:
        site = self._site
        self._site += 1
        # Capture *before* consuming this site's decision: the holder's
        # state must depend only on decisions at sites < `site`, so the
        # fork-site delay itself comes from the adopted suffix.
        ckpt = self._ckpt
        if ckpt is not None and ckpt.wants(site):
            ckpt.reached(site, self._adopt)
        delay = self._delays.get(site, 0)
        if not delay:
            return 0
        if any(pattern in name for pattern in self.exclude):
            self.suppressed.append(PreemptionPoint(site, delay, thread=name))
            return 0
        self.applied.append(PreemptionPoint(site, delay, thread=name))
        return delay


class _InterventionSource:
    __slots__ = ("_controller", "_inner")

    def __init__(self, controller: InterventionController, inner) -> None:
        self._controller = controller
        self._inner = inner

    def pick_index(self, kind: str, names: list[str]) -> int:
        return self._inner.pick_index(kind, names)

    def jitter(self, kind: str, name: str, bound_ns: int) -> int:
        return self._inner.jitter(kind, name, bound_ns)

    def preempt(self, name: str) -> int:
        return self._inner.preempt(name) + self._controller._preempt(name)
