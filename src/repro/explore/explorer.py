"""The budgeted exploration loop.

An :class:`Explorer` owns one target experiment (the stock brake
assistant by default), a base seed, a scenario and a strategy.  It
first *calibrates* — one baseline run counting the dispatch horizon —
then evaluates schedules ``strategy.schedule_for(0..budget-1)`` until
the failure predicate fires or the budget is exhausted.  Executions
are independent, so they fan out over the
:class:`repro.harness.sweep.SweepRunner` process pool in chunks (with
early exit between chunks) and per-execution outcomes land in the
sweep result cache like any other seeded experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable

from repro.apps.brake.nondet import run_nondet_brake_assistant
from repro.explore.decisions import (
    DecisionTrace,
    InterventionSchedule,
    PreemptionPoint,
    ScheduleRecorder,
)
from repro.explore.strategies import PctStrategy
from repro.harness.sweep import SweepRunner
from repro.sim.rng import stream_hooks


@dataclass
class ExecutionOutcome:
    """One explored schedule and what it produced."""

    index: int
    schedule: InterventionSchedule
    errors_total: int = 0
    errors: dict[str, int] = field(default_factory=dict)
    #: Captured traceback if the execution itself crashed.
    error: str | None = None


def frame_drop(outcome: ExecutionOutcome) -> bool:
    """Default failure predicate: the run dropped or misaligned frames."""
    return outcome.errors_total > 0


@dataclass
class ExplorationResult:
    """Everything one exploration produced."""

    strategy: str
    budget: int
    horizon: int
    executions: list[ExecutionOutcome]
    #: First failing execution (``None`` if the budget ran dry).
    found: ExecutionOutcome | None = None
    #: :class:`repro.snapshot.SnapshotStats` when the exploration ran
    #: through the snapshot/fork engine (``None`` otherwise).
    snapshots: Any = None

    @property
    def executions_used(self) -> int:
        """Executions evaluated up to and including the first failure."""
        if self.found is not None:
            return self.found.index + 1
        return len(self.executions)


def _summarize(result: Any, controller: Any) -> dict:
    """Compact, picklable summary of one schedule evaluation."""
    applied = [
        {"site": p.site, "delay_ns": p.delay_ns, "thread": p.thread}
        for p in controller.applied
    ]
    return {
        "errors_total": result.errors.total(),
        "errors": result.errors.as_dict(),
        "applied": applied,
    }


def _run_summary(
    execution: int,
    experiment: Callable[..., Any],
    scenario: Any,
    strategy: Any,
    base_seed: int,
    horizon: int,
) -> dict:
    """Worker body: evaluate one schedule, return a compact summary."""
    schedule = strategy.schedule_for(execution, base_seed, horizon)
    controller = schedule.controller()
    with stream_hooks(controller):
        result = experiment(schedule.base_seed, scenario)
    return _summarize(result, controller)


class Explorer:
    """Search scheduler interleavings for a failure.

    ``experiment`` must be a picklable ``(seed, scenario) -> result``
    callable whose result exposes ``errors`` counters (both brake
    assistant variants qualify).
    """

    def __init__(
        self,
        experiment: Callable[..., Any] = run_nondet_brake_assistant,
        scenario: Any = None,
        base_seed: int = 0,
        strategy: Any = None,
        sweep: SweepRunner | None = None,
        predicate: Callable[[ExecutionOutcome], bool] = frame_drop,
        snapshots: Any = None,
    ) -> None:
        self.experiment = experiment
        self.scenario = scenario
        self.base_seed = base_seed
        self.strategy = strategy or PctStrategy()
        self.sweep = sweep or SweepRunner()
        self.predicate = predicate
        #: Optional :class:`repro.snapshot.SnapshotEngine`; when active,
        #: explore/shrink executions fork from the deepest
        #: shared-prefix holder instead of replaying from t=0.
        self.snapshots = snapshots
        self._horizon: int | None = None

    # -- running one schedule ----------------------------------------------

    def run_schedule(self, schedule: InterventionSchedule):
        """Run the experiment once under *schedule* (in-process)."""
        controller = schedule.controller()
        with stream_hooks(controller):
            result = self.experiment(schedule.base_seed, self.scenario)
        return result, controller

    def _snapshot_context(self, base_seed: int) -> str:
        """The engine context: everything outside the decision vector.

        Includes the schedule's own base seed — two schedules with
        different world seeds never share state, whatever their
        preemption prefixes look like.
        """
        from repro.harness.sweep import code_fingerprint
        from repro.snapshot import context_key

        return context_key(
            "explore",
            getattr(self.experiment, "__name__", repr(self.experiment)),
            repr(self.scenario),
            base_seed,
            code_fingerprint(),
        )

    def run_schedule_forked(self, schedule: InterventionSchedule) -> dict:
        """Evaluate *schedule* through the snapshot engine.

        Forks from the deepest holder whose captured decision prefix
        matches the schedule (cold-running and capturing along the way
        on a miss) and returns the same summary dict as the pooled
        explore path.  Requires :attr:`snapshots`.
        """
        from repro.snapshot import ScheduleDecisions

        def run(checkpointer):
            controller = schedule.controller(checkpointer=checkpointer)
            with stream_hooks(controller):
                result = self.experiment(schedule.base_seed, self.scenario)
            return _summarize(result, controller)

        return self.snapshots.execute(
            self._snapshot_context(schedule.base_seed),
            ScheduleDecisions(schedule),
            run,
        )

    def annotate(self, schedule: InterventionSchedule) -> InterventionSchedule:
        """Resolve which thread each preemption point actually hit."""
        _result, controller = self.run_schedule(schedule)
        applied = {point.site: point for point in controller.applied}
        return schedule.with_points(
            applied.get(point.site, point) for point in schedule.preemptions
        )

    def record(
        self, schedule: InterventionSchedule
    ) -> tuple[Any, DecisionTrace]:
        """Run *schedule* while recording the full decision trace."""
        controller = schedule.controller()
        recorder = ScheduleRecorder(base_seed=schedule.base_seed)
        with stream_hooks(controller, recorder):
            result = self.experiment(schedule.base_seed, self.scenario)
        recorder.trace.experiment = getattr(
            self.experiment, "__name__", repr(self.experiment)
        )
        recorder.trace.params = {"schedule": schedule.to_dict()}
        return result, recorder.trace

    # -- calibration --------------------------------------------------------

    @property
    def horizon(self) -> int:
        """Dispatch count of the baseline run (preemption-site space)."""
        if self._horizon is None:
            baseline = InterventionSchedule(base_seed=self.base_seed)
            _result, controller = self.run_schedule(baseline)
            self._horizon = controller._site
        return self._horizon

    # -- the exploration loop ----------------------------------------------

    def explore(self, budget: int = 40) -> ExplorationResult:
        """Evaluate up to *budget* schedules; stop at the first failure."""
        horizon = self.horizon
        runner = partial(
            _run_summary,
            experiment=self.experiment,
            scenario=self.scenario,
            strategy=self.strategy,
            base_seed=self.base_seed,
            horizon=horizon,
        )
        params = {
            "experiment": getattr(self.experiment, "__name__", repr(self.experiment)),
            "scenario": repr(self.scenario),
            "strategy": repr(self.strategy),
            "base_seed": self.base_seed,
            "horizon": horizon,
        }
        engine = self.snapshots
        if engine is not None and not engine.active:
            engine = None

        def forked_job(index: int):
            from repro.snapshot import ScheduleDecisions

            schedule = self.strategy.schedule_for(index, self.base_seed, horizon)

            def run(checkpointer):
                controller = schedule.controller(checkpointer=checkpointer)
                with stream_hooks(controller):
                    result = self.experiment(schedule.base_seed, self.scenario)
                return _summarize(result, controller)

            return (
                self._snapshot_context(schedule.base_seed),
                ScheduleDecisions(schedule),
                run,
            )

        outcomes: list[ExecutionOutcome] = []
        found: ExecutionOutcome | None = None
        chunk = max(self.sweep.workers, 4)
        for start in range(0, budget, chunk):
            indices = list(range(start, min(start + chunk, budget)))
            if engine is not None:
                batch = self.sweep.run_forked(
                    engine,
                    indices,
                    forked_job,
                    name=f"explore-{self.strategy.name}",
                )
            else:
                batch = self.sweep.run(
                    runner,
                    indices,
                    name=f"explore-{self.strategy.name}",
                    params=params,
                )
            for index, seed_outcome in zip(indices, batch.outcomes):
                schedule = self.strategy.schedule_for(
                    index, self.base_seed, horizon
                )
                if not seed_outcome.ok:
                    outcome = ExecutionOutcome(
                        index, schedule, error=seed_outcome.error
                    )
                else:
                    summary = seed_outcome.value
                    applied = {
                        p["site"]: PreemptionPoint(
                            p["site"], p["delay_ns"], p.get("thread", "")
                        )
                        for p in summary["applied"]
                    }
                    schedule = schedule.with_points(
                        applied.get(point.site, point)
                        for point in schedule.preemptions
                    )
                    outcome = ExecutionOutcome(
                        index,
                        schedule,
                        errors_total=summary["errors_total"],
                        errors=dict(summary["errors"]),
                    )
                outcomes.append(outcome)
                if found is None and outcome.error is None and self.predicate(outcome):
                    found = outcome
                    break
            if found is not None:
                break
        return ExplorationResult(
            strategy=self.strategy.name,
            budget=budget,
            horizon=horizon,
            executions=outcomes,
            found=found,
            snapshots=engine.stats if engine is not None else None,
        )
