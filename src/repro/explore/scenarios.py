"""Reference scenarios for interleaving exploration.

The default :class:`~repro.apps.brake.BrakeScenario` is deliberately
noisy (7 ms execution-time spans, 2 % OS spike probability): roughly
every third seed drops frames, which reproduces Figure 5's spread but
makes a poor benchmark for *search* — random sampling finds a failure
almost immediately.  The calibration scenario tightens the stage
timing models to realistic-but-stable values and disables the spike
model, leaving scheduling (phase offsets and preemptions) as the only
mechanism that can drop a frame.  Under it, uniform-random seed
sweeping needs dozens of executions to stumble on a dropping seed,
while PCT-style preemption injection forces a drop within a handful —
the gap the `repro explore` acceptance test asserts.
"""

from __future__ import annotations

from repro.apps.brake.scenario import BrakeScenario, StageTiming
from repro.time.duration import MS, US

#: A preemption delay that stays inside the DEAR deadline slack of the
#: calibration scenario: the tightest stage (Video Adapter / EBA) has a
#: 5 ms deadline, ~2.2 ms worst-case execution and ≤0.5 ms timer
#: lateness, leaving ≥2 ms of slack.  Schedules whose preemptions stay
#: below this bound must be trace-fingerprint-identical under DEAR;
#: larger preemptions may violate a deadline, which DEAR *flags*
#: (observable deadline-miss records) rather than silently diverging.
IN_BUDGET_PREEMPT_NS = 2 * MS


def calibration_scenario(
    n_frames: int = 50, deterministic_camera: bool = False
) -> BrakeScenario:
    """The exploration reference workload (see module docstring).

    Pass ``deterministic_camera=True`` for determinism verification:
    it fixes event tags across schedules, so DEAR trace fingerprints
    are comparable byte-for-byte.
    """
    return BrakeScenario(
        n_frames=n_frames,
        callback_spike_probability=0.0,
        camera_jitter_ns=500 * US,
        adapter=StageTiming(2 * MS, 2 * MS + 200 * US),
        preprocessing=StageTiming(17 * MS, 17 * MS + 500 * US),
        computer_vision=StageTiming(17 * MS, 17 * MS + 500 * US),
        eba=StageTiming(2 * MS, 2 * MS + 200 * US),
        frame_copy_cost=StageTiming(800 * US, 1 * MS),
        deterministic_camera=deterministic_camera,
    )
