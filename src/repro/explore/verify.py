"""Determinism verification: DEAR under explored schedules.

The paper's claim is not "the DEAR variant usually behaves"; it is
that for *any* scheduling the observable behaviour is either identical
or a flagged assumption violation.  This module checks exactly that:
run the deterministic brake assistant under every schedule the
explorer produced (plus the shrunk counterexample) and compare the
per-environment :meth:`~repro.reactors.telemetry.Trace.fingerprint`
byte-for-byte against the unperturbed baseline.

A schedule whose preemptions stay inside the platform assumptions
(see :data:`repro.explore.scenarios.IN_BUDGET_PREEMPT_NS`) must be
fingerprint-identical.  A schedule that blows a deadline shows up as
deadline-miss / STP-violation counters — an *observable* divergence,
which the verifier reports as flagged.  What must never happen is a
**silent divergence**: different fingerprints with zero violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable

from repro.apps.brake.det import run_det_brake_assistant
from repro.explore.decisions import InterventionSchedule
from repro.harness.sweep import SweepRunner
from repro.sim.rng import stream_hooks


@dataclass
class ScheduleVerdict:
    """DEAR's behaviour under one schedule."""

    label: str
    identical: bool
    deadline_misses: int
    stp_violations: int
    errors_total: int

    @property
    def flagged(self) -> bool:
        """The run violated a platform assumption (observable)."""
        return self.deadline_misses > 0 or self.stp_violations > 0

    @property
    def silent_divergence(self) -> bool:
        """Diverged without any observable violation — must not happen."""
        return not self.identical and not self.flagged


@dataclass
class VerificationResult:
    """Aggregate determinism verdict over many schedules."""

    reference: dict[str, str]
    verdicts: list[ScheduleVerdict] = field(default_factory=list)

    @property
    def schedules(self) -> int:
        return len(self.verdicts)

    @property
    def identical(self) -> int:
        return sum(1 for verdict in self.verdicts if verdict.identical)

    @property
    def flagged(self) -> list[ScheduleVerdict]:
        return [v for v in self.verdicts if not v.identical and v.flagged]

    @property
    def silent_divergences(self) -> list[ScheduleVerdict]:
        return [v for v in self.verdicts if v.silent_divergence]

    @property
    def ok(self) -> bool:
        """Determinism holds: divergence only ever with a flag raised."""
        return not self.silent_divergences


def _run_verdict(
    schedule_data: dict,
    experiment: Callable[..., Any],
    scenario: Any,
    exclude: tuple[str, ...],
) -> dict:
    """Worker body: one DEAR run under one schedule."""
    schedule = InterventionSchedule.from_dict(schedule_data)
    controller = schedule.controller(exclude=exclude)
    with stream_hooks(controller):
        result = experiment(schedule.base_seed, scenario)
    return {
        "label": schedule.label or schedule.describe(),
        "fingerprints": dict(result.trace_fingerprints),
        "deadline_misses": result.deadline_misses,
        "stp_violations": result.stp_violations,
        "errors_total": result.errors.total(),
    }


def verify_determinism(
    schedules: list[InterventionSchedule],
    scenario: Any,
    base_seed: int = 0,
    experiment: Callable[..., Any] = run_det_brake_assistant,
    sweep: SweepRunner | None = None,
    input_threads: tuple[str, ...] = ("camera",),
) -> VerificationResult:
    """Run DEAR under every schedule; compare trace fingerprints.

    The comparison is only meaningful when the *inputs* are held
    fixed — the determinism claim is "same inputs ⇒ same trace", so
    the verifier must vary scheduling and nothing else.  Two
    normalisations enforce that:

    * The reference is the unperturbed run of *base_seed*.  Schedules
      whose ``base_seed`` differs would legitimately see different
      event tags, so all schedules are re-anchored to *base_seed*.
    * Preemptions that land on sensor/environment threads (names
      matching *input_threads*) are suppressed: delaying a sensor
      driver shifts when its physical action is scheduled, i.e. it
      changes the input timeline, not the SUT's scheduling.
    """
    sweep = sweep or SweepRunner()
    reference_run = experiment(base_seed, scenario)
    reference = dict(reference_run.trace_fingerprints)

    anchored = [
        InterventionSchedule(
            base_seed=base_seed,
            preemptions=schedule.preemptions,
            label=schedule.label or f"schedule[{index}]",
        )
        for index, schedule in enumerate(schedules)
    ]
    rows = sweep.map(
        partial(
            _run_verdict,
            experiment=experiment,
            scenario=scenario,
            exclude=tuple(input_threads),
        ),
        [schedule.to_dict() for schedule in anchored],
        name="explore-verify-det",
        params={
            "experiment": getattr(experiment, "__name__", repr(experiment)),
            "scenario": repr(scenario),
            "base_seed": base_seed,
            "input_threads": list(input_threads),
        },
    )
    verdicts = [
        ScheduleVerdict(
            label=row["label"],
            identical=row["fingerprints"] == reference,
            deadline_misses=row["deadline_misses"],
            stp_violations=row["stp_violations"],
            errors_total=row["errors_total"],
        )
        for row in rows
    ]
    return VerificationResult(reference=reference, verdicts=verdicts)
