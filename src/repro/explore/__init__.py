"""Systematic interleaving exploration for the simulated platforms.

The paper's first source of nondeterminism — OS scheduling — lives in
:class:`repro.sim.scheduler.CpuScheduler`, which draws every decision
(which ready thread runs, how late a timer fires, who gets a freed
mutex) from a seeded RNG stream.  Seed sweeps *sample* that space; this
package turns it into a correctness tool that *searches* it:

* :mod:`repro.explore.decisions` — record every scheduler decision as a
  compact, JSON-serializable trace and replay it bit-exactly in place
  of the RNG, so any observed failure becomes a portable artifact;
* :mod:`repro.explore.strategies` — a PCT-style explorer (bounded
  preemption points, the timed analogue of priority-change points)
  alongside uniform-random seed sweeping;
* :mod:`repro.explore.explorer` — the budgeted exploration loop, fanned
  out over the :class:`repro.harness.sweep.SweepRunner` process pool;
* :mod:`repro.explore.shrink` — delta-debugging a failing schedule down
  to a minimal set of preemption points that still reproduces the bug;
* :mod:`repro.explore.verify` — run the DEAR variant under explored
  schedules and assert byte-identical trace fingerprints (or a flagged,
  observable assumption violation — never silent divergence).
"""

from repro.explore.decisions import (
    DecisionRecord,
    DecisionTrace,
    InterventionSchedule,
    PreemptionPoint,
    ReplayDivergence,
    ScheduleRecorder,
    ScheduleReplayer,
    is_scheduler_stream,
)
from repro.explore.explorer import ExplorationResult, Explorer, frame_drop
from repro.explore.scenarios import (
    IN_BUDGET_PREEMPT_NS,
    calibration_scenario,
)
from repro.explore.shrink import ShrinkResult, ddmin, shrink_schedule
from repro.explore.strategies import PctStrategy, RandomSweepStrategy
from repro.explore.verify import VerificationResult, verify_determinism

__all__ = [
    "DecisionRecord",
    "DecisionTrace",
    "InterventionSchedule",
    "PreemptionPoint",
    "ReplayDivergence",
    "ScheduleRecorder",
    "ScheduleReplayer",
    "is_scheduler_stream",
    "Explorer",
    "ExplorationResult",
    "frame_drop",
    "PctStrategy",
    "RandomSweepStrategy",
    "ShrinkResult",
    "ddmin",
    "shrink_schedule",
    "VerificationResult",
    "verify_determinism",
    "calibration_scenario",
    "IN_BUDGET_PREEMPT_NS",
]
