"""Delta-debugging a failing schedule to a minimal preemption set.

A PCT-found failure typically carries more preemption points than the
bug needs (the strategy sprays ``depth`` of them).  Because an
:class:`~repro.explore.decisions.InterventionSchedule` is valid for
*any* subset of its points, classic ddmin (Zeller & Hildebrandt, 2002)
applies directly: split the point set into chunks, try each chunk and
each complement, keep whatever still reproduces, refine granularity
until 1-minimal — removing any single remaining point makes the
failure disappear.  The result reads as a diagnosis: "the frame drop
needs exactly these 2 preemptions".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.explore.decisions import InterventionSchedule, PreemptionPoint

if TYPE_CHECKING:  # deferred: explorer pulls in app code that imports us back
    from repro.explore.explorer import ExecutionOutcome, Explorer


@dataclass
class ShrinkResult:
    """Outcome of minimizing one failing schedule."""

    original: InterventionSchedule
    minimal: InterventionSchedule
    #: Experiment executions spent shrinking.
    trials: int
    #: (points tried, reproduced?) per trial, in order.
    history: list[tuple[int, bool]] = field(default_factory=list)
    #: Error counters of the minimal schedule's run.
    errors: dict[str, int] = field(default_factory=dict)

    @property
    def removed(self) -> int:
        return len(self.original.preemptions) - len(self.minimal.preemptions)


def _split(points: Sequence, n: int) -> list[list]:
    """*points* in n contiguous chunks (first chunks get the remainder)."""
    chunks = []
    start = 0
    for index in range(n):
        size = len(points) // n + (1 if index < len(points) % n else 0)
        if size:
            chunks.append(list(points[start : start + size]))
        start += size
    return chunks


def ddmin(items: Sequence, reproduces: Callable[[Sequence], bool]) -> list:
    """Classic ddmin over any subset-closed failure representation.

    *items* must already reproduce (callers check; this function does
    not re-run the full set).  Returns a 1-minimal sublist: removing any
    single remaining item makes ``reproduces`` return ``False``.  Used
    for preemption points (scheduler schedules) and fired-fault records
    (fault traces) alike — both are valid for every subset.
    """
    points = list(items)
    granularity = 2
    while len(points) >= 2:
        chunks = _split(points, granularity)
        reduced = False
        for chunk in chunks:
            if len(chunk) < len(points) and reproduces(chunk):
                points, granularity, reduced = chunk, 2, True
                break
        if not reduced:
            for chunk in chunks:
                complement = [p for p in points if p not in chunk]
                if complement and reproduces(complement):
                    points = complement
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
        if not reduced:
            if granularity >= len(points):
                break
            granularity = min(len(points), granularity * 2)
    return points


def shrink_schedule(
    explorer: Explorer,
    schedule: InterventionSchedule,
    predicate: Callable[[ExecutionOutcome], bool] | None = None,
) -> ShrinkResult:
    """ddmin *schedule*'s preemption points under *explorer*'s experiment.

    *predicate* defaults to :func:`repro.explore.explorer.frame_drop`.
    Raises :class:`ValueError` if the full schedule does not reproduce
    the failure (nothing to shrink from).
    """
    from repro.explore.explorer import ExecutionOutcome, frame_drop

    if predicate is None:
        predicate = frame_drop
    history: list[tuple[int, bool]] = []
    last_errors: dict[str, dict[str, int]] = {}
    # Probes share long prefixes by construction (ddmin removes points,
    # it never adds them), so when the explorer carries a snapshot
    # engine, each probe forks from the deepest holder that matches its
    # surviving prefix instead of replaying the whole run from t=0.
    engine = getattr(explorer, "snapshots", None)
    if engine is not None and not engine.active:
        engine = None

    def reproduces(points: Sequence[PreemptionPoint]) -> bool:
        candidate = schedule.with_points(points)
        if engine is not None:
            summary = explorer.run_schedule_forked(candidate)
            errors_total = summary["errors_total"]
            errors = dict(summary["errors"])
        else:
            result, _controller = explorer.run_schedule(candidate)
            errors_total = result.errors.total()
            errors = result.errors.as_dict()
        outcome = ExecutionOutcome(
            index=-1,
            schedule=candidate,
            errors_total=errors_total,
            errors=errors,
        )
        ok = predicate(outcome)
        history.append((len(points), ok))
        if ok:
            last_errors["minimal"] = outcome.errors
        return ok

    points = list(schedule.preemptions)
    if not reproduces(points):
        raise ValueError(
            f"schedule does not reproduce the failure: {schedule.describe()}"
        )

    points = ddmin(points, reproduces)

    minimal = explorer.annotate(schedule.with_points(points, label="shrunk"))
    return ShrinkResult(
        original=schedule,
        minimal=minimal,
        trials=len(history),
        history=history,
        errors=last_errors.get("minimal", {}),
    )
