"""The metrics registry: counters, gauges and fixed-bucket histograms.

Metrics capture the *physical-time* quantities the paper's evaluation
is about — reaction lag, deadline slack, safe-to-process waits, mutex
hold times, queue depths, drop counts — which the logical
:class:`~repro.reactors.telemetry.Trace` deliberately excludes from its
fingerprint.  Everything here is observation-only: recording a sample
draws no randomness and changes no state the simulation reads back.

Histograms use *fixed* bucket bounds (shared across seeds and runs), so
per-seed snapshots merge exactly: :func:`aggregate_snapshots` sums the
bucket counts of N seeds and estimates p50/p95 from the merged
distribution, which is how ``harness/sweep.py`` turns per-seed
``metrics.json`` snapshots into cross-seed aggregates.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS_NS",
    "DEPTH_BUCKETS",
    "aggregate_snapshots",
    "labeled",
    "parse_labeled",
    "percentile",
]

#: Default histogram bounds for durations: 1 µs .. 1 s, roughly
#: quarter-decade spacing.  An implicit overflow bucket catches the rest.
DEFAULT_TIME_BUCKETS_NS: tuple[int, ...] = (
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    25_000_000,
    50_000_000,
    100_000_000,
    250_000_000,
    1_000_000_000,
)

#: Default bounds for small cardinalities (queue depths, retries).
DEPTH_BUCKETS: tuple[int, ...] = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256)


def labeled(name: str, **labels: str) -> str:
    """Encode a labeled metric name, Prometheus exposition style.

    The registry keys metrics by name only, so labels are name-encoded
    with sorted keys for a canonical form::

        labeled("drops_total", layer="switch", cause="random-drop")
        -> 'drops_total{cause="random-drop",layer="switch"}'

    Use :func:`parse_labeled` to recover the family and label dict from
    a snapshot key.
    """
    inner = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_labeled(name: str) -> tuple[str, dict[str, str]]:
    """Split a :func:`labeled` name back into (family, labels)."""
    if not name.endswith("}") or "{" not in name:
        return name, {}
    family, _, inner = name[:-1].partition("{")
    labels: dict[str, str] = {}
    if inner:
        for pair in inner.split(","):
            key, _, value = pair.partition("=")
            labels[key] = value.strip('"')
    return family, labels


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (default 1)."""
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A sampled level; remembers the last and the peak value."""

    __slots__ = ("name", "value", "peak", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self.peak = 0
        self.samples = 0

    def set(self, value: int | float) -> None:
        """Record the current level."""
        self.value = value
        if value > self.peak:
            self.peak = value
        self.samples += 1

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value}, peak={self.peak})"


class Histogram:
    """A fixed-bucket histogram over non-negative samples.

    ``bounds`` are inclusive upper bucket edges; one extra overflow
    bucket counts samples above the last edge.  Keeping the edges fixed
    (never adapted to the data) is what makes snapshots of different
    seeds exactly mergeable.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[int] | None = None) -> None:
        self.name = name
        self.bounds: tuple[int, ...] = tuple(bounds or DEFAULT_TIME_BUCKETS_NS)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram {name!r} bounds must be sorted")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0
        self.min: int | float | None = None
        self.max: int | float | None = None

    def observe(self, value: int | float) -> None:
        """Record one sample."""
        index = _bucket_index(self.bounds, value)
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> int | float:
        """Estimate the *q*-quantile from the bucket counts.

        Returns the upper edge of the bucket holding the quantile rank
        (the exact maximum for the overflow bucket), which is the usual
        conservative fixed-bucket estimate.  The extremes are exact:
        ``quantile(0.0)`` is the observed minimum and ``quantile(1.0)``
        the observed maximum, not bucket-edge estimates.
        """
        return _bucket_quantile(
            self.bounds, self.counts, self.count, self.min, self.max, q
        )

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:.0f})"


def _bucket_index(bounds: Sequence[int], value: int | float) -> int:
    return bisect_left(bounds, value)


def _bucket_quantile(
    bounds: Sequence[int],
    counts: Sequence[int],
    count: int,
    minimum: int | float | None,
    maximum: int | float | None,
    q: float,
) -> int | float:
    if count == 0:
        return 0
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    # The extremes were observed exactly; only interior quantiles need
    # the bucket-edge estimate.
    if q == 0.0 and minimum is not None:
        return minimum
    if q == 1.0 and maximum is not None:
        return maximum
    rank = q * count
    seen = 0
    for index, bucket_count in enumerate(counts):
        seen += bucket_count
        if seen >= rank and bucket_count:
            if index < len(bounds):
                edge = bounds[index]
                # The bucket edge is an upper estimate; never report a
                # quantile beyond the actually observed maximum.
                return min(edge, maximum) if maximum is not None else edge
            return maximum if maximum is not None else bounds[-1]
    return maximum if maximum is not None else bounds[-1]


class MetricsRegistry:
    """Name-keyed store of counters, gauges and histograms.

    Accessors are get-or-create, so instrumentation sites never need a
    registration step; asking for an existing name with a different
    type raises, catching accidental collisions early.
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[str, Any] = {}

    def _get(self, name: str, kind: type, factory) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter *name*."""
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge *name*."""
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, bounds: Sequence[int] | None = None) -> Histogram:
        """Get or create the histogram *name* (bounds fixed on creation)."""
        return self._get(name, Histogram, lambda: Histogram(name, bounds))

    def names(self) -> list[str]:
        """Sorted names of all registered metrics."""
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, Any]:
        """A JSON-able snapshot of every metric, grouped by type."""
        counters: dict[str, int] = {}
        gauges: dict[str, dict[str, Any]] = {}
        histograms: dict[str, dict[str, Any]] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = {
                    "value": metric.value,
                    "peak": metric.peak,
                    "samples": metric.samples,
                }
            else:
                histograms[name] = {
                    "bounds": list(metric.bounds),
                    "counts": list(metric.counts),
                    "count": metric.count,
                    "sum": metric.total,
                    "min": metric.min,
                    "max": metric.max,
                    "p50": metric.quantile(0.50),
                    "p95": metric.quantile(0.95),
                }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}


def percentile(values: Sequence[int | float], q: float) -> int | float:
    """Nearest-rank percentile of *values* (0 for an empty sequence)."""
    if not values:
        return 0
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
    return ordered[rank]


def aggregate_snapshots(snapshots: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """Merge per-seed :meth:`MetricsRegistry.snapshot` dicts.

    Counters and gauge peaks aggregate across seeds as distributions
    (p50/p95/max plus total/mean); histograms with identical bounds
    merge bucket-by-bucket, with p50/p95 re-estimated from the merged
    counts.  Seeds missing a metric contribute zero — a seed in which an
    error counter never fired still counts as an observation of 0.
    """
    snapshots = list(snapshots)
    result: dict[str, Any] = {
        "seeds": len(snapshots),
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
    if not snapshots:
        return result

    counter_names = sorted({n for s in snapshots for n in s.get("counters", {})})
    for name in counter_names:
        values = [s.get("counters", {}).get(name, 0) for s in snapshots]
        result["counters"][name] = {
            "total": sum(values),
            "mean": sum(values) / len(values),
            "p50": percentile(values, 0.50),
            "p95": percentile(values, 0.95),
            "max": max(values),
        }

    gauge_names = sorted({n for s in snapshots for n in s.get("gauges", {})})
    for name in gauge_names:
        peaks = [s.get("gauges", {}).get(name, {}).get("peak", 0) for s in snapshots]
        result["gauges"][name] = {
            "peak_p50": percentile(peaks, 0.50),
            "peak_p95": percentile(peaks, 0.95),
            "peak_max": max(peaks),
        }

    histogram_names = sorted({n for s in snapshots for n in s.get("histograms", {})})
    for name in histogram_names:
        merged = _merge_histograms(
            [s.get("histograms", {}).get(name) for s in snapshots]
        )
        if merged is not None:
            result["histograms"][name] = merged
    return result


def _merge_histograms(
    entries: Sequence[dict[str, Any] | None],
) -> dict[str, Any] | None:
    present = [entry for entry in entries if entry]
    if not present:
        return None
    bounds = present[0]["bounds"]
    if any(entry["bounds"] != bounds for entry in present):
        # Incompatible bucket layouts cannot merge exactly; refuse
        # loudly rather than fabricate a distribution.
        raise ValueError("cannot merge histograms with different bounds")
    counts = [0] * (len(bounds) + 1)
    for entry in present:
        for index, bucket_count in enumerate(entry["counts"]):
            counts[index] += bucket_count
    count = sum(entry["count"] for entry in present)
    total = sum(entry["sum"] for entry in present)
    minima = [entry["min"] for entry in present if entry["min"] is not None]
    maxima = [entry["max"] for entry in present if entry["max"] is not None]
    minimum = min(minima) if minima else None
    maximum = max(maxima) if maxima else None
    return {
        "bounds": list(bounds),
        "counts": counts,
        "count": count,
        "sum": total,
        "mean": total / count if count else 0.0,
        "min": minimum,
        "max": maximum,
        "p50": _bucket_quantile(bounds, counts, count, minimum, maximum, 0.50),
        "p95": _bucket_quantile(bounds, counts, count, minimum, maximum, 0.95),
        "seeds_observed": len(present),
    }
