"""Exporters: Chrome/Perfetto ``trace_event`` JSON and ``metrics.json``.

The timeline export targets the Chrome ``trace_event`` format (the JSON
flavour both ``chrome://tracing`` and https://ui.perfetto.dev load
directly): one pseudo-process ``repro``, one pseudo-thread per event-bus
track, complete spans as ``"ph": "X"`` and instants as ``"ph": "i"``.
Timestamps are simulation time converted to the format's microsecond
unit; the wall-clock stamp and any structured arguments ride along in
``args``.

:func:`validate_trace_data` is the shape check CI's obs-smoke job and
the unit tests share: phases from the supported vocabulary,
non-negative durations, and per-track monotonically non-decreasing
timestamps.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.obs.context import Observation

__all__ = [
    "trace_events",
    "write_trace",
    "metrics_document",
    "write_metrics",
    "validate_trace_data",
]

#: The pid every exported event carries (one simulated system = one process).
TRACE_PID = 1

#: Event phases the exporter emits / the validator accepts.  ``s``/``t``/``f``
#: are flow events (Perfetto arrows linking spans across tracks).
_PHASES = {"M", "X", "i", "s", "t", "f"}

#: Which event-bus track a flow hop's arrow anchor lands on.  Hops on
#: layers without a dedicated track ride the network lane (that is where
#: their surrounding spans live).
_FLOW_TRACKS = {
    "sensor": "network",
    "switch": "network",
    "nic": "network",
    "socket": "network",
    "someip": "network",
    "dear": "dear",
    "reactor": "reactors",
    "app": "reactors",
    "actuator": "reactors",
}


def _flow_event_records(
    flows: Any, tids: dict[str, int]
) -> list[tuple[str, int, dict[str, Any]]]:
    """Flow-event (``s``/``t``/``f``) records for every multi-hop flow.

    Returns ``(track, ts_ns, record)`` tuples so the caller can merge
    them into the per-lane ``(track, ts)`` sort next to the spans they
    arrow between.  Perfetto binds each arrow anchor to the enclosing
    slice on its (pid, tid) lane at that timestamp.
    """
    records: list[tuple[str, int, dict[str, Any]]] = []
    for record in flows.flows.values():
        anchors = [
            (hop, _FLOW_TRACKS.get(hop.layer, "network"))
            for hop in record.hops
        ]
        anchors = [(hop, track) for hop, track in anchors if track in tids]
        if len(anchors) < 2:
            continue
        for index, (hop, track) in enumerate(anchors):
            phase = "s" if index == 0 else ("f" if index == len(anchors) - 1 else "t")
            event: dict[str, Any] = {
                "name": f"flow {record.flow_id}",
                "cat": "flow",
                "ph": phase,
                "id": record.flow_id,
                "pid": TRACE_PID,
                "tid": tids[track],
                "ts": hop.ts / 1_000.0,  # ns -> us, the format's unit
                "args": {"layer": hop.layer, "hop": hop.name},
            }
            if phase == "f":
                event["bp"] = "e"  # bind to the enclosing slice
            records.append((track, hop.ts, event))
    return records


def trace_events(observation: "Observation") -> list[dict[str, Any]]:
    """Render an observation's event bus as ``trace_event`` dicts.

    Events are ordered by ``(track, ts)`` so each pseudo-thread's
    timeline is monotonic regardless of the interleaved record order
    (different platforms' clocks may skew against global time).  Flow
    events, when causal flow tracing was active, are merged into the
    same per-lane order (after spans at equal timestamps, so each arrow
    anchor binds to the slice opened at that instant).
    """
    tracks = observation.bus.tracks()
    tids = {track: index + 1 for index, track in enumerate(tracks)}
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    for track in tracks:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tids[track],
                "args": {"name": track},
            }
        )
    keyed: list[tuple[str, int, int, dict[str, Any]]] = []
    for order, event in enumerate(observation.bus.events):
        record: dict[str, Any] = {
            "name": event.name,
            "cat": event.track,
            "ph": event.phase,
            "pid": TRACE_PID,
            "tid": tids[event.track],
            "ts": event.ts / 1_000.0,  # ns -> us, the format's unit
        }
        if event.phase == "X":
            record["dur"] = event.dur / 1_000.0
        if event.phase == "i":
            record["s"] = "t"  # thread-scoped instant
        args = dict(event.args) if event.args else {}
        args["wall_ns"] = event.wall_ns
        record["args"] = args
        keyed.append((event.track, event.ts, order, record))
    flows = getattr(observation, "flows", None)
    if flows is not None:
        base = len(keyed)
        for offset, (track, ts, record) in enumerate(_flow_event_records(flows, tids)):
            keyed.append((track, ts, base + offset, record))
    keyed.sort(key=lambda item: (item[0], item[1], item[2]))
    events.extend(record for _, _, _, record in keyed)
    return events


def write_trace(observation: "Observation", path: str | Path) -> Path:
    """Write the observation's timeline as a ``trace_event`` JSON file."""
    path = Path(path)
    document = {
        "traceEvents": trace_events(observation),
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "tracks": observation.bus.tracks(),
        },
    }
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return path


def metrics_document(observation: "Observation") -> dict[str, Any]:
    """The machine-readable ``metrics.json`` payload for one run."""
    return {
        "format": "repro-metrics/v1",
        "events": len(observation.bus),
        "tracks": observation.bus.tracks(),
        "metrics": observation.metrics.snapshot(),
    }


def write_metrics(observation: "Observation", path: str | Path) -> Path:
    """Write one run's metrics snapshot as JSON."""
    path = Path(path)
    path.write_text(
        json.dumps(metrics_document(observation), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def validate_trace_data(data: Any) -> list[str]:
    """Check *data* against the ``trace_event`` shape; returns problems.

    Accepts either the object form (``{"traceEvents": [...]}``) or the
    bare event array.  An empty list means the trace is well-formed:
    known phases, required fields, non-negative durations, and
    non-decreasing timestamps per ``(pid, tid)`` lane.
    """
    problems: list[str] = []
    if isinstance(data, dict):
        events = data.get("traceEvents")
        if not isinstance(events, list):
            return ["top-level object has no 'traceEvents' array"]
    elif isinstance(data, list):
        events = data
    else:
        return ["trace must be a JSON object or array"]

    last_ts: dict[tuple[Any, Any], float] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event[{index}] is not an object")
            continue
        phase = event.get("ph")
        if phase not in _PHASES:
            problems.append(f"event[{index}] has unsupported phase {phase!r}")
            continue
        if not event.get("name"):
            problems.append(f"event[{index}] has no name")
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"event[{index}] has no numeric ts")
            continue
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event[{index}] has invalid dur {dur!r}")
        if phase in ("s", "t", "f") and event.get("id") is None:
            problems.append(f"event[{index}] flow event has no id")
        lane = (event.get("pid"), event.get("tid"))
        previous = last_ts.get(lane)
        if previous is not None and ts < previous:
            problems.append(
                f"event[{index}] ts {ts} goes backwards on lane {lane} "
                f"(previous {previous})"
            )
        last_ts[lane] = ts
    return problems
