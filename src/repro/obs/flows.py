"""Causal flow tracing: per-frame hop records across every layer seam.

The paper's argument is per-frame — the stock brake assistant drops and
misaligns individual camera frames (Fig. 5) while DEAR delivers every
frame within its ``t + D + L + E`` bound — so the observability layer
needs request-tracing-style causal linkage, not just per-layer spans.
This module adds it: every camera frame owns a **flow** keyed by its
sequence number, and each layer it traverses appends a hop record
(layer, site name, sim timestamp).  From the hop chain we derive

* per-hop latency histograms (``flow.hop.<layer>_ns``) and an
  end-to-end histogram (``flow.e2e_latency_ns``) in the shared metrics
  registry, so they merge across seeds like every other metric;
* **drop attribution**: the first layer that loses a frame tags it with
  exactly one ``(layer, cause)`` pair (first-wins — a fan-out frame
  whose copies die in two places keeps the first verdict);
* a **critical-path report**: for each delivered frame, which
  consecutive-hop segment consumed the most of its deadline slack.

Correlation, not propagation
----------------------------

Flow IDs are *never* put on the wire.  Payload bytes feed the switch's
``size_bytes * ns_per_byte`` serialization delay, so even one extra
tag byte would perturb every latency in the simulation.  Instead the
registry correlates observation-side:

* **kernel context** — within a synchronous call chain (camera send →
  switch, NIC deliver → socket → SOME/IP dispatch → DEAR transactor)
  the registry carries a *current flow*; instrumentation sites read it
  without touching the frame.  The current flow never survives a sim
  yield point.
* **frame identity** — across the switch's scheduled delivery the flow
  rides an ``id(frame)`` map (frames are frozen and uniquely alive for
  the duration of the hop; duplicate faults deliver the *same* object
  twice, so entries carry a refcount).
* **event identity** — across the reactor scheduler's event queue the
  flow rides an ``id(value)`` map bound at ``schedule_physical`` /
  ``schedule_at_tag`` and resolved at ``_begin_tag``.
* **payload identity** — wire dicts and app dataclasses already carry
  the camera sequence (``seq`` on frames, ``frame_seq`` downstream),
  so asynchronous seams (skeleton TX from a reaction body, one-slot
  buffer writes from pool workers) self-correlate via
  :func:`flow_id_of`.

Like all of ``repro.obs`` the enabled path consumes **zero RNG draws**
and leaves ``Trace.fingerprint()`` byte-identical; the disabled path is
the existing ``o.enabled`` flag check plus an ``o.flows is None`` test.
"""

from __future__ import annotations

from typing import Any

from repro.obs.metrics import MetricsRegistry, labeled, percentile

__all__ = [
    "FlowRegistry",
    "FlowRecord",
    "Hop",
    "flow_id_of",
    "attribute_drop",
    "flow_report",
    "merge_flow_reports",
    "validate_flow_report",
    "FAULT_DROP_CAUSES",
    "LAYER_SENSOR",
    "LAYER_SWITCH",
    "LAYER_NIC",
    "LAYER_SOCKET",
    "LAYER_SOMEIP",
    "LAYER_DEAR",
    "LAYER_REACTOR",
    "LAYER_APP",
    "LAYER_ACTUATOR",
    "CAUSE_RANDOM_DROP",
    "CAUSE_FAULT_DROP",
    "CAUSE_FAULT_PARTITION",
    "CAUSE_FAULT_OUTAGE",
    "CAUSE_FCS",
    "CAUSE_UNBOUND_PORT",
    "CAUSE_QUEUE_OVERFLOW",
    "CAUSE_MALFORMED",
    "CAUSE_LATE",
    "CAUSE_DEADLINE",
    "CAUSE_BUFFER_OVERWRITE",
    "CAUSE_FANIN_MISMATCH",
    "CAUSE_NO_SUBSCRIBER",
    "CAUSE_IN_FLIGHT",
]

# -- taxonomy ---------------------------------------------------------------

#: Hop layers, in pipeline order.  ``sensor`` is the camera sample,
#: ``actuator`` the brake command; everything else is a transit layer.
LAYER_SENSOR = "sensor"
LAYER_SWITCH = "switch"
LAYER_NIC = "nic"
LAYER_SOCKET = "socket"
LAYER_SOMEIP = "someip"
LAYER_DEAR = "dear"
LAYER_REACTOR = "reactor"
LAYER_APP = "app"
LAYER_ACTUATOR = "actuator"

#: Drop causes.  Each lost frame gets exactly one ``(layer, cause)``.
CAUSE_RANDOM_DROP = "random-drop"  # SwitchConfig.drop_probability
CAUSE_FAULT_DROP = "fault-drop"  # fault-plan link drop
CAUSE_FAULT_PARTITION = "fault-partition"  # fault-plan partition drop
CAUSE_FAULT_OUTAGE = "fault-outage"  # fault-plan node outage drop
CAUSE_FCS = "fcs-drop"  # corrupted payload dropped at the NIC
CAUSE_UNBOUND_PORT = "unbound-port"  # no socket bound at destination
CAUSE_QUEUE_OVERFLOW = "queue-overflow"  # socket rx queue full
CAUSE_MALFORMED = "malformed"  # SOME/IP header unpack failure
CAUSE_LATE = "late-drop"  # LatePolicy DROP / LAST_KNOWN without history
CAUSE_DEADLINE = "deadline-drop"  # drop_on_deadline_miss output drop
CAUSE_BUFFER_OVERWRITE = "buffer-overwrite"  # one-slot buffer overwrote unread
CAUSE_FANIN_MISMATCH = "fanin-mismatch"  # fan-in stage discarded a misaligned group
CAUSE_NO_SUBSCRIBER = "no-subscriber"  # published with no live subscriber
CAUSE_IN_FLIGHT = "in-flight-at-end"  # report-time fallback, never recorded live

#: Map :class:`repro.faults.injector.FaultVerdict` drop kinds to causes.
FAULT_DROP_CAUSES = {
    "drop": CAUSE_FAULT_DROP,
    "partition-drop": CAUSE_FAULT_PARTITION,
    "outage-drop": CAUSE_FAULT_OUTAGE,
}


def flow_id_of(value: Any) -> int | None:
    """Best-effort flow extraction from a wire dict or app dataclass.

    Camera frames carry ``seq``; every derived message (lane, vehicles,
    brake command) carries ``frame_seq``.  Returns ``None`` for values
    that do not correlate (timer ticks, pulses, fault signals).
    """
    if isinstance(value, dict):
        flow = value.get("seq")
        if flow is None:
            flow = value.get("frame_seq")
    else:
        flow = getattr(value, "seq", None)
        if flow is None:
            flow = getattr(value, "frame_seq", None)
    return flow if isinstance(flow, int) and not isinstance(flow, bool) else None


class Hop:
    """One traversal record: (layer, site name, sim timestamp)."""

    __slots__ = ("layer", "name", "ts")

    def __init__(self, layer: str, name: str, ts: int):
        self.layer = layer
        self.name = name
        self.ts = ts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Hop({self.layer!r}, {self.name!r}, ts={self.ts})"


class FlowRecord:
    """The life of one camera frame: hop chain plus final verdict."""

    __slots__ = ("flow_id", "born_ns", "hops", "drop", "delivered_ns")

    def __init__(self, flow_id: int, born_ns: int):
        self.flow_id = flow_id
        self.born_ns = born_ns
        self.hops: list[Hop] = [Hop(LAYER_SENSOR, "camera", born_ns)]
        #: ``(layer, cause, ts)`` of the first recorded loss, or ``None``.
        self.drop: tuple[str, str, int] | None = None
        self.delivered_ns: int | None = None


class FlowRegistry:
    """Per-observation store of flow records and correlation state.

    Lives as ``Observation.flows`` (``None`` unless the capture opted in
    with ``flows=True``), so instrumentation sites pay one extra
    ``is None`` check on the obs-enabled path and nothing at all when
    observability is off.
    """

    __slots__ = ("flows", "current", "_frames", "_events", "_metrics")

    def __init__(self, metrics: MetricsRegistry):
        #: All flows ever begun, keyed by flow id, insertion-ordered.
        self.flows: dict[int, FlowRecord] = {}
        #: The flow owning the current synchronous kernel call chain.
        self.current: int | None = None
        # id(frame) -> [flow_id, pending deliveries] across the switch.
        self._frames: dict[int, list[int]] = {}
        # id(value) -> flow_id across the reactor scheduler event queue.
        self._events: dict[int, int] = {}
        self._metrics = metrics

    # -- lifecycle ----------------------------------------------------------

    def begin(self, flow_id: int, ts: int) -> FlowRecord:
        """Start a flow at the sensor and make it the current flow."""
        record = FlowRecord(flow_id, ts)
        self.flows[flow_id] = record
        self.current = flow_id
        self._metrics.counter("flow.begun").inc()
        return record

    def known(self, flow_id: int | None) -> bool:
        return flow_id is not None and flow_id in self.flows

    def hop(self, flow_id: int, layer: str, name: str, ts: int) -> None:
        """Append a hop and observe the latency since the previous hop."""
        record = self.flows.get(flow_id)
        if record is None:
            return
        previous = record.hops[-1]
        record.hops.append(Hop(layer, name, ts))
        self._metrics.histogram(f"flow.hop.{layer}_ns").observe(
            max(0, ts - previous.ts)
        )

    def drop(self, flow_id: int, layer: str, cause: str, ts: int) -> None:
        """Attribute a loss.  First verdict wins; later ones are ignored.

        A flow's fan-out copies can die in several places (the lane copy
        overwritten while the frame copy proceeds); only the first loss
        is kept, and :meth:`deliver` clears it entirely — attribution
        means *the frame failed to reach the actuator*, not that some
        branch was lossy along the way.
        """
        record = self.flows.get(flow_id)
        if record is None or record.drop is not None:
            return
        if record.delivered_ns is not None:
            return
        record.drop = (layer, cause, ts)

    def deliver(self, flow_id: int, ts: int) -> None:
        """Mark actuator output: final hop plus the end-to-end histogram."""
        record = self.flows.get(flow_id)
        if record is None or record.delivered_ns is not None:
            return
        self.hop(flow_id, LAYER_ACTUATOR, "brake-command", ts)
        record.delivered_ns = ts
        record.drop = None
        self._metrics.counter("flow.delivered").inc()
        self._metrics.histogram("flow.e2e_latency_ns").observe(
            max(0, ts - record.born_ns)
        )

    # -- kernel-context current flow ---------------------------------------

    def swap_current(self, flow_id: int | None) -> int | None:
        """Set the current flow, returning the previous one to restore."""
        previous = self.current
        self.current = flow_id
        return previous

    def restore_current(self, previous: int | None) -> None:
        self.current = previous

    # -- cross-boundary correlation maps ------------------------------------

    def frame_sent(self, frame: Any, flow_id: int) -> None:
        """Register an in-flight frame (call once per scheduled delivery)."""
        entry = self._frames.get(id(frame))
        if entry is not None and entry[0] == flow_id:
            entry[1] += 1
        else:
            self._frames[id(frame)] = [flow_id, 1]

    def frame_arrived(self, frame: Any) -> int | None:
        """Resolve (and release) an in-flight frame back to its flow."""
        key = id(frame)
        entry = self._frames.get(key)
        if entry is None:
            return None
        entry[1] -= 1
        if entry[1] <= 0:
            del self._frames[key]
        return entry[0]

    def bind_event(self, value: Any) -> None:
        """Tie a scheduler event value to the current flow (if any)."""
        if self.current is not None and value is not None:
            self._events[id(value)] = self.current

    def event_arrived(self, value: Any) -> int | None:
        """Resolve (and release) a scheduler event value to its flow."""
        if value is None:
            return None
        return self._events.pop(id(value), None)


def attribute_drop(
    observation: Any,
    layer: str,
    cause: str,
    ts: int,
    flow_id: int | None = None,
) -> None:
    """Shared bookkeeping for every drop site.

    Always increments the unified ``drops_total{cause,layer}`` labeled
    counter (the registry-level reconciliation satellite); when flows
    are active, additionally attributes the loss to *flow_id* or, when
    omitted, the current flow.  Call only with observability enabled.
    """
    observation.metrics.counter(labeled("drops_total", layer=layer, cause=cause)).inc()
    flows = observation.flows
    if flows is None:
        return
    if flow_id is None:
        flow_id = flows.current
    if flow_id is not None:
        flows.drop(flow_id, layer, cause, ts)


# -- reporting --------------------------------------------------------------


def _critical_path(flows: dict[str, dict]) -> dict:
    """Per-segment latency stats over delivered flows.

    A *segment* is a consecutive hop pair ``layerA->layerB``; the
    dominant segment of a flow is the one that consumed the most of its
    end-to-end latency — i.e. where its deadline slack went.
    """
    segments: dict[str, list[int]] = {}
    dominant: dict[str, int] = {}
    for entry in flows.values():
        if entry["delivered_ns"] is None:
            continue
        worst_name = None
        worst_cost = -1
        hops = entry["hops"]
        for a, b in zip(hops, hops[1:]):
            name = f"{a[0]}->{b[0]}"
            cost = b[2] - a[2]
            segments.setdefault(name, []).append(cost)
            if cost > worst_cost:
                worst_cost = cost
                worst_name = name
        if worst_name is not None:
            entry["dominant_segment"] = worst_name
            dominant[worst_name] = dominant.get(worst_name, 0) + 1
    stats = {}
    for name in sorted(segments):
        values = segments[name]
        stats[name] = {
            "count": len(values),
            "mean_ns": sum(values) / len(values),
            "p95_ns": percentile(values, 0.95),
            "max_ns": max(values),
        }
    return {"segments": stats, "dominant": dict(sorted(dominant.items()))}


def flow_report(registry: FlowRegistry) -> dict:
    """Build a ``flow-report/v1`` document from a finished run.

    JSON-native throughout (string flow keys, list hops) so it survives
    the sweep cache's JSON round-trip unchanged.  Frames that neither
    delivered nor recorded a drop are counted as ``unattributed`` and
    then given the ``in-flight-at-end`` fallback cause at their last
    hop's layer — frames still traversing at the horizon, or (in the
    stock variant) frames whose data was consumed by a misaligned
    fusion without producing an actuator output for their sequence.
    """
    flows: dict[str, dict] = {}
    delivered = 0
    unattributed = 0
    drops_by_layer: dict[str, int] = {}
    drops_by_cause: dict[str, int] = {}
    e2e: list[int] = []
    for record in registry.flows.values():
        entry = {
            "born_ns": record.born_ns,
            "hops": [[hop.layer, hop.name, hop.ts] for hop in record.hops],
            "delivered_ns": record.delivered_ns,
            "drop": list(record.drop) if record.drop is not None else None,
        }
        if record.delivered_ns is not None:
            delivered += 1
            e2e.append(record.delivered_ns - record.born_ns)
        else:
            if record.drop is None:
                unattributed += 1
                last = record.hops[-1]
                entry["drop"] = [last.layer, CAUSE_IN_FLIGHT, last.ts]
            layer, cause, _ = entry["drop"]
            drops_by_layer[layer] = drops_by_layer.get(layer, 0) + 1
            drops_by_cause[cause] = drops_by_cause.get(cause, 0) + 1
        flows[str(record.flow_id)] = entry
    total = len(flows)
    summary = {
        "total": total,
        "delivered": delivered,
        "dropped": total - delivered,
        "unattributed": unattributed,
        "drops_by_layer": dict(sorted(drops_by_layer.items())),
        "drops_by_cause": dict(sorted(drops_by_cause.items())),
        "e2e_p50_ns": percentile(e2e, 0.5) if e2e else None,
        "e2e_p95_ns": percentile(e2e, 0.95) if e2e else None,
        "e2e_max_ns": max(e2e) if e2e else None,
    }
    return {
        "format": "flow-report/v1",
        "flows": flows,
        "summary": summary,
        "critical_path": _critical_path(flows),
    }


def merge_flow_reports(reports: list[dict]) -> dict:
    """Aggregate per-seed ``flow-report/v1`` documents across a sweep.

    Counts and drop breakdowns sum; end-to-end quantiles are recomputed
    from the per-flow records, and critical-path segment stats merge by
    count/mean/max (per-seed p95 is not mergeable and is recomputed
    from the per-flow dominant counts only).
    """
    totals = {"total": 0, "delivered": 0, "dropped": 0, "unattributed": 0}
    drops_by_layer: dict[str, int] = {}
    drops_by_cause: dict[str, int] = {}
    e2e: list[int] = []
    seg_count: dict[str, int] = {}
    seg_sum: dict[str, float] = {}
    seg_max: dict[str, float] = {}
    dominant: dict[str, int] = {}
    for report in reports:
        summary = report["summary"]
        for key in totals:
            totals[key] += summary[key]
        for layer, n in summary["drops_by_layer"].items():
            drops_by_layer[layer] = drops_by_layer.get(layer, 0) + n
        for cause, n in summary["drops_by_cause"].items():
            drops_by_cause[cause] = drops_by_cause.get(cause, 0) + n
        for entry in report["flows"].values():
            if entry["delivered_ns"] is not None:
                e2e.append(entry["delivered_ns"] - entry["born_ns"])
        path = report["critical_path"]
        for name, stats in path["segments"].items():
            seg_count[name] = seg_count.get(name, 0) + stats["count"]
            seg_sum[name] = seg_sum.get(name, 0.0) + stats["mean_ns"] * stats["count"]
            seg_max[name] = max(seg_max.get(name, 0.0), stats["max_ns"])
        for name, n in path["dominant"].items():
            dominant[name] = dominant.get(name, 0) + n
    segments = {
        name: {
            "count": seg_count[name],
            "mean_ns": seg_sum[name] / seg_count[name],
            "max_ns": seg_max[name],
        }
        for name in sorted(seg_count)
    }
    return {
        "format": "flow-report-aggregate/v1",
        "runs": len(reports),
        "summary": {
            **totals,
            "drops_by_layer": dict(sorted(drops_by_layer.items())),
            "drops_by_cause": dict(sorted(drops_by_cause.items())),
            "e2e_p50_ns": percentile(e2e, 0.5) if e2e else None,
            "e2e_p95_ns": percentile(e2e, 0.95) if e2e else None,
            "e2e_max_ns": max(e2e) if e2e else None,
        },
        "critical_path": {
            "segments": segments,
            "dominant": dict(sorted(dominant.items())),
        },
    }


_SUMMARY_KEYS = (
    "total",
    "delivered",
    "dropped",
    "unattributed",
    "drops_by_layer",
    "drops_by_cause",
)


def validate_flow_report(data: Any) -> list[str]:
    """Shape-check a ``flow-report/v1`` or aggregate document.

    Returns a list of problems (empty = valid).  Checks the count
    invariants the CI flows-smoke job relies on: delivered + dropped
    equals total, every undelivered flow carries exactly one
    ``(layer, cause, ts)`` attribution, and the drop breakdowns sum to
    the dropped count.
    """
    problems: list[str] = []
    if not isinstance(data, dict):
        return ["flow report is not a dict"]
    fmt = data.get("format")
    if fmt not in ("flow-report/v1", "flow-report-aggregate/v1"):
        problems.append(f"unknown format {fmt!r}")
    summary = data.get("summary")
    if not isinstance(summary, dict):
        return problems + ["missing summary"]
    for key in _SUMMARY_KEYS:
        if key not in summary:
            problems.append(f"summary missing {key!r}")
    if problems:
        return problems
    if summary["delivered"] + summary["dropped"] != summary["total"]:
        problems.append(
            "delivered + dropped != total: "
            f"{summary['delivered']} + {summary['dropped']} != {summary['total']}"
        )
    for breakdown in ("drops_by_layer", "drops_by_cause"):
        if sum(summary[breakdown].values()) != summary["dropped"]:
            problems.append(f"{breakdown} does not sum to dropped")
    flows = data.get("flows")
    if fmt == "flow-report/v1":
        if not isinstance(flows, dict):
            return problems + ["missing flows"]
        if len(flows) != summary["total"]:
            problems.append("flows count != summary total")
        for flow_id, entry in flows.items():
            hops = entry.get("hops")
            if not hops or any(len(hop) != 3 for hop in hops):
                problems.append(f"flow {flow_id}: malformed hops")
                continue
            if any(a[2] > b[2] for a, b in zip(hops, hops[1:])):
                problems.append(f"flow {flow_id}: hop timestamps not monotonic")
            delivered = entry.get("delivered_ns")
            drop = entry.get("drop")
            if delivered is None:
                if not (isinstance(drop, list) and len(drop) == 3):
                    problems.append(f"flow {flow_id}: undelivered without attribution")
            elif drop is not None:
                problems.append(f"flow {flow_id}: both delivered and dropped")
    return problems
