"""Picklable, obs-enabled experiment drivers.

The sweep engine fans experiments out over worker *processes*, and the
active observation is process-global — so the obs context must be
entered inside the worker, not around the sweep.  These module-level
functions do exactly that: run one brake-assistant seed under
:func:`repro.obs.capture` and return a JSON-able summary containing the
metrics snapshot (cacheable by the sweep's result cache like any other
per-seed value).

``repro metrics`` maps :func:`run_brake_with_obs` over a seed range and
merges the snapshots with
:func:`repro.harness.sweep.merge_metric_snapshots`; ``repro trace``
uses :func:`observe_brake_run` inline for a single fully-traced run.
"""

from __future__ import annotations

from typing import Any

from repro.obs.context import Observation, capture

__all__ = ["BRAKE_VARIANTS", "observe_brake_run", "run_brake_with_obs"]

#: Experiment variants exposed to the ``repro trace``/``metrics`` CLI.
BRAKE_VARIANTS = ("det", "nondet")


def _experiment(variant: str):
    # Imported lazily: drivers must stay importable in worker processes
    # without paying for the full application stack at module import.
    if variant == "det":
        from repro.apps.brake.det import run_det_brake_assistant

        return run_det_brake_assistant
    if variant == "nondet":
        from repro.apps.brake.nondet import run_nondet_brake_assistant

        return run_nondet_brake_assistant
    raise ValueError(f"unknown brake variant {variant!r}; use one of {BRAKE_VARIANTS}")


def observe_brake_run(
    seed: int, scenario: Any = None, variant: str = "det"
) -> tuple[Observation, Any]:
    """Run one brake-assistant seed with full observability.

    Returns ``(observation, run_result)`` — the observation holds the
    event bus (for the trace export) and the metrics registry.
    """
    experiment = _experiment(variant)
    with capture() as observation:
        result = experiment(seed, scenario)
    return observation, result


def run_brake_with_obs(
    seed: int, scenario: Any = None, variant: str = "det"
) -> dict[str, Any]:
    """Sweep-worker body: one observed seed, summarized as plain data."""
    observation, result = observe_brake_run(seed, scenario, variant)
    return {
        "seed": seed,
        "variant": variant,
        "errors": result.errors.as_dict(),
        "deadline_misses": result.deadline_misses,
        "stp_violations": result.stp_violations,
        "frames_answered": len(result.commands),
        "trace_fingerprints": dict(result.trace_fingerprints),
        "events": len(observation.bus),
        "tracks": observation.bus.tracks(),
        "metrics": observation.metrics.snapshot(),
    }
