"""Picklable, obs-enabled experiment drivers.

The sweep engine fans experiments out over worker *processes*, and the
active observation is process-global — so the obs context must be
entered inside the worker, not around the sweep.  These module-level
functions do exactly that: run one seed of any registered app under
:func:`repro.obs.capture` and return a JSON-able summary containing the
metrics snapshot (cacheable by the sweep's result cache like any other
per-seed value).

Dispatch goes through :mod:`repro.apps.registry` — the *app* argument
names any registered application (``brake`` by default, or a scenario
library entry), the *variant* one of its runners.  ``repro metrics``
maps :func:`run_brake_with_obs` over a seed range and merges the
snapshots with :func:`repro.harness.sweep.merge_metric_snapshots`;
``repro trace`` uses :func:`observe_brake_run` inline for a single
fully-traced run.
"""

from __future__ import annotations

from typing import Any

from repro.obs.context import Observation, capture
from repro.obs.flows import flow_report

__all__ = [
    "BRAKE_VARIANTS",
    "observe_brake_run",
    "run_brake_with_obs",
    "observe_brake_flows",
    "run_brake_flows",
]

#: The classic variant pair; kept as a fallback legend (the registry is
#: the authoritative source: ``repro.apps.get(app).variants()``).
BRAKE_VARIANTS = ("det", "nondet")


def _experiment(variant: str, app: str = "brake"):
    # Resolved lazily through the registry: drivers must stay importable
    # in worker processes without paying for the full application stack
    # at module import.
    from repro.apps import registry

    return registry.get(app).runner(variant)


def observe_brake_run(
    seed: int, scenario: Any = None, variant: str = "det", app: str = "brake"
) -> tuple[Observation, Any]:
    """Run one seed of *app* with full observability.

    Returns ``(observation, run_result)`` — the observation holds the
    event bus (for the trace export) and the metrics registry.
    """
    experiment = _experiment(variant, app)
    with capture() as observation:
        result = experiment(seed, scenario)
    return observation, result


def run_brake_with_obs(
    seed: int, scenario: Any = None, variant: str = "det", app: str = "brake"
) -> dict[str, Any]:
    """Sweep-worker body: one observed seed, summarized as plain data."""
    observation, result = observe_brake_run(seed, scenario, variant, app)
    return {
        "seed": seed,
        "variant": variant,
        "app": app,
        "errors": result.errors.as_dict(),
        "deadline_misses": result.deadline_misses,
        "stp_violations": result.stp_violations,
        "frames_answered": len(result.commands),
        "trace_fingerprints": dict(result.trace_fingerprints),
        "events": len(observation.bus),
        "tracks": observation.bus.tracks(),
        "metrics": observation.metrics.snapshot(),
    }


def observe_brake_flows(
    seed: int,
    scenario: Any = None,
    variant: str = "det",
    fault_plan: Any = None,
    switch_config: Any = None,
    app: str = "brake",
) -> tuple[Observation, Any]:
    """Run one seed of *app* with causal flow tracing active.

    Like :func:`observe_brake_run` but with ``capture(flows=True)``, so
    ``observation.flows`` holds the per-frame hop records and the trace
    export grows Perfetto flow arrows.  Apps that ship default faults
    (e.g. the failover library scenario) apply them when *fault_plan*
    is ``None``.
    """
    experiment = _experiment(variant, app)
    with capture(flows=True) as observation:
        result = experiment(
            seed, scenario, switch_config=switch_config, fault_plan=fault_plan
        )
    return observation, result


def run_brake_flows(
    seed: int,
    scenario: Any = None,
    variant: str = "det",
    fault_plan: Any = None,
    switch_config: Any = None,
    app: str = "brake",
) -> dict[str, Any]:
    """Sweep-worker body: one flow-traced seed, summarized as plain data.

    The ``report`` key is a ``flow-report/v1`` document (see
    :func:`repro.obs.flows.flow_report`); reports merge across seeds
    with :func:`repro.obs.flows.merge_flow_reports` and the metrics
    snapshots with :func:`repro.harness.sweep.merge_metric_snapshots`.
    """
    observation, result = observe_brake_flows(
        seed,
        scenario,
        variant,
        fault_plan=fault_plan,
        switch_config=switch_config,
        app=app,
    )
    return {
        "seed": seed,
        "variant": variant,
        "app": app,
        "errors": result.errors.as_dict(),
        "deadline_misses": result.deadline_misses,
        "stp_violations": result.stp_violations,
        "frames_answered": len(result.commands),
        "trace_fingerprints": dict(result.trace_fingerprints),
        "report": flow_report(observation.flows),
        "metrics": observation.metrics.snapshot(),
    }
