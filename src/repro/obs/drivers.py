"""Picklable, obs-enabled experiment drivers.

The sweep engine fans experiments out over worker *processes*, and the
active observation is process-global — so the obs context must be
entered inside the worker, not around the sweep.  These module-level
functions do exactly that: run one brake-assistant seed under
:func:`repro.obs.capture` and return a JSON-able summary containing the
metrics snapshot (cacheable by the sweep's result cache like any other
per-seed value).

``repro metrics`` maps :func:`run_brake_with_obs` over a seed range and
merges the snapshots with
:func:`repro.harness.sweep.merge_metric_snapshots`; ``repro trace``
uses :func:`observe_brake_run` inline for a single fully-traced run.
"""

from __future__ import annotations

from typing import Any

from repro.obs.context import Observation, capture
from repro.obs.flows import flow_report

__all__ = [
    "BRAKE_VARIANTS",
    "observe_brake_run",
    "run_brake_with_obs",
    "observe_brake_flows",
    "run_brake_flows",
]

#: Experiment variants exposed to the ``repro trace``/``metrics`` CLI.
BRAKE_VARIANTS = ("det", "nondet")


def _experiment(variant: str):
    # Imported lazily: drivers must stay importable in worker processes
    # without paying for the full application stack at module import.
    if variant == "det":
        from repro.apps.brake.det import run_det_brake_assistant

        return run_det_brake_assistant
    if variant == "nondet":
        from repro.apps.brake.nondet import run_nondet_brake_assistant

        return run_nondet_brake_assistant
    raise ValueError(f"unknown brake variant {variant!r}; use one of {BRAKE_VARIANTS}")


def observe_brake_run(
    seed: int, scenario: Any = None, variant: str = "det"
) -> tuple[Observation, Any]:
    """Run one brake-assistant seed with full observability.

    Returns ``(observation, run_result)`` — the observation holds the
    event bus (for the trace export) and the metrics registry.
    """
    experiment = _experiment(variant)
    with capture() as observation:
        result = experiment(seed, scenario)
    return observation, result


def run_brake_with_obs(
    seed: int, scenario: Any = None, variant: str = "det"
) -> dict[str, Any]:
    """Sweep-worker body: one observed seed, summarized as plain data."""
    observation, result = observe_brake_run(seed, scenario, variant)
    return {
        "seed": seed,
        "variant": variant,
        "errors": result.errors.as_dict(),
        "deadline_misses": result.deadline_misses,
        "stp_violations": result.stp_violations,
        "frames_answered": len(result.commands),
        "trace_fingerprints": dict(result.trace_fingerprints),
        "events": len(observation.bus),
        "tracks": observation.bus.tracks(),
        "metrics": observation.metrics.snapshot(),
    }


def observe_brake_flows(
    seed: int,
    scenario: Any = None,
    variant: str = "det",
    fault_plan: Any = None,
    switch_config: Any = None,
) -> tuple[Observation, Any]:
    """Run one brake-assistant seed with causal flow tracing active.

    Like :func:`observe_brake_run` but with ``capture(flows=True)``, so
    ``observation.flows`` holds the per-frame hop records and the trace
    export grows Perfetto flow arrows.
    """
    experiment = _experiment(variant)
    with capture(flows=True) as observation:
        result = experiment(
            seed, scenario, switch_config=switch_config, fault_plan=fault_plan
        )
    return observation, result


def run_brake_flows(
    seed: int,
    scenario: Any = None,
    variant: str = "det",
    fault_plan: Any = None,
    switch_config: Any = None,
) -> dict[str, Any]:
    """Sweep-worker body: one flow-traced seed, summarized as plain data.

    The ``report`` key is a ``flow-report/v1`` document (see
    :func:`repro.obs.flows.flow_report`); reports merge across seeds
    with :func:`repro.obs.flows.merge_flow_reports` and the metrics
    snapshots with :func:`repro.harness.sweep.merge_metric_snapshots`.
    """
    observation, result = observe_brake_flows(
        seed, scenario, variant, fault_plan=fault_plan, switch_config=switch_config
    )
    return {
        "seed": seed,
        "variant": variant,
        "errors": result.errors.as_dict(),
        "deadline_misses": result.deadline_misses,
        "stp_violations": result.stp_violations,
        "frames_answered": len(result.commands),
        "trace_fingerprints": dict(result.trace_fingerprints),
        "report": flow_report(observation.flows),
        "metrics": observation.metrics.snapshot(),
    }
