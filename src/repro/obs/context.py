"""The active observation: a process-wide, opt-in recording context.

Observability is **off by default**: the module-level :data:`ACTIVE`
handle is a :class:`NullObservation` whose ``enabled`` flag is
``False``, and every instrumentation site in the runtime guards itself
with one attribute read::

    o = context.ACTIVE
    if o.enabled:
        o.bus.instant(...)

so a disabled run pays one global load and one attribute check per
potential event — nothing is allocated, sampled or stored.  Crucially,
recording draws **no randomness** and takes **no scheduling decision**:
enabling observability cannot perturb RNG streams or interleavings,
which is what keeps logical trace fingerprints byte-identical between
observed and unobserved runs (asserted by ``tests/test_obs.py``).

:func:`capture` installs a fresh :class:`Observation` for the duration
of a ``with`` block (re-entrant: the previous handle is restored on
exit).  Sweep workers run one seed per process, so a process-global
handle is safe; the picklable drivers in :mod:`repro.obs.drivers` call
:func:`capture` *inside* the worker.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.bus import EventBus
from repro.obs.flows import FlowRegistry
from repro.obs.metrics import MetricsRegistry

__all__ = ["Observation", "NullObservation", "ACTIVE", "active", "capture"]


class Observation:
    """One run's worth of recorded events and metrics."""

    __slots__ = ("enabled", "bus", "metrics", "scratch", "flows", "_wall_anchor_ns")

    def __init__(self, flows: bool = False) -> None:
        self.enabled = True
        self.bus = EventBus()
        self.metrics = MetricsRegistry()
        #: Instrumentation-private state (e.g. mutex acquire timestamps),
        #: keyed by the instrumenting site.  Lives here, not on the
        #: simulated objects, so the disabled path allocates nothing.
        self.scratch: dict[Any, int] = {}
        #: Causal flow tracing (:mod:`repro.obs.flows`), opt-in on top of
        #: plain observability; ``None`` keeps every flow site one check.
        self.flows: FlowRegistry | None = (
            FlowRegistry(self.metrics) if flows else None
        )
        self._wall_anchor_ns = time.perf_counter_ns()

    def wall_ns(self) -> int:
        """Wall-clock nanoseconds since this observation started."""
        return time.perf_counter_ns() - self._wall_anchor_ns


class NullObservation:
    """The disabled stand-in: only its ``enabled`` flag is ever read."""

    __slots__ = ()

    enabled = False
    bus = None
    metrics = None
    scratch = None
    flows = None

    def wall_ns(self) -> int:  # pragma: no cover - never called when disabled
        return 0


#: The process-wide observation handle read by every instrumented site.
ACTIVE: Observation | NullObservation = NullObservation()


def active() -> Observation | NullObservation:
    """The currently installed observation handle."""
    return ACTIVE


@contextmanager
def capture(
    observation: Observation | None = None, *, flows: bool = False
) -> Iterator[Observation]:
    """Enable observability for the duration of a ``with`` block.

    Yields the (fresh or supplied) :class:`Observation`; the previously
    active handle — usually the disabled null object — is restored on
    exit, even on error.  ``flows=True`` additionally activates causal
    flow tracing (ignored when *observation* is supplied).
    """
    global ACTIVE
    observation = observation or Observation(flows=flows)
    previous = ACTIVE
    ACTIVE = observation
    try:
        yield observation
    finally:
        ACTIVE = previous
