"""``repro.obs`` — opt-in physical-time observability.

The logical :class:`~repro.reactors.telemetry.Trace` answers "*what*
happened, in which logical order" and deliberately excludes physical
time from its fingerprint.  This package answers the complementary
question — "*where does physical time go?*" — with three pieces:

* a structured **event bus** (:mod:`repro.obs.bus`): typed spans and
  instants on per-layer tracks (scheduler, reactors, DEAR, network),
  stamped with simulation time and wall time;
* a **metrics registry** (:mod:`repro.obs.metrics`): counters, gauges
  and fixed-bucket histograms for reaction lag, deadline slack,
  safe-to-process waits, mutex hold times, queue depths and drops —
  exactly mergeable across sweep seeds;
* **exporters** (:mod:`repro.obs.export`): Chrome/Perfetto
  ``trace_event`` JSON for timeline viewing and a ``metrics.json``
  snapshot for regression tooling.

Everything is off by default and guarded by a single flag check per
site (:mod:`repro.obs.context`), and recording never draws randomness
or influences scheduling — enabling full observability leaves every
logical trace fingerprint byte-identical.

Quick use::

    from repro import obs
    from repro.apps.brake.det import run_det_brake_assistant

    with obs.capture() as observation:
        run_det_brake_assistant(seed=0)
    obs.write_trace(observation, "trace.json")      # open in Perfetto
    obs.write_metrics(observation, "metrics.json")

or, from a shell: ``repro trace det --trace-out trace.json``.
"""

from repro.obs.bus import (
    Event,
    EventBus,
    TRACK_DEAR,
    TRACK_NETWORK,
    TRACK_REACTORS,
    TRACK_SCHEDULER,
)
from repro.obs import fleet
from repro.obs.context import Observation, NullObservation, active, capture
from repro.obs.drivers import (
    BRAKE_VARIANTS,
    observe_brake_flows,
    observe_brake_run,
    run_brake_flows,
    run_brake_with_obs,
)
from repro.obs.export import (
    metrics_document,
    trace_events,
    validate_trace_data,
    write_metrics,
    write_trace,
)
from repro.obs.flows import (
    FlowRecord,
    FlowRegistry,
    Hop,
    attribute_drop,
    flow_id_of,
    flow_report,
    merge_flow_reports,
    validate_flow_report,
)
from repro.obs.metrics import (
    Counter,
    DEFAULT_TIME_BUCKETS_NS,
    DEPTH_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    aggregate_snapshots,
    labeled,
    parse_labeled,
    percentile,
)

from repro.obs.fleet import (
    FleetTelemetry,
    fleet_capture,
    fleet_trace_events,
    prometheus_text,
    validate_prometheus_text,
    write_fleet_trace,
)

__all__ = [
    "Event",
    "EventBus",
    "fleet",
    "FleetTelemetry",
    "fleet_capture",
    "fleet_trace_events",
    "prometheus_text",
    "validate_prometheus_text",
    "write_fleet_trace",
    "TRACK_SCHEDULER",
    "TRACK_REACTORS",
    "TRACK_DEAR",
    "TRACK_NETWORK",
    "Observation",
    "NullObservation",
    "active",
    "capture",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS_NS",
    "DEPTH_BUCKETS",
    "aggregate_snapshots",
    "labeled",
    "parse_labeled",
    "percentile",
    "trace_events",
    "write_trace",
    "metrics_document",
    "write_metrics",
    "validate_trace_data",
    "FlowRegistry",
    "FlowRecord",
    "Hop",
    "attribute_drop",
    "flow_id_of",
    "flow_report",
    "merge_flow_reports",
    "validate_flow_report",
    "BRAKE_VARIANTS",
    "observe_brake_run",
    "run_brake_with_obs",
    "observe_brake_flows",
    "run_brake_flows",
]
