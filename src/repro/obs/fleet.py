"""Fleet telemetry: the experiment *infrastructure* observing itself.

:mod:`repro.obs` instruments the simulated world; this module points
the same machinery at the machinery — the sweep-service coordinator,
workers, result store/cache, snapshot store and ``SweepRunner`` — so a
running campaign can be operated like production infrastructure:

* a **process-global fleet registry** (:class:`FleetTelemetry`) reusing
  :class:`~repro.obs.metrics.MetricsRegistry`, guarded at every site by
  the same null-object idiom as :mod:`repro.obs.context`::

      f = fleet.ACTIVE
      if f.enabled:
          f.inc("fleet.sweep.cache_hits")

  Disabled (the library default) each site costs one global load and
  one attribute check; service entry points (``repro serve``, ``repro
  worker``, :class:`~repro.service.http.LocalService`) enable it unless
  ``REPRO_FLEET_TELEMETRY=0``.
* **Prometheus text exposition** (:func:`prometheus_text`), served by
  the sweep service at ``GET /metrics`` and checkable with
  :func:`validate_prometheus_text`.
* **fleet-metrics/v1 snapshots** (:func:`snapshot_document`): workers
  ship theirs inside completion reports, and every campaign report
  embeds the coordinator's plus a cross-worker merge via
  :func:`~repro.obs.metrics.aggregate_snapshots`.
* a **fleet trace** (:func:`fleet_trace_events`): the campaign report's
  coordinator-stamped job timelines rendered as a Chrome/Perfetto
  ``trace_event`` timeline — one queue track plus one track per worker
  — valid under :func:`~repro.obs.export.validate_trace_data`.

The hard invariant mirrors PR 3's: recording draws no randomness and
takes no scheduling decision, so enabling fleet telemetry leaves every
``Trace.fingerprint()`` and every per-seed result byte-identical
(asserted by ``tests/test_fleet_telemetry.py``).
"""

from __future__ import annotations

import json
import os
import re
import socket
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Sequence

from repro.obs.export import TRACE_PID
from repro.obs.metrics import (
    MetricsRegistry,
    aggregate_snapshots,
    parse_labeled,
)

__all__ = [
    "FLEET_FORMAT",
    "FLEET_TIME_BUCKETS_NS",
    "FleetTelemetry",
    "NullFleet",
    "ACTIVE",
    "active",
    "enable",
    "disable",
    "enabled_by_env",
    "enable_from_env",
    "fleet_capture",
    "snapshot_document",
    "merge_fleet_documents",
    "prometheus_text",
    "validate_prometheus_text",
    "fleet_trace_events",
    "write_fleet_trace",
]

#: Format tag of a fleet metrics snapshot (embedded in campaign reports).
FLEET_FORMAT = "fleet-metrics/v1"

#: Environment knob: set to ``0``/``off``/``false`` to keep fleet
#: telemetry disabled even in service processes.
FLEET_ENV = "REPRO_FLEET_TELEMETRY"

#: Histogram bounds for infrastructure latencies: 1 µs .. 600 s.  Wider
#: than the simulation's default buckets because leases and jobs live on
#: human time scales; fixed bounds keep worker snapshots exactly
#: mergeable, same as the per-seed metrics.
FLEET_TIME_BUCKETS_NS: tuple[int, ...] = (
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    50_000_000,
    100_000_000,
    500_000_000,
    1_000_000_000,
    5_000_000_000,
    10_000_000_000,
    30_000_000_000,
    60_000_000_000,
    120_000_000_000,
    300_000_000_000,
    600_000_000_000,
)


class FleetTelemetry:
    """The enabled fleet handle: a lock-guarded metrics registry.

    Unlike the per-run :class:`~repro.obs.context.Observation` (one
    single-threaded simulation per process), fleet telemetry is updated
    from coordinator handler threads, worker threads and heartbeat
    threads at once, so every mutation goes through one process lock.
    The operations are microsecond-scale against millisecond-scale
    infrastructure events — contention is not a concern.
    """

    __slots__ = ("enabled", "metrics", "_lock")

    def __init__(self) -> None:
        self.enabled = True
        self.metrics = MetricsRegistry()
        self._lock = threading.Lock()

    def inc(self, name: str, amount: int = 1) -> None:
        """Increment the counter *name*."""
        with self._lock:
            self.metrics.counter(name).inc(amount)

    def set_gauge(self, name: str, value: int | float) -> None:
        """Record the current level of the gauge *name*."""
        with self._lock:
            self.metrics.gauge(name).set(value)

    def observe(
        self,
        name: str,
        value: int | float,
        bounds: Sequence[int] | None = None,
    ) -> None:
        """Record one histogram sample (fleet time bounds by default)."""
        with self._lock:
            self.metrics.histogram(
                name, bounds or FLEET_TIME_BUCKETS_NS
            ).observe(value)

    def counter_value(self, name: str) -> int:
        """The current value of counter *name* (0 if never incremented)."""
        with self._lock:
            return self.metrics.counter(name).value

    def snapshot(self) -> dict[str, Any]:
        """A consistent :meth:`MetricsRegistry.snapshot` of the registry."""
        with self._lock:
            return self.metrics.snapshot()


class NullFleet:
    """The disabled stand-in: only its ``enabled`` flag is ever read."""

    __slots__ = ()

    enabled = False
    metrics = None

    def snapshot(self) -> dict[str, Any]:
        return MetricsRegistry().snapshot()


#: The process-wide fleet handle read by every instrumented site.
ACTIVE: FleetTelemetry | NullFleet = NullFleet()


def active() -> FleetTelemetry | NullFleet:
    """The currently installed fleet telemetry handle."""
    return ACTIVE


def enable(fresh: bool = False) -> FleetTelemetry:
    """Install (or return) the process-global fleet telemetry.

    Idempotent: a second call keeps the accumulated metrics unless
    *fresh* asks for a clean registry.
    """
    global ACTIVE
    if fresh or not ACTIVE.enabled:
        ACTIVE = FleetTelemetry()
    assert isinstance(ACTIVE, FleetTelemetry)
    return ACTIVE


def disable() -> None:
    """Restore the disabled null handle (drops accumulated metrics)."""
    global ACTIVE
    ACTIVE = NullFleet()


def enabled_by_env(environ: dict[str, str] | None = None) -> bool:
    """Whether the environment permits fleet telemetry (default yes)."""
    value = (environ or os.environ).get(FLEET_ENV, "1")
    return value.strip().lower() not in ("0", "no", "off", "false")


def enable_from_env() -> FleetTelemetry | NullFleet:
    """Enable fleet telemetry unless ``REPRO_FLEET_TELEMETRY`` says no.

    Service entry points call this: operating a fleet implies observing
    it, while plain library use stays on the disabled path.
    """
    if enabled_by_env():
        return enable()
    return ACTIVE


@contextmanager
def fleet_capture() -> Iterator[FleetTelemetry]:
    """Enable a fresh fleet registry for a ``with`` block (tests)."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = FleetTelemetry()
    try:
        yield ACTIVE
    finally:
        ACTIVE = previous


# ---------------------------------------------------------------------------
# Snapshots: the fleet-metrics/v1 document and its cross-host merge.
# ---------------------------------------------------------------------------


def snapshot_document(
    telemetry: FleetTelemetry | NullFleet | None = None,
) -> dict[str, Any]:
    """One process's fleet metrics as a ``fleet-metrics/v1`` document."""
    handle = telemetry if telemetry is not None else ACTIVE
    return {
        "format": FLEET_FORMAT,
        "host": socket.gethostname(),
        "pid": os.getpid(),
        "enabled": bool(handle.enabled),
        "metrics": handle.snapshot(),
    }


def merge_fleet_documents(
    documents: Sequence[dict[str, Any] | None],
) -> dict[str, Any]:
    """Merge per-process fleet documents across the fleet.

    Counters, gauge peaks and histograms merge with the same
    :func:`~repro.obs.metrics.aggregate_snapshots` semantics used for
    per-seed simulation metrics — one "seed" here is one process.
    """
    present = [doc for doc in documents if doc]
    return {
        "format": FLEET_FORMAT,
        "sources": len(present),
        "merged": aggregate_snapshots(
            [doc.get("metrics", {}) for doc in present]
        ),
    }


# ---------------------------------------------------------------------------
# Prometheus text exposition (version 0.0.4, the /metrics content type).
# ---------------------------------------------------------------------------

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

#: Sample line of the exposition format: name, optional labels, value.
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>\S+)$"
)


def _prom_name(name: str) -> str:
    """A registry family name as a legal Prometheus metric name."""
    cleaned = _NAME_SANITIZE.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    return cleaned


def _prom_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    """Render a label dict as ``{k="v",...}`` (empty string when none)."""
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{_prom_name(key)}="{_escape_label(str(merged[key]))}"'
        for key in sorted(merged)
    )
    return f"{{{inner}}}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_value(value: int | float | None) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def prometheus_text(snapshot: dict[str, Any] | None = None) -> str:
    """Render a registry snapshot in the Prometheus text format.

    *snapshot* defaults to the active fleet handle's.  Counters map to
    ``counter`` families, gauges to ``gauge`` families (last value,
    plus a ``_peak`` companion), histograms to cumulative
    ``_bucket{le=...}`` series with ``_sum``/``_count``, the standard
    client-library shape.  Label-encoded registry names
    (:func:`~repro.obs.metrics.labeled`) become real Prometheus labels.
    """
    if snapshot is None:
        snapshot = ACTIVE.snapshot()
    lines: list[str] = []

    def type_line(family: str, kind: str, seen: set[str]) -> None:
        if family not in seen:
            lines.append(f"# TYPE {family} {kind}")
            seen.add(family)

    typed: set[str] = set()
    for name in sorted(snapshot.get("counters", {})):
        family, labels = parse_labeled(name)
        family = _prom_name(family)
        type_line(family, "counter", typed)
        value = snapshot["counters"][name]
        lines.append(f"{family}{_prom_labels(labels)} {_prom_value(value)}")

    for name in sorted(snapshot.get("gauges", {})):
        family, labels = parse_labeled(name)
        family = _prom_name(family)
        entry = snapshot["gauges"][name]
        type_line(family, "gauge", typed)
        lines.append(
            f"{family}{_prom_labels(labels)} {_prom_value(entry['value'])}"
        )
        type_line(f"{family}_peak", "gauge", typed)
        lines.append(
            f"{family}_peak{_prom_labels(labels)} {_prom_value(entry['peak'])}"
        )

    for name in sorted(snapshot.get("histograms", {})):
        family, labels = parse_labeled(name)
        family = _prom_name(family)
        entry = snapshot["histograms"][name]
        type_line(family, "histogram", typed)
        cumulative = 0
        for bound, bucket_count in zip(entry["bounds"], entry["counts"]):
            cumulative += bucket_count
            lines.append(
                f"{family}_bucket"
                f"{_prom_labels(labels, {'le': _prom_value(bound)})} "
                f"{cumulative}"
            )
        lines.append(
            f"{family}_bucket{_prom_labels(labels, {'le': '+Inf'})} "
            f"{entry['count']}"
        )
        lines.append(
            f"{family}_sum{_prom_labels(labels)} {_prom_value(entry['sum'])}"
        )
        lines.append(
            f"{family}_count{_prom_labels(labels)} {entry['count']}"
        )
    return "\n".join(lines) + "\n"


def validate_prometheus_text(text: str) -> list[str]:
    """Check *text* against the exposition format; returns problems.

    An empty list means well-formed: every sample line parses as
    ``name{labels} value`` with a float-parseable value, ``# TYPE``
    declarations are legal, no exact series repeats, and histogram
    ``_bucket`` series are cumulative (non-decreasing in ``le`` order).
    This is the shape check CI's telemetry-smoke job and the unit tests
    share.
    """
    problems: list[str] = []
    seen_series: set[str] = set()
    bucket_runs: dict[str, float] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            fields = line.split()
            if len(fields) >= 2 and fields[1] == "TYPE":
                if len(fields) != 4 or fields[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"
                ):
                    problems.append(f"line {number}: malformed TYPE comment")
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            problems.append(f"line {number}: unparseable sample {line!r}")
            continue
        try:
            value = float(match.group("value"))
        except ValueError:
            problems.append(
                f"line {number}: non-numeric value {match.group('value')!r}"
            )
            continue
        series = f"{match.group('name')}{match.group('labels') or ''}"
        if series in seen_series:
            problems.append(f"line {number}: duplicate series {series!r}")
        seen_series.add(series)
        name = match.group("name")
        if name.endswith("_bucket"):
            # Cumulative within one histogram: strip the le label so
            # successive buckets of the same series compare.
            run_key = name + re.sub(
                r'le="[^"]*",?', "", match.group("labels") or ""
            )
            previous = bucket_runs.get(run_key)
            if previous is not None and value < previous:
                problems.append(
                    f"line {number}: bucket series {name!r} not cumulative "
                    f"({value} after {previous})"
                )
            bucket_runs[run_key] = value
    return problems


# ---------------------------------------------------------------------------
# The fleet trace: campaign job timelines as a Perfetto timeline.
# ---------------------------------------------------------------------------

#: tid of the coordinator queue track; workers get 2, 3, ... in sorted
#: worker-id order.
_QUEUE_TID = 1

#: Timeline events that end a lease (close the worker-track span).
_LEASE_ENDS = ("done", "requeued", "failed")


def _trace_tracks(jobs: Sequence[dict]) -> dict[str, int]:
    """tid per worker id, from every worker a timeline ever mentions."""
    workers: set[str] = set()
    for job in jobs:
        for event in job.get("timeline", []):
            if event.get("worker"):
                workers.add(event["worker"])
    return {
        worker: _QUEUE_TID + 1 + index
        for index, worker in enumerate(sorted(workers))
    }


def _span(
    name: str,
    tid: int,
    start_us: float,
    dur_us: float,
    args: dict[str, Any],
) -> dict[str, Any]:
    return {
        "name": name,
        "cat": "fleet",
        "ph": "X",
        "pid": TRACE_PID,
        "tid": tid,
        "ts": start_us,
        "dur": max(0.0, dur_us),
        "args": args,
    }


def _instant(name: str, tid: int, ts_us: float, args: dict[str, Any]) -> dict[str, Any]:
    return {
        "name": name,
        "cat": "fleet",
        "ph": "i",
        "s": "t",
        "pid": TRACE_PID,
        "tid": tid,
        "ts": ts_us,
        "args": args,
    }


def fleet_trace_events(report: dict[str, Any]) -> list[dict[str, Any]]:
    """Render a campaign report's job timelines as ``trace_event`` dicts.

    One pseudo-process, one *queue* track (time each job spent pending,
    requeue instants) and one track per worker (each lease attempt as a
    complete span, the final attempt annotated with the worker-side
    execution stats shipped back in the completion report).  Timestamps
    are microseconds relative to the campaign's submission; the result
    passes :func:`~repro.obs.export.validate_trace_data`.
    """
    jobs = report.get("jobs", [])
    worker_tids = _trace_tracks(jobs)
    stamps = [
        event["t"]
        for job in jobs
        for event in job.get("timeline", [])
        if isinstance(event.get("t"), (int, float))
    ]
    anchor = report.get("submitted_at")
    if not isinstance(anchor, (int, float)):
        anchor = min(stamps) if stamps else 0.0

    def rel_us(t: float) -> float:
        return max(0.0, (t - anchor)) * 1e6

    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": f"campaign {report.get('campaign', '?')}"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": _QUEUE_TID,
            "args": {"name": "coordinator queue"},
        },
    ]
    for worker, tid in sorted(worker_tids.items(), key=lambda item: item[1]):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "args": {"name": f"worker {worker}"},
            }
        )

    keyed: list[tuple[int, float, int, dict[str, Any]]] = []

    def emit(record: dict[str, Any]) -> None:
        keyed.append((record["tid"], record["ts"], len(keyed), record))

    for job in jobs:
        name = job.get("job", "?")
        seeds = job.get("seeds", [])
        timeline = [
            event
            for event in job.get("timeline", [])
            if isinstance(event.get("t"), (int, float))
        ]
        pending_since: float | None = None
        for index, event in enumerate(timeline):
            kind = event.get("event")
            t = event["t"]
            if kind in ("queued", "requeued"):
                pending_since = t
                if kind == "requeued":
                    emit(
                        _instant(
                            f"requeue {name}",
                            _QUEUE_TID,
                            rel_us(t),
                            {
                                "job": name,
                                "attempt": event.get("attempt"),
                                "reason": event.get("reason"),
                            },
                        )
                    )
            elif kind == "leased":
                if pending_since is not None:
                    emit(
                        _span(
                            f"{name} pending",
                            _QUEUE_TID,
                            rel_us(pending_since),
                            rel_us(t) - rel_us(pending_since),
                            {"job": name, "attempt": event.get("attempt")},
                        )
                    )
                    pending_since = None
                tid = worker_tids.get(event.get("worker"))
                if tid is None:
                    continue
                end = next(
                    (
                        later
                        for later in timeline[index + 1:]
                        if later.get("event") in _LEASE_ENDS
                    ),
                    None,
                )
                args: dict[str, Any] = {
                    "job": name,
                    "seeds": list(seeds),
                    "attempt": event.get("attempt"),
                }
                if end is None:
                    emit(
                        _instant(
                            f"{name} executing", tid, rel_us(t), args
                        )
                    )
                    continue
                args["outcome"] = end.get("event")
                if end.get("reason"):
                    args["reason"] = end.get("reason")
                if end.get("event") == "done" and job.get("exec"):
                    args["exec"] = job["exec"]
                emit(
                    _span(
                        f"{name} attempt {event.get('attempt')}",
                        tid,
                        rel_us(t),
                        rel_us(end["t"]) - rel_us(t),
                        args,
                    )
                )
        if pending_since is not None:
            emit(
                _instant(
                    f"{name} pending",
                    _QUEUE_TID,
                    rel_us(pending_since),
                    {"job": name, "state": job.get("state")},
                )
            )

    keyed.sort(key=lambda item: (item[0], item[1], item[2]))
    events.extend(record for _, _, _, record in keyed)
    return events


def write_fleet_trace(report: dict[str, Any], path: str | Path) -> Path:
    """Write a campaign report's fleet trace as ``trace_event`` JSON."""
    path = Path(path)
    document = {
        "traceEvents": fleet_trace_events(report),
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs.fleet",
            "campaign": report.get("campaign"),
        },
    }
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return path
