"""The structured event bus: typed spans and instants on named tracks.

Events carry *simulation-time* timestamps (integer nanoseconds — the
same clock the experiment runs on) plus a wall-clock stamp taken at
record time, so a timeline viewer can show both where simulated time
went and how long the host actually took.  Tracks group events the way
the runtime is layered; the four standard tracks below are what the
Perfetto export maps to one pseudo-thread each.

The bus itself is deliberately dumb: an append-only list of slotted
records.  All policy (sorting, timeline mapping, JSON shape) lives in
:mod:`repro.obs.export`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = [
    "Event",
    "EventBus",
    "TRACK_SCHEDULER",
    "TRACK_REACTORS",
    "TRACK_DEAR",
    "TRACK_NETWORK",
    "TRACK_FAULTS",
]

#: OS-level scheduling: dispatches, preemptions, mutex grants.
TRACK_SCHEDULER = "scheduler"
#: Reactor runtime: reaction execution spans, deadline misses.
TRACK_REACTORS = "reactors"
#: DEAR middleware: safe-to-process waits, STP violations, bypass.
TRACK_DEAR = "dear"
#: SOME/IP + switch: frames in flight, drops, queue overflows.
TRACK_NETWORK = "network"
#: Injected faults (``repro.faults``): drops, partitions, crashes, clock steps.
TRACK_FAULTS = "faults"


@dataclass(frozen=True, slots=True)
class Event:
    """One recorded occurrence.

    ``phase`` follows the Chrome ``trace_event`` vocabulary the export
    targets: ``"X"`` is a complete span (``ts`` .. ``ts + dur``),
    ``"i"`` an instant.  ``ts``/``dur`` are simulation nanoseconds;
    ``wall_ns`` is host time relative to the observation start.
    """

    track: str
    name: str
    phase: str
    ts: int
    dur: int = 0
    wall_ns: int = 0
    args: dict[str, Any] | None = None


class EventBus:
    """Append-only store of :class:`Event` records."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[Event] = []

    def span(
        self,
        track: str,
        name: str,
        start_ns: int,
        end_ns: int,
        wall_ns: int = 0,
        **args: Any,
    ) -> None:
        """Record a complete span ``[start_ns, end_ns]`` on *track*.

        A span that would end before it starts (possible when a caller
        derives the start by subtracting a cost) is clamped to zero
        duration rather than rejected — observability must never raise
        into the observed program.
        """
        if end_ns < start_ns:
            start_ns = end_ns
        self.events.append(
            Event(
                track,
                name,
                "X",
                start_ns,
                end_ns - start_ns,
                wall_ns,
                args or None,
            )
        )

    def instant(
        self, track: str, name: str, ts_ns: int, wall_ns: int = 0, **args: Any
    ) -> None:
        """Record a point event at *ts_ns* on *track*."""
        self.events.append(Event(track, name, "i", ts_ns, 0, wall_ns, args or None))

    def tracks(self) -> list[str]:
        """Sorted names of all tracks that saw at least one event."""
        return sorted({event.track for event in self.events})

    def by_track(self, track: str) -> list[Event]:
        """All events of one track, in record order."""
        return [event for event in self.events if event.track == track]

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"EventBus(events={len(self.events)}, tracks={self.tracks()})"
