"""Seeded, fully deterministic fault plans.

A :class:`FaultPlan` describes *what can go wrong* in one experiment
run: probabilistic link faults (frame drop / duplicate / reorder /
corrupt / latency spike) scoped to flows and time windows, link
partitions, node crash/restart windows, and clock step/drift faults.

Determinism is the whole point, and it is achieved without consuming
any randomness from the experiment's own RNG tree:

* every probabilistic decision is a pure function of
  ``(plan.seed, fault kind, flow, per-flow frame index)`` — a dedicated
  SHA-256 counter-mode stream.  Installing a plan therefore perturbs
  **no** existing draw order (the ``net``/``scheduler``/``exec.*``
  streams see exactly the sequence they would without faults), and the
  same plan hits the *same frames* regardless of the world seed or of
  how unrelated traffic interleaves;
* partitions, node outages and clock faults are pure time windows — no
  randomness at all.

Plans serialize as ``fault-plan/v1`` JSON and round-trip exactly, so a
fault schedule is a portable artifact just like an intervention
schedule from :mod:`repro.explore`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable

__all__ = [
    "LinkFault",
    "Partition",
    "NodeOutage",
    "ClockFault",
    "FaultPlan",
]


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


@dataclass(frozen=True, slots=True)
class LinkFault:
    """Probabilistic per-frame faults on matching traffic.

    ``src_host`` / ``dst_host`` / ``dst_port`` select the flows the
    fault applies to (``None`` matches anything); ``start_ns`` /
    ``end_ns`` bound the active window (``end_ns=None`` means forever).
    Each probability is evaluated independently per matching frame from
    the plan's dedicated stream.  Delays are fixed magnitudes so a fired
    fault is fully described by (kind, flow, frame index).
    """

    src_host: str | None = None
    dst_host: str | None = None
    dst_port: int | None = None
    start_ns: int = 0
    end_ns: int | None = None
    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    #: Extra delivery delay of the duplicate copy.
    duplicate_delay_ns: int = 100_000
    reorder_probability: float = 0.0
    #: Extra delay of a reordered frame; it is exempted from per-flow
    #: FIFO, so a later frame can overtake it.
    reorder_delay_ns: int = 1_000_000
    corrupt_probability: float = 0.0
    spike_probability: float = 0.0
    #: Extra latency of a spiked frame (still subject to FIFO ordering).
    spike_ns: int = 0

    def __post_init__(self) -> None:
        for name in (
            "drop_probability",
            "duplicate_probability",
            "reorder_probability",
            "corrupt_probability",
            "spike_probability",
        ):
            _check_probability(name, getattr(self, name))
        if self.end_ns is not None and self.end_ns < self.start_ns:
            raise ValueError("end_ns must be >= start_ns")

    def matches(self, src_host: str, dst_host: str, dst_port: int, now: int) -> bool:
        """Whether this fault applies to a frame sent *now* on the flow."""
        if now < self.start_ns:
            return False
        if self.end_ns is not None and now >= self.end_ns:
            return False
        if self.src_host is not None and self.src_host != src_host:
            return False
        if self.dst_host is not None and self.dst_host != dst_host:
            return False
        if self.dst_port is not None and self.dst_port != dst_port:
            return False
        return True


@dataclass(frozen=True, slots=True)
class Partition:
    """A link partition over ``[start_ns, end_ns)``.

    ``hosts`` names one side of the cut: traffic between a named host
    and an unnamed one is affected (an empty tuple cuts every
    inter-host link).  On a multi-switch fabric, ``links`` instead cuts
    specific cables — frames whose deterministic route traverses any
    named link are affected, wherever their endpoints sit.  ``mode``
    selects the physical interpretation:

    * ``"defer"`` (default): the fabric holds affected frames and
      releases them when the partition heals — a link flap with
      store-and-forward retransmission.  A partition longer than the
      assumed latency bound ``L`` then *must* surface as an STP
      violation on the DEAR side;
    * ``"drop"``: affected frames are lost outright.
    """

    start_ns: int
    end_ns: int
    hosts: tuple[str, ...] = ()
    mode: str = "defer"
    #: Severed cables as (endpoint, endpoint) pairs; order-insensitive.
    links: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.end_ns < self.start_ns:
            raise ValueError("end_ns must be >= start_ns")
        if self.mode not in ("defer", "drop"):
            raise ValueError(f"mode must be 'defer' or 'drop', got {self.mode!r}")
        object.__setattr__(self, "hosts", tuple(self.hosts))
        object.__setattr__(
            self,
            "links",
            tuple(tuple(sorted((a, b))) for a, b in self.links),
        )

    def severs(
        self,
        src_host: str,
        dst_host: str,
        now: int,
        route_links: tuple[tuple[str, str], ...] | None = None,
    ) -> bool:
        """Whether a frame sent *now* crosses the cut.

        *route_links* is the frame's resolved route (as normalized link
        keys) on a fabric, ``None`` on the legacy single switch.
        """
        if not self.start_ns <= now < self.end_ns:
            return False
        if src_host == dst_host:
            return False  # loopback never crosses a link
        if self.links:
            if route_links is None:
                return False  # link cuts need a routed fabric
            return any(key in self.links for key in route_links)
        if not self.hosts:
            return True
        return (src_host in self.hosts) != (dst_host in self.hosts)


@dataclass(frozen=True, slots=True)
class NodeOutage:
    """A node crash/restart window: the host halts over ``[start, end)``.

    The platform's scheduler is frozen (nothing executes, threads keep
    their state — a fail-stop crash with warm restart) and its NIC is
    dead: frames to or from the host during the window are lost.  On
    restart the node resumes where it stopped and SOME/IP SD's TTL
    expiry + cyclic re-offer re-establish discovery state.
    """

    host: str
    start_ns: int
    end_ns: int

    def __post_init__(self) -> None:
        if self.end_ns < self.start_ns:
            raise ValueError("end_ns must be >= start_ns")

    def down(self, host: str, now: int) -> bool:
        """Whether *host* is dead at *now*."""
        return host == self.host and self.start_ns <= now < self.end_ns


@dataclass(frozen=True, slots=True)
class ClockFault:
    """A clock step and/or drift change applied to one host at ``at_ns``.

    Models a misbehaving time sync: the host's clock jumps by
    ``step_ns`` and its rate changes by ``drift_ppb`` from that moment
    on.  Steps larger than the assumed sync error ``E`` break the
    safe-to-process analysis — observably, as STP violations.
    """

    host: str
    at_ns: int
    step_ns: int = 0
    drift_ppb: int = 0


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """One run's complete, seeded fault configuration."""

    seed: int = 0
    link_faults: tuple[LinkFault, ...] = ()
    partitions: tuple[Partition, ...] = ()
    outages: tuple[NodeOutage, ...] = ()
    clock_faults: tuple[ClockFault, ...] = ()
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "link_faults", tuple(self.link_faults))
        object.__setattr__(self, "partitions", tuple(self.partitions))
        object.__setattr__(self, "outages", tuple(self.outages))
        object.__setattr__(self, "clock_faults", tuple(self.clock_faults))

    @property
    def is_empty(self) -> bool:
        """Whether the plan injects nothing at all."""
        return not (
            self.link_faults or self.partitions or self.outages or self.clock_faults
        )

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same fault configuration under a different fault seed."""
        return replace(self, seed=seed)

    def describe(self) -> str:
        parts = []
        if self.link_faults:
            parts.append(f"{len(self.link_faults)} link fault(s)")
        if self.partitions:
            parts.append(f"{len(self.partitions)} partition(s)")
        if self.outages:
            parts.append(f"{len(self.outages)} outage(s)")
        if self.clock_faults:
            parts.append(f"{len(self.clock_faults)} clock fault(s)")
        body = ", ".join(parts) or "no faults"
        label = f" [{self.label}]" if self.label else ""
        return f"fault plan seed {self.seed}{label}: {body}"

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format": "fault-plan/v1",
            "seed": self.seed,
            "label": self.label,
            "link_faults": [
                {
                    "src_host": f.src_host,
                    "dst_host": f.dst_host,
                    "dst_port": f.dst_port,
                    "start_ns": f.start_ns,
                    "end_ns": f.end_ns,
                    "drop_probability": f.drop_probability,
                    "duplicate_probability": f.duplicate_probability,
                    "duplicate_delay_ns": f.duplicate_delay_ns,
                    "reorder_probability": f.reorder_probability,
                    "reorder_delay_ns": f.reorder_delay_ns,
                    "corrupt_probability": f.corrupt_probability,
                    "spike_probability": f.spike_probability,
                    "spike_ns": f.spike_ns,
                }
                for f in self.link_faults
            ],
            "partitions": [
                {
                    "start_ns": p.start_ns,
                    "end_ns": p.end_ns,
                    "hosts": list(p.hosts),
                    "mode": p.mode,
                    # "links" only when used, keeping legacy plans
                    # byte-identical on disk.
                    **({"links": [list(k) for k in p.links]} if p.links else {}),
                }
                for p in self.partitions
            ],
            "outages": [
                {"host": o.host, "start_ns": o.start_ns, "end_ns": o.end_ns}
                for o in self.outages
            ],
            "clock_faults": [
                {
                    "host": c.host,
                    "at_ns": c.at_ns,
                    "step_ns": c.step_ns,
                    "drift_ppb": c.drift_ppb,
                }
                for c in self.clock_faults
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if data.get("format") != "fault-plan/v1":
            raise ValueError(f"not a fault plan: {data.get('format')!r}")
        return cls(
            seed=data.get("seed", 0),
            label=data.get("label", ""),
            link_faults=tuple(
                LinkFault(**entry) for entry in data.get("link_faults", [])
            ),
            partitions=tuple(
                Partition(
                    start_ns=entry["start_ns"],
                    end_ns=entry["end_ns"],
                    hosts=tuple(entry.get("hosts", [])),
                    mode=entry.get("mode", "defer"),
                    links=tuple(
                        (a, b) for a, b in entry.get("links", [])
                    ),
                )
                for entry in data.get("partitions", [])
            ),
            outages=tuple(
                NodeOutage(**entry) for entry in data.get("outages", [])
            ),
            clock_faults=tuple(
                ClockFault(**entry) for entry in data.get("clock_faults", [])
            ),
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        return cls.from_dict(json.loads(Path(path).read_text()))

    # -- convenience constructors ------------------------------------------

    @classmethod
    def camera_faults(
        cls,
        seed: int = 0,
        drop: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        corrupt: float = 0.0,
        spike: float = 0.0,
        spike_ns: int = 0,
        dst_port: int = 15000,
        partitions: Iterable[Partition] = (),
        label: str = "",
    ) -> "FaultPlan":
        """A plan targeting the camera's raw-frame flow (the usual SUT)."""
        fault = LinkFault(
            dst_port=dst_port,
            drop_probability=drop,
            duplicate_probability=duplicate,
            reorder_probability=reorder,
            corrupt_probability=corrupt,
            spike_probability=spike,
            spike_ns=spike_ns,
        )
        link_faults = () if all(
            p == 0.0 for p in (drop, duplicate, reorder, corrupt, spike)
        ) else (fault,)
        return cls(
            seed=seed,
            link_faults=link_faults,
            partitions=tuple(partitions),
            label=label,
        )

