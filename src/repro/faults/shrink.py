"""Delta-debugging a failing fault trace to a minimal fault set.

A fault sweep that breaks an invariant ("DEAR fingerprints diverged",
"a frame was dropped end-to-end") usually fires far more faults than
the failure needs.  Because replaying a fault trace answers every
decision from a ``(stream, kind, flow, index)`` table — and the PRF
decisions of non-replayed sites never shift — **any subset** of the
fired records is itself a valid fault schedule.  That is exactly the
subset-closure classic ddmin requires, so the same
:func:`repro.explore.shrink.ddmin` that minimizes preemption schedules
minimizes fault traces: the result reads "the divergence needs exactly
these 2 dropped frames".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from repro.explore.decisions import DecisionRecord, DecisionTrace
from repro.explore.shrink import ddmin
from repro.faults.plan import FaultPlan

__all__ = ["FaultShrinkResult", "shrink_fault_trace"]


@dataclass
class FaultShrinkResult:
    """Outcome of minimizing one failing fault trace."""

    original: DecisionTrace
    minimal: DecisionTrace
    #: Experiment executions spent shrinking.
    trials: int
    #: (faults tried, reproduced?) per trial, in order.
    history: list[tuple[int, bool]] = field(default_factory=list)

    @property
    def removed(self) -> int:
        return len(self.original.records) - len(self.minimal.records)

    def describe(self) -> str:
        kept = ", ".join(
            f"{r.kind} {r.name}#{r.bound}" for r in self.minimal.records
        ) or "nothing"
        return (
            f"shrunk {len(self.original.records)} fired fault(s) to "
            f"{len(self.minimal.records)} in {self.trials} trial(s): {kept}"
        )


def shrink_fault_trace(
    plan: FaultPlan,
    trace: DecisionTrace,
    failure: Callable[..., bool],
    *,
    snapshots=None,
    context: str = "",
) -> FaultShrinkResult:
    """ddmin *trace*'s fired faults under *failure*.

    *failure* runs the experiment with ``install_fault_plan(world, plan,
    replay=<candidate trace>)`` and reports whether the observed problem
    still reproduces.  Raises :class:`ValueError` if the full trace does
    not (nothing to shrink from).

    With *snapshots* (an active :class:`repro.snapshot.SnapshotEngine`),
    probes are keyed by their membership bits over *trace*'s records —
    a record's membership cannot affect the run before its own firing
    site, so probes agreeing on records < k share bit-identical state up
    to record k and fork from copy-on-write holders instead of
    replaying from t=0.  In that mode *failure* is called as
    ``failure(candidate, checkpointer)`` and must thread the
    checkpointer plus the full *trace* (as the decision universe) into
    ``install_fault_plan``; its verdict must depend only on the run's
    outcome.  *context* overrides the engine cache key (everything
    outside the membership bits).
    """
    history: list[tuple[int, bool]] = []
    engine = snapshots
    if engine is not None and not engine.active:
        engine = None
    universe = list(trace.records)
    if engine is not None and not context:
        from repro.harness.sweep import code_fingerprint
        from repro.snapshot import context_key

        context = context_key(
            "fault-shrink",
            repr(plan),
            trace.base_seed,
            trace.experiment,
            code_fingerprint(),
        )

    def as_trace(records: Sequence[DecisionRecord]) -> DecisionTrace:
        return replace(trace, records=list(records))

    def reproduces(records: Sequence[DecisionRecord]) -> bool:
        if engine is not None:
            from repro.snapshot import MembershipDecisions

            member = {id(record) for record in records}
            bits = tuple(1 if id(record) in member else 0 for record in universe)
            candidate = as_trace(records)
            ok = engine.execute(
                context,
                MembershipDecisions(bits),
                lambda checkpointer: failure(candidate, checkpointer),
            )
        else:
            ok = failure(as_trace(records))
        history.append((len(records), ok))
        return ok

    records = list(trace.records)
    if not reproduces(records):
        raise ValueError("fault trace does not reproduce the failure")

    minimal = ddmin(records, reproduces)
    return FaultShrinkResult(
        original=trace,
        minimal=as_trace(minimal),
        trials=len(history),
        history=history,
    )
