"""Deterministic fault injection (``repro.faults``).

Seeded fault plans (frame drop/duplicate/reorder/corrupt, latency
spikes, link partitions, node crash/restart, clock step/drift) applied
at the network/scheduler/clock seams without perturbing any existing
RNG draw order; fired faults record as ``decision-trace/v1`` so fault
schedules replay bit-exactly and ddmin-shrink through
:mod:`repro.explore`.  See ``docs/API.md`` → "Fault injection".
"""

from repro.faults.injector import FaultInjector, FaultVerdict, install_fault_plan
from repro.faults.plan import (
    ClockFault,
    FaultPlan,
    LinkFault,
    NodeOutage,
    Partition,
)
from repro.faults.shrink import FaultShrinkResult, shrink_fault_trace

__all__ = [
    "ClockFault",
    "FaultInjector",
    "FaultPlan",
    "FaultShrinkResult",
    "FaultVerdict",
    "LinkFault",
    "NodeOutage",
    "Partition",
    "install_fault_plan",
    "shrink_fault_trace",
]
