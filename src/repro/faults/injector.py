"""The fault injector: applies a :class:`FaultPlan` to a running world.

Placement and determinism
-------------------------

The injector sits behind one attribute load on the hot path
(``Switch.send`` asks ``self._faults`` once per frame; with no plan
installed that is a ``None`` check and nothing else).  When consulted,
it decides each probabilistic fault with a **stateless PRF**: a SHA-256
hash of ``(plan.seed, fault stream, kind, flow, per-flow frame index)``
mapped to ``[0, 1)``.  Three properties follow:

* *no perturbation* — the experiment's RNG tree is never touched, so
  the ``net``/``scheduler``/``exec.*`` streams draw exactly the
  sequence they would without faults (the switch still samples its
  latency model for dropped frames, keeping the draw order identical);
* *cross-seed stability* — the decision depends only on the plan and
  the frame's ordinal within its flow, so the same plan hits the same
  frames under every world seed and regardless of how unrelated
  traffic interleaves;
* *replay & shrink* — fired faults are recorded as ``decision-trace/v1``
  records (stream ``faults/...``).  Replaying a trace turns every
  decision into a table lookup keyed ``(stream, kind, flow, index)``,
  so **any subset** of the recorded faults is itself a valid fault
  schedule — the property :func:`repro.explore.shrink.ddmin` needs to
  minimize a failing fault trace.

Time-window faults (partitions, node outages, clock steps) are pure
functions of simulated time and need no randomness; in replay mode they
too are gated by the table so they participate in shrinking.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import SimulationError
from repro.explore.decisions import DecisionRecord, DecisionTrace
from repro.faults.plan import FaultPlan
from repro.obs import context as obs_context
from repro.obs.bus import TRACK_FAULTS

if TYPE_CHECKING:
    from repro.network.switch import Frame
    from repro.sim.world import World

__all__ = ["FaultVerdict", "FaultInjector", "install_fault_plan"]

_PRF_DENOMINATOR = float(2**64)


def _unit(seed: int, stream: str, kind: str, name: str, index: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` for one decision site."""
    digest = hashlib.sha256(
        f"{seed}/{stream}/{kind}/{name}/{index}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / _PRF_DENOMINATOR


@dataclass(slots=True)
class FaultVerdict:
    """What the injector decided for one frame (``None`` = untouched)."""

    #: Fault kind that kills the frame (``drop`` / ``partition-drop`` /
    #: ``outage-drop``), or ``None`` if it is delivered.
    drop: str | None = None
    #: Deliver the frame with a corrupted payload (dropped at the NIC
    #: like a bad-FCS frame, but visibly: the receiver counts it).
    corrupt: bool = False
    #: Extra transport delay (latency spike or partition defer).
    extra_delay_ns: int = 0
    #: Exempt the frame from per-flow FIFO so later frames overtake it.
    bypass_fifo: bool = False
    #: If not ``None``, deliver a second copy this much later.
    duplicate_delay_ns: int | None = None


class FaultInjector:
    """Applies one :class:`FaultPlan`, recording every fired fault."""

    def __init__(
        self,
        plan: FaultPlan,
        replay: DecisionTrace | None = None,
        universe: DecisionTrace | None = None,
        checkpointer=None,
    ):
        self.plan = plan
        self.trace = DecisionTrace(
            base_seed=plan.seed,
            experiment="faults",
            params={"label": plan.label},
        )
        #: Fired-fault counters by kind (``drop``, ``spike``, ...).
        self.counters: dict[str, int] = {}
        self._flow_index: dict[str, int] = {}
        self._replay: dict[tuple[str, str, str, int], int] | None = None
        if replay is not None:
            self._replay = {
                (r.stream, r.kind, r.name, r.bound): r.choice
                for r in replay.records
            }
        # Snapshot-fork seam: *universe* is the full fired-fault trace a
        # replayed subset was drawn from.  Its records fire in
        # chronological order in *any* subset replay, so the number of
        # universe records whose site has been consulted is a decision
        # index: two subsets agreeing on membership of records < k are
        # bit-identical up to record k's site — a valid capture point.
        self._universe: list[DecisionRecord] | None = (
            list(universe.records) if universe is not None else None
        )
        self._universe_keys = (
            [(r.stream, r.kind, r.name, r.bound) for r in self._universe]
            if self._universe is not None
            else None
        )
        self._decided = 0
        self._ckpt = checkpointer

    # -- decision core ------------------------------------------------------

    def _adopt(self, bits) -> None:
        """A forked continuation swaps in its own subset's membership."""
        assert self._universe is not None
        self._replay = {
            (r.stream, r.kind, r.name, r.bound): r.choice
            for r, bit in zip(self._universe, bits)
            if bit
        }

    def _gate(self, key: tuple[str, str, str, int]) -> bool:
        """Replay-table lookup, advancing the universe decision cursor."""
        keys = self._universe_keys
        if keys is not None:
            decided = self._decided
            if decided < len(keys) and keys[decided] == key:
                # Capture *before* this record's membership takes
                # effect: holder state depends only on records < cursor.
                ckpt = self._ckpt
                if ckpt is not None and ckpt.wants(decided):
                    ckpt.reached(decided, self._adopt)
                self._decided = decided + 1
        return key in self._replay

    def _fires(
        self, stream: str, kind: str, name: str, index: int, probability: float
    ) -> bool:
        """Decide one probabilistic site (PRF in live mode, table in replay)."""
        if self._replay is not None:
            return self._gate((stream, kind, name, index))
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return _unit(self.plan.seed, stream, kind, name, index) < probability

    def _window_fires(self, stream: str, kind: str, name: str, index: int) -> bool:
        """Decide one time-window site (always fires live, gated in replay)."""
        if self._replay is not None:
            return self._gate((stream, kind, name, index))
        return True

    def _record(
        self, stream: str, kind: str, name: str, index: int, choice: int, now: int
    ) -> None:
        records = self.trace.records
        records.append(
            DecisionRecord(len(records), stream, kind, name, index, choice)
        )
        self.counters[kind] = self.counters.get(kind, 0) + 1
        o = obs_context.ACTIVE
        if o.enabled:
            o.metrics.counter(f"faults.{kind}").inc()
            o.bus.instant(
                TRACK_FAULTS,
                f"{kind} {name}",
                now,
                o.wall_ns(),
                frame=index,
                choice=choice,
            )

    # -- the Switch seam ----------------------------------------------------

    def on_send(self, frame: "Frame", now: int, route=None) -> FaultVerdict | None:
        """Consulted by :meth:`Switch.send` once per frame, after the
        latency draw.  Returns ``None`` when no fault touches the frame.

        *route* is the frame's resolved :class:`~repro.network.topology.Route`
        on a fabric (``None`` on the legacy single switch): outages of
        intermediate switches and link-scoped partitions consult it.
        """
        name = f"{frame.src_host}->{frame.dst_host}:{frame.dst_port}"
        index = self._flow_index.get(name, 0)
        self._flow_index[name] = index + 1
        plan = self.plan
        verdict: FaultVerdict | None = None
        route_links = None if route is None else route.link_keys

        for i, outage in enumerate(plan.outages):
            hit = outage.down(frame.src_host, now) or outage.down(frame.dst_host, now)
            if not hit and route is not None:
                hit = any(outage.down(sw, now) for sw in route.switches)
            if not hit:
                continue
            stream = f"faults/outage{i}"
            if self._window_fires(stream, "outage-drop", name, index):
                self._record(stream, "outage-drop", name, index, 1, now)
                return FaultVerdict(drop="outage-drop")

        defer_ns = 0
        for i, partition in enumerate(plan.partitions):
            if not partition.severs(
                frame.src_host, frame.dst_host, now, route_links=route_links
            ):
                continue
            stream = f"faults/part{i}"
            if partition.mode == "drop":
                if self._window_fires(stream, "partition-drop", name, index):
                    self._record(stream, "partition-drop", name, index, 1, now)
                    return FaultVerdict(drop="partition-drop")
                continue
            held = partition.end_ns - now
            if self._window_fires(stream, "partition-defer", name, index):
                self._record(stream, "partition-defer", name, index, held, now)
                defer_ns = max(defer_ns, held)
        if defer_ns:
            verdict = FaultVerdict(extra_delay_ns=defer_ns)

        for i, fault in enumerate(plan.link_faults):
            if not fault.matches(frame.src_host, frame.dst_host, frame.dst_port, now):
                continue
            stream = f"faults/link{i}"
            if self._fires(stream, "drop", name, index, fault.drop_probability):
                self._record(stream, "drop", name, index, 1, now)
                return FaultVerdict(drop="drop")
            if self._fires(stream, "corrupt", name, index, fault.corrupt_probability):
                self._record(stream, "corrupt", name, index, 1, now)
                verdict = verdict or FaultVerdict()
                verdict.corrupt = True
            if self._fires(stream, "spike", name, index, fault.spike_probability):
                self._record(stream, "spike", name, index, fault.spike_ns, now)
                verdict = verdict or FaultVerdict()
                verdict.extra_delay_ns += fault.spike_ns
            if self._fires(stream, "reorder", name, index, fault.reorder_probability):
                self._record(
                    stream, "reorder", name, index, fault.reorder_delay_ns, now
                )
                verdict = verdict or FaultVerdict()
                verdict.extra_delay_ns += fault.reorder_delay_ns
                verdict.bypass_fifo = True
            if self._fires(
                stream, "duplicate", name, index, fault.duplicate_probability
            ):
                self._record(
                    stream, "duplicate", name, index, fault.duplicate_delay_ns, now
                )
                verdict = verdict or FaultVerdict()
                verdict.duplicate_delay_ns = fault.duplicate_delay_ns
        return verdict

    # -- reporting ----------------------------------------------------------

    @property
    def fired(self) -> int:
        """How many faults actually fired so far."""
        return len(self.trace.records)

    def summary(self) -> dict:
        """Picklable per-run digest (rides along in sweep results).

        Includes the full fired-fault trace (``decision-trace/v1``), so a
        sweep result is enough to replay or ddmin-shrink the schedule —
        no need to keep the world alive.
        """
        return {
            "plan": self.plan.describe(),
            "fault_seed": self.plan.seed,
            "fired": self.fired,
            "counters": dict(sorted(self.counters.items())),
            "trace_fingerprint": self.trace.fingerprint(),
            "trace": self.trace.to_dict(),
        }


def install_fault_plan(
    world: "World",
    plan: FaultPlan,
    replay: DecisionTrace | None = None,
    universe: DecisionTrace | None = None,
    checkpointer=None,
) -> FaultInjector:
    """Attach *plan* to a built (not yet run) world.

    Wires the injector into the network switch, schedules node
    crash/restart windows as scheduler freeze/thaw events, and schedules
    clock faults against the target platforms' physical clocks.  Returns
    the injector; read ``injector.trace`` / ``injector.summary()`` after
    the run.  With *replay*, probabilistic decisions are answered from
    the recorded trace instead of the plan's PRF stream (any subset of a
    recorded trace is valid — see module docstring).  *universe* plus
    *checkpointer* let the snapshot engine capture copy-on-write
    checkpoints between replayed membership decisions (see
    :mod:`repro.snapshot`).
    """
    injector = FaultInjector(
        plan, replay=replay, universe=universe, checkpointer=checkpointer
    )
    world.fault_injector = injector
    switch = world.network
    if switch is not None:
        switch.attach_faults(injector)
    elif plan.link_faults or plan.partitions or plan.outages:
        raise SimulationError(
            "fault plan needs a network, but the world has none attached"
        )
    topology = None if switch is None else switch.config.topology
    if topology is not None and topology.is_trivial:
        topology = None  # a trivial topology never routes, so never faults
    fabric_switches = set() if topology is None else set(topology.switches)
    fabric_links = (
        set() if topology is None else {link.key for link in topology.links}
    )
    for partition in plan.partitions:
        for key in partition.links:
            if key not in fabric_links:
                raise SimulationError(
                    f"partition cuts unknown fabric link {key!r}"
                )

    def _freeze(host: str, index: int, start_ns: int):
        def apply() -> None:
            platform = world.platforms.get(host)
            if platform is None:
                return
            platform.scheduler.freeze()
            injector._record(f"faults/outage{index}", "crash", host, 0, 1, start_ns)

        return apply

    def _thaw(host: str, index: int, end_ns: int):
        def apply() -> None:
            platform = world.platforms.get(host)
            if platform is None:
                return
            platform.scheduler.thaw()
            injector._record(f"faults/outage{index}", "restart", host, 0, 1, end_ns)

        return apply

    for i, outage in enumerate(plan.outages):
        if outage.host in fabric_switches:
            # A dead fabric switch has no scheduler to freeze: its whole
            # effect is that routed frames die in ``on_send``.
            continue
        if outage.host not in world.platforms:
            raise SimulationError(f"outage targets unknown host {outage.host!r}")
        world.sim.at(outage.start_ns, _freeze(outage.host, i, outage.start_ns))
        world.sim.at(outage.end_ns, _thaw(outage.host, i, outage.end_ns))

    def _clock_fault(index: int, fault) -> None:
        platform = world.platforms.get(fault.host)
        if platform is None:
            return
        platform.clock.apply_fault(
            world.sim.now, step_ns=fault.step_ns, drift_ppb=fault.drift_ppb
        )
        injector._record(
            f"faults/clock{index}", "clock-fault", fault.host, 0,
            fault.step_ns, fault.at_ns,
        )

    for i, fault in enumerate(plan.clock_faults):
        if fault.host not in world.platforms:
            raise SimulationError(
                f"clock fault targets unknown host {fault.host!r}"
            )
        world.sim.at(fault.at_ns, lambda i=i, f=fault: _clock_fault(i, f))

    return injector
