"""Extension experiments beyond the paper's evaluation.

The paper evaluates on one demonstrator with both processing SWCs on a
single platform (``E = 0``) and fixed deadlines.  These experiments
probe the parts of the design the paper only argues about:

* :func:`clock_skew_sweep` — the role of the clock-synchronization
  error bound ``E`` in ``t + D + L + E``: under-estimating the actual
  skew produces (counted) safe-to-process violations, covering it
  restores clean tag-order delivery;
* :func:`pipeline_scaling` — end-to-end logical latency of a DEAR
  event chain as a function of pipeline depth: exactly
  ``depth x (D + L + E)`` per the composition rule, confirming the
  latency model used in Section IV.B generalizes;
* the **native tag transport** (SOME/IP protocol v2 — the standard
  extension the paper's conclusion advocates) is exercised by
  :func:`native_transport_comparison`, which checks behavioural
  equivalence and measures the wire-size saving over the trailer
  workaround.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

from repro.analysis.report import render_table
from repro.harness.config import ScenarioSpec
from repro.harness.sweep import SweepRunner
from repro.ara import AraProcess, Event, Method, ServiceInterface
from repro.dear import (
    ClientEventTransactor,
    ServerEventTransactor,
    StpConfig,
    TransactorConfig,
)
from repro.network import ConstantLatency, NetworkInterface, Switch, SwitchConfig
from repro.reactors import Environment, Reactor
from repro.sim import World
from repro.sim.platform import CALM, PlatformConfig
from repro.someip import SdDaemon
from repro.someip.serialization import INT32
from repro.time import ClockModel, MS, SEC


def _pulse_interface(service_id: int, name: str = "Pulse") -> ServiceInterface:
    return ServiceInterface(
        name, service_id,
        methods=[Method("noop", 1)],
        events=[Event("pulse", 0x8001, data=[("n", INT32)])],
    )


class _Publisher(Reactor):
    def __init__(self, name, owner, count, period=20 * MS, offset=400 * MS):
        super().__init__(name, owner)
        self.out = self.output("out")
        tick = self.timer("tick", offset=offset, period=period)
        self.n = 0

        def fire(ctx):
            if self.n < count:
                self.n += 1
                ctx.set(self.out, self.n)

        self.reaction("fire", triggers=[tick], effects=[self.out], body=fire)


class _Subscriber(Reactor):
    def __init__(self, name, owner, ticking=True):
        super().__init__(name, owner)
        self.inp = self.input("inp")
        self.received = []
        if ticking:
            self.timer("local", offset=0, period=1 * MS)
        self.reaction(
            "recv", triggers=[self.inp],
            body=lambda ctx: self.received.append((ctx.tag, ctx.get(self.inp))),
        )


# ---------------------------------------------------------------------------
# EXT-SKEW — clock synchronization error.
# ---------------------------------------------------------------------------


@dataclass
class SkewPoint:
    """One (actual skew, assumed E) configuration."""

    actual_skew_ns: int
    assumed_error_ns: int
    stp_violations: int
    delivered: int
    in_order: bool


@dataclass
class ClockSkewResult:
    """The EXT-SKEW sweep."""

    points: list[SkewPoint]
    count: int

    def render(self) -> str:
        rows = [
            [
                f"{point.actual_skew_ns / 1e6:.0f} ms",
                f"{point.assumed_error_ns / 1e6:.0f} ms",
                str(point.stp_violations),
                f"{point.delivered}/{self.count}",
                "yes" if point.in_order else "NO",
            ]
            for point in self.points
        ]
        return render_table(
            ["actual skew", "assumed E", "STP violations", "delivered",
             "tag order kept"],
            rows,
            title="EXT-SKEW - clock-sync error bound E in t + D + L + E:",
        )


def _skew_point(
    configuration, count: int, latency_bound_ns: int = 2 * MS
) -> SkewPoint:
    """One (actual skew, assumed E) configuration (runs in a worker)."""
    actual_skew, assumed_error = configuration
    interface = _pulse_interface(0x5200)
    world = World(0)
    switch = Switch(
        world.sim, world.rng.stream("net"),
        SwitchConfig(latency=ConstantLatency(1 * MS), ns_per_byte=0),
    )
    world.attach_network(switch)
    pub_platform = world.add_platform("pub-ecu", CALM)
    sub_platform = world.add_platform(
        "sub-ecu",
        PlatformConfig(
            num_cores=1,
            clock=ClockModel(offset_ns=actual_skew),
            dispatch_jitter_ns=0,
            timer_jitter_ns=0,
        ),
    )
    for platform in (pub_platform, sub_platform):
        SdDaemon(platform, NetworkInterface(platform, switch))
    config = TransactorConfig(
        deadline_ns=5 * MS,
        stp=StpConfig(
            latency_bound_ns=latency_bound_ns, clock_error_ns=assumed_error
        ),
    )
    server_process = AraProcess(pub_platform, "pub", tag_aware=True)
    server_env = Environment(name="pub", timeout=2 * SEC)
    publisher = _Publisher("publisher", server_env, count)
    skeleton = server_process.create_skeleton(interface, 1)
    skeleton.implement("noop", lambda: None)
    tx = ServerEventTransactor(
        "tx", server_env, server_process, skeleton, "pulse", config
    )
    server_env.connect(publisher.out, tx.inp)
    skeleton.offer()
    server_env.start(pub_platform)

    client_process = AraProcess(sub_platform, "sub", tag_aware=True)
    client_env = Environment(name="sub", timeout=3 * SEC)
    subscriber = _Subscriber("subscriber", client_env)
    holder = {}

    def setup():
        proxy = yield from client_process.find_service(interface, 1)
        rx = ClientEventTransactor(
            "rx", client_env, client_process, proxy, "pulse", config
        )
        client_env.connect(rx.out, subscriber.inp)
        client_env.start(sub_platform)
        holder["rx"] = rx

    client_process.spawn("setup", setup())
    world.run_for(5 * SEC)
    tags = [tag for tag, _ in subscriber.received]
    return SkewPoint(
        actual_skew_ns=actual_skew,
        assumed_error_ns=assumed_error,
        stp_violations=holder["rx"].stp_violations,
        delivered=len(subscriber.received),
        in_order=tags == sorted(tags),
    )


def clock_skew_sweep(
    configurations: list[tuple[int, int]] | None = None,
    count: int = 12,
    sweep: SweepRunner | None = None,
    spec: ScenarioSpec | None = None,
) -> ClockSkewResult:
    """Sweep (actual skew, assumed E) pairs over a two-ECU event chain.

    With *spec* carrying an :class:`StpConfig`, its ``L`` bound applies
    to every point and its ``E`` seeds the default configuration list.
    """
    latency_bound_ns = 2 * MS
    if spec is not None and spec.stp is not None:
        latency_bound_ns = spec.stp.latency_bound_ns
        if configurations is None:
            assumed = spec.stp.clock_error_ns
            configurations = [
                (0, assumed),
                (assumed, assumed),
                (2 * assumed + 10 * MS, assumed),
            ]
    if configurations is None:
        configurations = [
            (0, 0),
            (10 * MS, 0),
            (10 * MS, 12 * MS),
            (25 * MS, 12 * MS),
            (25 * MS, 30 * MS),
        ]
    sweep = sweep or SweepRunner()
    points = sweep.map(
        partial(_skew_point, count=count, latency_bound_ns=latency_bound_ns),
        configurations,
        name="ext-skew",
        params={"count": count, "latency_bound_ns": latency_bound_ns},
    )
    return ClockSkewResult(points, count)


# ---------------------------------------------------------------------------
# EXT-SCALE — pipeline depth vs. logical latency.
# ---------------------------------------------------------------------------


@dataclass
class ScalePoint:
    """One pipeline depth."""

    depth: int
    logical_latency_ns: int
    expected_ns: int


@dataclass
class PipelineScalingResult:
    """The EXT-SCALE sweep."""

    points: list[ScalePoint]
    hop_cost_ns: int

    def render(self) -> str:
        rows = [
            [
                str(point.depth),
                f"{point.logical_latency_ns / 1e6:.0f} ms",
                f"{point.expected_ns / 1e6:.0f} ms",
            ]
            for point in self.points
        ]
        return render_table(
            ["pipeline depth", "measured logical latency", "depth x (D+L+E)"],
            rows,
            title="EXT-SCALE - DEAR event-chain latency vs. depth:",
        )


def _scaling_point(
    depth: int, deadline_ns: int, latency_bound_ns: int
) -> ScalePoint:
    """One pipeline depth of the scaling sweep (runs in a worker)."""
    hop_cost = deadline_ns + latency_bound_ns
    config = TransactorConfig(
        deadline_ns=deadline_ns, stp=StpConfig(latency_bound_ns=latency_bound_ns)
    )
    world = World(0)
    switch = Switch(
        world.sim, world.rng.stream("net"),
        SwitchConfig(latency=ConstantLatency(1 * MS),
                     loopback_latency=ConstantLatency(100_000),
                     ns_per_byte=0),
    )
    world.attach_network(switch)
    platforms = []
    for host in ("ecu-a", "ecu-b"):
        platform = world.add_platform(host, CALM)
        SdDaemon(platform, NetworkInterface(platform, switch))
        platforms.append(platform)

    interfaces = [
        _pulse_interface(0x5300 + index, f"Hop{index}")
        for index in range(depth)
    ]
    start_tag = {}
    end_tags = []

    # Source SWC publishes into hop 0.
    source_platform = platforms[0]
    source_process = AraProcess(source_platform, "source", tag_aware=True)
    source_env = Environment(name="source", timeout=3 * SEC)
    publisher = _Publisher("publisher", source_env, count=3)
    source_skeleton = source_process.create_skeleton(interfaces[0], 1)
    source_skeleton.implement("noop", lambda: None)
    source_tx = ServerEventTransactor(
        "tx", source_env, source_process, source_skeleton, "pulse", config
    )

    class _Tap(Reactor):
        """Records the tag at which each pulse leaves the source."""

        def __init__(self, name, owner):
            super().__init__(name, owner)
            self.inp = self.input("inp")
            self.out = self.output("out")

            def tap(ctx):
                start_tag[ctx.get(self.inp)] = ctx.tag.time
                ctx.set(self.out, ctx.get(self.inp))

            self.reaction("tap", triggers=[self.inp], effects=[self.out],
                          body=tap)

    tap = _Tap("tap", source_env)
    source_env.connect(publisher.out, tap.inp)
    source_env.connect(tap.out, source_tx.inp)
    source_skeleton.offer()
    source_env.start(source_platform)

    # Forwarding SWCs: hop i subscribes to interface i, publishes i+1.
    def make_forwarder(index):
        platform = platforms[(index + 1) % 2]
        process = AraProcess(platform, f"hop{index}", tag_aware=True)
        env = Environment(name=f"hop{index}", timeout=3 * SEC)
        is_last = index == depth - 1

        class Forwarder(Reactor):
            def __init__(self, name, owner):
                super().__init__(name, owner)
                self.inp = self.input("inp")
                self.out = self.output("out")

                def forward(ctx):
                    value = ctx.get(self.inp)
                    if is_last:
                        end_tags.append((value, ctx.tag.time))
                    else:
                        ctx.set(self.out, value)

                self.reaction("fwd", triggers=[self.inp],
                              effects=[self.out], body=forward)

        forwarder = Forwarder("logic", env)
        if not is_last:
            skeleton = process.create_skeleton(interfaces[index + 1], 1)
            skeleton.implement("noop", lambda: None)
            tx = ServerEventTransactor(
                "tx", env, process, skeleton, "pulse", config
            )
            env.connect(forwarder.out, tx.inp)
            skeleton.offer()

        def setup():
            proxy = yield from process.find_service(interfaces[index], 1)
            rx = ClientEventTransactor(
                "rx", env, process, proxy, "pulse", config
            )
            env.connect(rx.out, forwarder.inp)
            env.start(platform)

        process.spawn("setup", setup())

    for index in range(depth):
        make_forwarder(index)
    world.run_for(6 * SEC)
    if not end_tags or not start_tag:
        raise RuntimeError(f"pipeline of depth {depth} produced no output")
    value, end_time = end_tags[0]
    latency = end_time - start_tag[value]
    return ScalePoint(
        depth=depth, logical_latency_ns=latency, expected_ns=depth * hop_cost
    )


def pipeline_scaling(
    depths: list[int] | None = None,
    deadline_ns: int = 5 * MS,
    latency_bound_ns: int = 5 * MS,
    sweep: SweepRunner | None = None,
    spec: ScenarioSpec | None = None,
) -> PipelineScalingResult:
    """Measure logical end-to-end latency of DEAR chains of varying depth.

    Every hop is a full SWC boundary: its own AP process, service,
    server event transactor and (downstream) client event transactor,
    alternating between two ECUs so half the hops cross the network.
    With *spec* carrying an :class:`StpConfig`, its ``L`` bound is the
    per-hop latency bound.
    """
    if spec is not None and spec.stp is not None:
        latency_bound_ns = spec.stp.latency_bound_ns
    if depths is None:
        depths = [1, 2, 4, 6]
    sweep = sweep or SweepRunner()
    points = sweep.map(
        partial(
            _scaling_point,
            deadline_ns=deadline_ns,
            latency_bound_ns=latency_bound_ns,
        ),
        depths,
        name="ext-scale",
        params={"deadline_ns": deadline_ns, "latency_bound_ns": latency_bound_ns},
    )
    return PipelineScalingResult(points, deadline_ns + latency_bound_ns)


# ---------------------------------------------------------------------------
# EXT-NATIVE — the advocated standard extension vs. the workaround.
# ---------------------------------------------------------------------------


@dataclass
class NativeTransportResult:
    """Behavioural equivalence + wire cost of the two tag encodings."""

    behaviour_identical: bool
    trailer_bytes: int
    native_bytes: int

    def render(self) -> str:
        rows = [
            ["trailer (paper's workaround)", str(self.trailer_bytes)],
            ["native v2 field (proposed extension)", str(self.native_bytes)],
        ]
        table = render_table(
            ["tag encoding", "bytes per tagged message"],
            rows,
            title="EXT-NATIVE - standard extension vs. workaround:",
        )
        return table + (
            f"\n  behaviourally identical: {self.behaviour_identical}"
        )


def _run_encoding_chain(transport: str) -> str:
    """One pulse chain with the given tag encoding; returns its trace."""
    interface = _pulse_interface(0x5400, "EncodingPulse")
    world = World(0)
    switch = Switch(
        world.sim, world.rng.stream("net"),
        SwitchConfig(latency=ConstantLatency(1 * MS), ns_per_byte=0),
    )
    world.attach_network(switch)
    for host in ("pub-ecu", "sub-ecu"):
        platform = world.add_platform(host, CALM)
        SdDaemon(platform, NetworkInterface(platform, switch))
    config = TransactorConfig(
        deadline_ns=5 * MS, stp=StpConfig(latency_bound_ns=5 * MS)
    )
    server_process = AraProcess(
        world.platform("pub-ecu"), "pub", tag_aware=True, tag_transport=transport
    )
    server_env = Environment(name="pub", timeout=2 * SEC, trace_origin=0)
    publisher = _Publisher("publisher", server_env, count=4)
    skeleton = server_process.create_skeleton(interface, 1)
    skeleton.implement("noop", lambda: None)
    tx = ServerEventTransactor("tx", server_env, server_process, skeleton,
                               "pulse", config)
    server_env.connect(publisher.out, tx.inp)
    skeleton.offer()
    server_env.start(world.platform("pub-ecu"))

    client_process = AraProcess(
        world.platform("sub-ecu"), "sub", tag_aware=True, tag_transport=transport
    )
    client_env = Environment(name="sub", timeout=3 * SEC, trace_origin=0)
    subscriber = _Subscriber("subscriber", client_env, ticking=False)

    def setup():
        proxy = yield from client_process.find_service(interface, 1)
        rx = ClientEventTransactor("rx", client_env, client_process, proxy,
                                   "pulse", config)
        client_env.connect(rx.out, subscriber.inp)
        client_env.start(world.platform("sub-ecu"))

    client_process.spawn("setup", setup())
    world.run_for(5 * SEC)
    return client_env.trace.fingerprint()


def native_transport_comparison(
    sweep: SweepRunner | None = None,
) -> NativeTransportResult:
    """Compare the two tag encodings: behaviour and wire cost."""
    from repro.someip import MessageType, SomeIpHeader, SomeIpMessage
    from repro.someip.tagging import attach_tag
    from repro.time import Tag

    sweep = sweep or SweepRunner()
    trailer_trace, native_trace = sweep.map(
        _run_encoding_chain, ["trailer", "native"], name="ext-native"
    )
    behaviour_identical = trailer_trace == native_trace
    header = SomeIpHeader(
        service_id=1, method_id=0x8001, client_id=0, session_id=1,
        message_type=MessageType.NOTIFICATION,
    )
    payload = b"\x00" * 16
    tag = Tag(123 * MS, 0)
    trailer = SomeIpMessage(header, attach_tag(payload, tag)).size_bytes
    native = SomeIpMessage(header, payload, native_tag=tag).size_bytes
    return NativeTransportResult(
        behaviour_identical=behaviour_identical,
        trailer_bytes=trailer,
        native_bytes=native,
    )
