"""Experiment harness regenerating the paper's figures.

:mod:`repro.harness.figures` contains one driver per experiment of the
index in ``DESIGN.md`` (FIG1, FIG5, DET, TRADEOFF, ABLATE-SRC, OVERHEAD,
LET); each returns a result object with a ``render()`` method producing
the text form of the corresponding figure.  The benchmark suite under
``benchmarks/`` is a thin wrapper around these drivers.

:mod:`repro.harness.sweep` provides :class:`SweepRunner`, the parallel
seeded-sweep engine (process-pool fan-out, deterministic seed-order
merge, on-disk result cache) that the drivers, the CLI and the
benchmarks all share.
"""

from repro.harness.benchdiff import compare_dirs, render_bench_diff
from repro.harness.config import NetworkSpec, ScenarioSpec, run_scenario_spec
from repro.harness.runner import env_int
from repro.harness.sweep import (
    SeedOutcome,
    SweepError,
    SweepResult,
    SweepRunner,
    SweepStats,
    code_fingerprint,
    driver_fingerprint,
    default_workers,
    merge_metric_snapshots,
)
from repro.harness import figures

__all__ = [
    "NetworkSpec",
    "ScenarioSpec",
    "run_scenario_spec",
    "env_int",
    "figures",
    "SweepRunner",
    "SweepResult",
    "SeedOutcome",
    "SweepStats",
    "SweepError",
    "code_fingerprint",
    "driver_fingerprint",
    "default_workers",
    "merge_metric_snapshots",
    "compare_dirs",
    "render_bench_diff",
]
