"""Experiment harness regenerating the paper's figures.

:mod:`repro.harness.figures` contains one driver per experiment of the
index in ``DESIGN.md`` (FIG1, FIG5, DET, TRADEOFF, ABLATE-SRC, OVERHEAD,
LET); each returns a result object with a ``render()`` method producing
the text form of the corresponding figure.  The benchmark suite under
``benchmarks/`` is a thin wrapper around these drivers.
"""

from repro.harness.runner import env_int, run_seeds
from repro.harness import figures

__all__ = ["run_seeds", "env_int", "figures"]
