"""Parallel seeded-sweep engine with on-disk result caching.

Every paper artifact is an embarrassingly parallel sweep over seeds (or
over another scalar knob such as a deadline or a pipeline depth).  The
:class:`SweepRunner` fans the per-seed work out over a
``concurrent.futures.ProcessPoolExecutor`` and merges the results back
**in seed order**, so the merged output is bit-identical to a
sequential single-worker run — each seed
builds its own :class:`~repro.sim.World`, so per-seed results (including
trace fingerprints) do not depend on scheduling across seeds.

Results are cached on disk as JSON lines under ``.repro_cache/`` (one
file per experiment), keyed by experiment name + parameters + seed +
a fingerprint of the ``repro`` source tree, so repeated CLI/benchmark
invocations skip already-computed seeds.  ``force=True`` recomputes and
overwrites; ``use_cache=False`` bypasses the cache entirely.

Environment knobs:

``REPRO_WORKERS``
    Default worker count (else the CPUs actually *available*: scheduler
    affinity capped by the cgroup CPU quota).  ``1`` runs inline.
``REPRO_CACHE_DIR``
    Cache directory (default ``.repro_cache`` in the working directory).
``REPRO_NO_CACHE``
    Any non-empty value disables the cache by default.
"""

from __future__ import annotations

import base64
import hashlib
import json
import math
import os
import pickle
import sys
import time
import traceback
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import lru_cache, partial
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.harness.runner import env_int
from repro.obs import fleet

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "SweepRunner",
    "SweepResult",
    "SeedOutcome",
    "SweepStats",
    "SweepError",
    "code_fingerprint",
    "driver_fingerprint",
    "default_workers",
    "merge_metric_snapshots",
]

DEFAULT_CACHE_DIR = ".repro_cache"


def _cgroup_cpu_quota(root: str | Path = "/sys/fs/cgroup") -> int | None:
    """CPU count implied by the cgroup CPU quota, or ``None``.

    CI containers routinely advertise the host's full core count via
    ``os.cpu_count()`` while the cgroup caps them to one or two CPUs of
    bandwidth; sizing a process pool off the host count oversubscribes
    the quota and thrashes.  Reads cgroup v2 ``cpu.max`` (``"<quota>
    <period>"`` or ``"max <period>"``) and falls back to the cgroup v1
    ``cpu.cfs_quota_us``/``cpu.cfs_period_us`` pair.
    """
    root = Path(root)
    try:
        parts = (root / "cpu.max").read_text().split()
        if parts and parts[0] != "max":
            quota = int(parts[0])
            period = int(parts[1]) if len(parts) > 1 else 100_000
            if quota > 0 and period > 0:
                return max(1, math.ceil(quota / period))
    except (OSError, ValueError):
        pass
    try:
        quota = int((root / "cpu" / "cpu.cfs_quota_us").read_text())
        period = int((root / "cpu" / "cpu.cfs_period_us").read_text())
        if quota > 0 and period > 0:
            return max(1, math.ceil(quota / period))
    except (OSError, ValueError):
        pass
    return None


def default_workers() -> int:
    """Worker count: ``REPRO_WORKERS``, else the *available* CPUs.

    "Available" respects what the platform actually grants this
    process: ``os.process_cpu_count()`` (Python 3.13+) or the scheduler
    affinity mask, further capped by the cgroup CPU quota
    (:func:`_cgroup_cpu_quota`) so containerized CI runs stop
    oversubscribing their bandwidth limit.
    """
    if os.environ.get("REPRO_WORKERS") is not None:
        return max(1, env_int("REPRO_WORKERS", 1))
    process_cpu_count = getattr(os, "process_cpu_count", None)
    if process_cpu_count is not None:
        available = process_cpu_count() or 1
    else:
        try:
            available = len(os.sched_getaffinity(0))
        except (AttributeError, OSError):
            available = os.cpu_count() or 1
    quota = _cgroup_cpu_quota()
    if quota is not None:
        available = min(available, quota)
    return max(1, available)


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of the ``repro`` source tree (cache-invalidation key).

    Any change to the library invalidates previously cached sweep
    results, so a cache hit is always the result the current code would
    have produced.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def driver_fingerprint(experiment: Callable[..., Any]) -> str:
    """Hash of the module file *defining* the experiment callable.

    :func:`code_fingerprint` only covers the ``repro`` package, so a
    driver defined elsewhere — a benchmark script, a test module, a
    notebook export — could change without invalidating its cached
    results.  This hashes the defining module's source (unwrapping
    ``functools.partial`` layers first); drivers inside the ``repro``
    tree return ``""`` since the code fingerprint already covers them.
    """
    import repro

    while isinstance(experiment, partial):
        experiment = experiment.func
    module_name = getattr(experiment, "__module__", None)
    module = sys.modules.get(module_name) if module_name else None
    source = getattr(module, "__file__", None)
    if not source:
        return ""
    try:
        path = Path(source).resolve()
        root = Path(repro.__file__).resolve().parent
        if path.is_relative_to(root):
            return ""
        return hashlib.sha256(path.read_bytes()).hexdigest()[:16]
    except OSError:
        return ""


# ---------------------------------------------------------------------------
# Result records.
# ---------------------------------------------------------------------------


@dataclass
class SeedOutcome:
    """One seed's outcome: a value, or a captured error."""

    seed: Any
    value: Any = None
    #: Formatted traceback if the seed failed; ``None`` on success.
    error: str | None = None
    #: Whether the value came from the on-disk cache.
    cached: bool = False
    #: Wall-clock compute time (0.0 for cache hits).
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


class SweepError(RuntimeError):
    """Raised by :meth:`SweepResult.values` when any seed failed."""

    def __init__(self, name: str, failures: Sequence[SeedOutcome]):
        self.name = name
        self.failures = list(failures)
        first = self.failures[0]
        super().__init__(
            f"sweep {name!r}: {len(self.failures)} seed(s) failed; "
            f"first failure (seed {first.seed!r}):\n{first.error}"
        )


@dataclass
class SweepResult:
    """All outcomes of one sweep, merged in seed order."""

    name: str
    outcomes: list[SeedOutcome]
    elapsed_s: float
    workers: int

    @property
    def failures(self) -> list[SeedOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    @property
    def cache_hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cached)

    def values(self) -> list[Any]:
        """Per-seed values in seed order; raises :class:`SweepError`
        if any seed failed (after the whole sweep completed)."""
        if self.failures:
            raise SweepError(self.name, self.failures)
        return [outcome.value for outcome in self.outcomes]


@dataclass
class SweepStats:
    """Throughput accounting accumulated across a runner's sweeps."""

    seeds: int = 0
    cache_hits: int = 0
    errors: int = 0
    elapsed_s: float = 0.0
    sweeps: int = 0
    workers: int = 0

    def record(self, result: SweepResult) -> None:
        self.sweeps += 1
        self.seeds += len(result.outcomes)
        self.cache_hits += result.cache_hits
        self.errors += len(result.failures)
        self.elapsed_s += result.elapsed_s
        self.workers = max(self.workers, result.workers)

    def summary_line(self) -> str:
        from repro.analysis.report import sweep_summary

        return sweep_summary(
            seeds=self.seeds,
            elapsed_s=self.elapsed_s,
            cache_hits=self.cache_hits,
            errors=self.errors,
            workers=self.workers,
        )


# ---------------------------------------------------------------------------
# The on-disk cache.
# ---------------------------------------------------------------------------


def _encode_value(value: Any) -> tuple[str, Any]:
    """Encode a result for a JSON-lines record.

    Values that survive an exact JSON round-trip are stored as plain
    JSON; everything else (dataclasses, Counters, int-keyed dicts —
    which JSON would silently corrupt) is pickled and base64-wrapped.
    """
    try:
        text = json.dumps(value)
        if json.loads(text) == value:
            return "json", value
    except (TypeError, ValueError):
        pass
    blob = base64.b64encode(pickle.dumps(value)).decode("ascii")
    return "pickle", blob


def _decode_value(encoding: str, payload: Any) -> Any:
    if encoding == "json":
        return payload
    if encoding == "pickle":
        return pickle.loads(base64.b64decode(payload))
    raise ValueError(f"unknown cache encoding {encoding!r}")


def _jsonable_seed(seed: Any) -> Any:
    """A JSON-able form of a sweep item for keys and records."""
    if isinstance(seed, (bool, int, float, str)) or seed is None:
        return seed
    if isinstance(seed, (tuple, list)):
        return [_jsonable_seed(item) for item in seed]
    return repr(seed)


class _FileLock:
    """``fcntl`` advisory lock on a ``<file>.lock`` sidecar.

    Locking a sidecar (not the data file itself) lets compaction-style
    maintenance atomically replace the data file while holding the
    lock.  Degrades to a no-op where ``fcntl`` is unavailable.
    """

    def __init__(self, target: Path, shared: bool = False):
        self.path = target.with_name(target.name + ".lock")
        self.shared = shared
        self._handle = None

    def __enter__(self) -> "_FileLock":
        if fcntl is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a")
            mode = fcntl.LOCK_SH if self.shared else fcntl.LOCK_EX
            fcntl.flock(self._handle, mode)
        return self

    def __exit__(self, *exc_info) -> None:
        if self._handle is not None:
            fcntl.flock(self._handle, fcntl.LOCK_UN)
            self._handle.close()
            self._handle = None


def _tail_is_torn(path: Path) -> bool:
    """True when *path* ends in a partial (unterminated) JSONL line —
    the signature of a writer that crashed mid-append."""
    try:
        size = path.stat().st_size
    except OSError:
        return False
    if size == 0:
        return False
    with path.open("rb") as handle:
        handle.seek(-1, os.SEEK_END)
        return handle.read(1) != b"\n"


class ResultCache:
    """JSON-lines result store: one ``<experiment>.jsonl`` per sweep.

    Records are append-only; on load, later records win, so ``force``
    reruns simply shadow stale entries.  Appends from concurrent
    processes are serialized by an ``fcntl`` advisory lock and written
    as a single ``write()``, so records never interleave; a torn
    trailing line left by a crashed writer is skipped (and reported via
    :attr:`malformed`) on load and terminated before the next append,
    so one crash damages at most its own half-written record.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        #: malformed line count per cache file seen on the last load.
        self.malformed: dict[str, int] = {}
        self._warned: set[str] = set()

    def _path(self, experiment: str) -> Path:
        safe = "".join(
            ch if ch.isalnum() or ch in "-._" else "_" for ch in experiment
        )
        return self.directory / f"{safe}.jsonl"

    def load(self, experiment: str) -> dict[str, dict]:
        """All valid records of *experiment*, keyed by cache key."""
        path = self._path(experiment)
        records: dict[str, dict] = {}
        if not path.exists():
            return records
        with _FileLock(path, shared=True):
            try:
                data = path.read_bytes()
            except OSError:
                return records
        malformed = 0
        for line in data.split(b"\n"):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                records[record["key"]] = record
            except (ValueError, KeyError, TypeError):
                malformed += 1  # torn/corrupt line: miss, but reported
        if malformed:
            self.malformed[path.name] = malformed
            if path.name not in self._warned:
                self._warned.add(path.name)
                warnings.warn(
                    f"result cache {path}: skipped {malformed} malformed "
                    f"record(s) (torn line from a crashed append?); they "
                    f"will be recomputed",
                    RuntimeWarning,
                    stacklevel=2,
                )
        else:
            self.malformed.pop(path.name, None)
        f = fleet.ACTIVE
        if f.enabled:
            f.inc("fleet.result_cache.loads")
            f.inc("fleet.result_cache.records_loaded", len(records))
            if malformed:
                f.inc("fleet.result_cache.malformed_lines", malformed)
        return records

    def append(self, experiment: str, records: Iterable[dict]) -> None:
        records = list(records)
        if not records:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(experiment)
        blob = "".join(
            json.dumps(record) + "\n" for record in records
        ).encode()
        f = fleet.ACTIVE
        with _FileLock(path):
            with path.open("ab") as handle:
                if _tail_is_torn(path):
                    handle.write(b"\n")  # repair a crashed writer's tail
                    if f.enabled:
                        f.inc("fleet.result_cache.torn_repairs")
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
        if f.enabled:
            f.inc("fleet.result_cache.appends", len(records))

    def fetch(self, record: dict) -> Any:
        """Decode a record's payload (raises on a corrupt payload)."""
        return _decode_value(record["encoding"], record["payload"])


# ---------------------------------------------------------------------------
# The runner.
# ---------------------------------------------------------------------------


def _call_experiment(
    experiment: Callable[[Any], Any], seed: Any
) -> tuple[Any, str | None, float]:
    """Run one seed, capturing any exception as a formatted traceback.

    Runs inside the worker process; never raises, so one bad seed
    cannot kill the sweep.
    """
    started = time.perf_counter()
    try:
        value = experiment(seed)
        return value, None, time.perf_counter() - started
    except Exception:
        return None, traceback.format_exc(), time.perf_counter() - started


class SweepRunner:
    """Fan an experiment out over seeds; merge results in seed order.

    The *experiment* callable must be picklable (a module-level
    function, or a :func:`functools.partial` of one with picklable
    arguments) because it crosses a process boundary.

    One runner can serve many sweeps; :attr:`stats` accumulates
    seeds/s, cache hits and errors across all of them for the CLI /
    benchmark summary line.
    """

    def __init__(
        self,
        workers: int | None = None,
        use_cache: bool | None = None,
        force: bool = False,
        cache_dir: str | Path | None = None,
    ):
        self.workers = workers if workers and workers > 0 else default_workers()
        if use_cache is None:
            use_cache = not os.environ.get("REPRO_NO_CACHE")
        self.use_cache = use_cache
        self.force = force
        directory = cache_dir or os.environ.get(
            "REPRO_CACHE_DIR", DEFAULT_CACHE_DIR
        )
        self.cache = ResultCache(directory)
        self.stats = SweepStats()

    # -- keying -------------------------------------------------------------

    def _key(self, name: str, params: dict, seed: Any, driver: str = "") -> str:
        material = json.dumps(
            {
                "experiment": name,
                "params": params,
                "seed": _jsonable_seed(seed),
                "code": code_fingerprint(),
                "driver": driver,
            },
            sort_keys=True,
            default=repr,
        )
        return hashlib.sha256(material.encode()).hexdigest()[:32]

    # -- execution ----------------------------------------------------------

    def run(
        self,
        experiment: Callable[[Any], Any],
        seeds: Iterable[Any],
        *,
        name: str,
        params: dict | None = None,
    ) -> SweepResult:
        """Run *experiment* for every seed; outcomes in seed order.

        A failed seed is captured as a :class:`SeedOutcome` with its
        traceback — the sweep always completes.  Call
        :meth:`SweepResult.values` to get plain values (raising a
        single aggregate :class:`SweepError` if anything failed).
        """
        seeds = list(seeds)
        params = dict(params or {})
        started = time.perf_counter()
        outcomes: list[SeedOutcome | None] = [None] * len(seeds)

        driver = driver_fingerprint(experiment)
        keys = [self._key(name, params, seed, driver) for seed in seeds]
        known = self.cache.load(name) if self.use_cache else {}
        pending: list[int] = []
        for index, (seed, key) in enumerate(zip(seeds, keys)):
            record = None if self.force else known.get(key)
            if record is not None:
                try:
                    value = self.cache.fetch(record)
                except Exception:
                    pending.append(index)  # corrupt payload: recompute
                    continue
                outcomes[index] = SeedOutcome(seed, value, cached=True)
            else:
                pending.append(index)

        workers = min(self.workers, max(1, len(pending)))
        if pending:
            if workers <= 1:
                for index in pending:
                    value, error, elapsed = _call_experiment(
                        experiment, seeds[index]
                    )
                    outcomes[index] = SeedOutcome(
                        seeds[index], value, error, elapsed_s=elapsed
                    )
            else:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = {
                        index: pool.submit(
                            _call_experiment, experiment, seeds[index]
                        )
                        for index in pending
                    }
                    # Collect in submission (= seed) order: the merge is
                    # deterministic no matter which worker finishes first.
                    for index, future in futures.items():
                        try:
                            value, error, elapsed = future.result()
                        except Exception as exc:  # unpicklable result etc.
                            value, error, elapsed = (
                                None,
                                f"{type(exc).__name__}: {exc}",
                                0.0,
                            )
                        outcomes[index] = SeedOutcome(
                            seeds[index], value, error, elapsed_s=elapsed
                        )
            if self.use_cache:
                fresh = []
                for index in pending:
                    outcome = outcomes[index]
                    if not outcome.ok:
                        continue
                    encoding, payload = _encode_value(outcome.value)
                    fresh.append(
                        {
                            "key": keys[index],
                            "seed": _jsonable_seed(outcome.seed),
                            "encoding": encoding,
                            "payload": payload,
                        }
                    )
                self.cache.append(name, fresh)

        result = SweepResult(
            name=name,
            outcomes=outcomes,  # type: ignore[arg-type]
            elapsed_s=time.perf_counter() - started,
            workers=workers,
        )
        self.stats.record(result)
        f = fleet.ACTIVE
        if f.enabled:
            f.inc("fleet.sweep.sweeps")
            f.inc("fleet.sweep.seeds", len(seeds))
            f.inc("fleet.sweep.cache_hits", result.cache_hits)
            for outcome in result.outcomes:
                if not outcome.cached:
                    f.observe(
                        "fleet.sweep.task_duration_ns",
                        outcome.elapsed_s * 1e9,
                    )
                if outcome.error is not None:
                    f.inc("fleet.sweep.errors")
        return result

    def map(
        self,
        experiment: Callable[[Any], Any],
        seeds: Iterable[Any],
        *,
        name: str,
        params: dict | None = None,
    ) -> list[Any]:
        """Shorthand: :meth:`run` then :meth:`SweepResult.values`."""
        return self.run(experiment, seeds, name=name, params=params).values()

    def run_forked(
        self,
        engine,
        items: Iterable[Any],
        job: Callable[[Any], tuple[str, Any, Callable[[Any], Any]]],
        *,
        name: str,
    ) -> SweepResult:
        """Run *items* through a :class:`repro.snapshot.SnapshotEngine`.

        *job(item)* returns ``(context, decisions, run)`` for
        :meth:`~repro.snapshot.SnapshotEngine.execute`.  Unlike
        :meth:`run`, the executions share one copy-on-write process
        tree, so they run sequentially in item order and bypass the
        result cache — the engine's shared-prefix forks replace both
        parallelism and caching as the speed lever.  Outcomes land in
        :attr:`stats` like any other sweep.
        """
        from repro.snapshot.engine import RemoteRunError

        items = list(items)
        started = time.perf_counter()
        outcomes: list[SeedOutcome] = []
        for item in items:
            context, decisions, run = job(item)
            item_started = time.perf_counter()
            try:
                value = engine.execute(context, decisions, run)
                error = None
            except RemoteRunError as exc:
                value, error = None, str(exc)
            except Exception:
                value, error = None, traceback.format_exc()
            outcomes.append(
                SeedOutcome(
                    item,
                    value,
                    error,
                    elapsed_s=time.perf_counter() - item_started,
                )
            )
        result = SweepResult(
            name=name,
            outcomes=outcomes,
            elapsed_s=time.perf_counter() - started,
            workers=1,
        )
        self.stats.record(result)
        return result

    def run_spec(self, spec) -> SweepResult:
        """Sweep a :class:`repro.harness.ScenarioSpec` over its seeds.

        The spec's full JSON form is the cache parameter set, so any
        change to the scenario, network, STP bounds or fault plan is a
        distinct cache entry.
        """
        from repro.harness.config import run_scenario_spec

        experiment = partial(run_scenario_spec, spec=spec)
        return self.run(
            experiment,
            spec.seeds,
            name=spec.sweep_name(),
            params={"spec": spec.to_dict()},
        )


def merge_metric_snapshots(snapshots: Iterable[dict]) -> dict:
    """Merge per-seed observability metric snapshots into one aggregate.

    Sweep workers that run under :func:`repro.obs.capture` (for example
    :func:`repro.obs.drivers.run_brake_with_obs`) return a
    ``metrics`` snapshot per seed.  This merges N of them: counters and
    gauge peaks become cross-seed distributions (p50/p95/max), and
    fixed-bucket histograms merge bucket-by-bucket with re-estimated
    quantiles.  Accepts either raw snapshots or full per-seed result
    dicts carrying a ``"metrics"`` key.
    """
    from repro.obs.metrics import aggregate_snapshots

    unwrapped = [
        snapshot.get("metrics", snapshot) if isinstance(snapshot, dict) else snapshot
        for snapshot in snapshots
    ]
    return aggregate_snapshots(unwrapped)
