"""One driver per experiment of the reproduction index.

Each function runs its experiment and returns a result object whose
``render()`` produces the text form of the paper artifact.  Benchmarks
under ``benchmarks/`` call these and assert the expected *shapes*.

Every sweep-shaped driver accepts an optional ``sweep``
(:class:`repro.harness.sweep.SweepRunner`): pass one to control worker
count and caching and to collect a throughput summary; omit it and the
driver builds a default runner (``REPRO_WORKERS`` / all cores, cache
on).  Per-seed work is dispatched through module-level functions so it
pickles across the process-pool boundary; results merge in seed order,
so output is bit-identical to a sequential run.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import asdict, dataclass, replace
from functools import partial

from repro.analysis.report import ascii_bar_chart, histogram_table, render_table
from repro.analysis.stats import Summary, summarize
from repro.apps import counter
from repro.apps.brake import (
    BrakeScenario,
    run_det_brake_assistant,
    run_nondet_brake_assistant,
)
from repro.apps.brake.instrumentation import ERROR_TYPES, BrakeRunResult
from repro.apps.brake.logic import (
    decide_brake,
    detect_vehicles,
    oracle_commands,
    preprocess,
)
from repro.apps.brake.vision import SceneGenerator
from repro.ara import MethodCallProcessingMode
from repro.harness.config import ScenarioSpec, run_scenario_spec
from repro.harness.sweep import SweepRunner
from repro.let import LetChannel, LetExecutor, LetTask
from repro.sim import World
from repro.sim.platform import MINNOWBOARD
from repro.time.duration import MS


# ---------------------------------------------------------------------------
# FIG1 — the client/server histogram.
# ---------------------------------------------------------------------------


@dataclass
class Figure1Result:
    """Outcome histograms of the stock and DEAR counter apps."""

    nondet_counts: Counter
    det_counts: Counter

    def probabilities(self) -> dict[int, float]:
        """Outcome probabilities of the stock app."""
        total = sum(self.nondet_counts.values())
        return {k: v / total for k, v in sorted(self.nondet_counts.items())}

    def render(self) -> str:
        """Figure 1's histogram, plus the DEAR contrast."""
        parts = [
            histogram_table(
                self.nondet_counts,
                "Figure 1 - printed value, stock AP (probability):",
            ),
            histogram_table(
                self.det_counts,
                "Same client under DEAR (probability):",
            ),
        ]
        return "\n\n".join(parts)


def figure1(
    nondet_seeds: int = 300,
    det_seeds: int = 10,
    sweep: SweepRunner | None = None,
) -> Figure1Result:
    """Reproduce Figure 1: run the counter app across seeds."""
    sweep = sweep or SweepRunner()
    nondet_runs = sweep.map(
        counter.run_nondet, range(nondet_seeds), name="fig1-nondet"
    )
    det_runs = sweep.map(counter.run_det, range(det_seeds), name="fig1-det")
    nondet = Counter(run.printed_value for run in nondet_runs)
    det = Counter(run.printed_value for run in det_runs)
    return Figure1Result(nondet, det)


# ---------------------------------------------------------------------------
# FIG3 — the tagged message sequence through the transactors.
# ---------------------------------------------------------------------------


@dataclass
class Figure3Result:
    """Observed tags along one DEAR method call (Figure 3's sequence)."""

    tc_ns: int
    deadline_c_ns: int
    deadline_s_ns: int
    release_ns: int  # L + E
    server_tag_ns: int
    reply_tag_ns: int

    def expected_server_tag_ns(self) -> int:
        """``tc + Dc + L + E`` (steps 1-11)."""
        return self.tc_ns + self.deadline_c_ns + self.release_ns

    def expected_reply_tag_ns(self) -> int:
        """``ts + Ds + L + E`` with ``ts`` = server tag (steps 12-22)."""
        return self.server_tag_ns + self.deadline_s_ns + self.release_ns

    def matches_paper_chain(self) -> bool:
        """Whether both hops obey the safe-to-process arithmetic."""
        return (
            self.server_tag_ns == self.expected_server_tag_ns()
            and self.reply_tag_ns == self.expected_reply_tag_ns()
        )

    def render(self) -> str:
        rows = [
            ["(1)  client request event", "tc", f"{self.tc_ns / 1e6:.3f} ms"],
            ["(2-6)  message tag", "tc + Dc",
             f"{(self.tc_ns + self.deadline_c_ns) / 1e6:.3f} ms"],
            ["(7-11) server logic tag", "tc + Dc + L + E",
             f"{self.server_tag_ns / 1e6:.3f} ms"],
            ["(12-17) response tag", "ts + Ds",
             f"{(self.server_tag_ns + self.deadline_s_ns) / 1e6:.3f} ms"],
            ["(18-22) client result tag", "ts + Ds + L + E",
             f"{self.reply_tag_ns / 1e6:.3f} ms"],
        ]
        return render_table(
            ["Figure 3 step", "formula", "observed tag"],
            rows,
            title="Figure 3 - tagged method call through DEAR transactors:",
        )


def figure3_sequence(seed: int = 0) -> Figure3Result:
    """Run one DEAR method call and extract the tag chain of Figure 3."""
    from repro.ara import AraProcess, Method, ServiceInterface
    from repro.dear import (
        ClientMethodTransactor,
        MethodCall,
        MethodReturn,
        ServerMethodTransactor,
        StpConfig,
        TransactorConfig,
    )
    from repro.network import NetworkInterface, Switch
    from repro.reactors import Environment, Reactor
    from repro.someip import SdDaemon
    from repro.someip.serialization import INT32
    from repro.time.duration import SEC

    interface = ServiceInterface(
        "Seq", 0x3000,
        methods=[Method("step", 1, arguments=[("x", INT32)],
                        returns=[("x", INT32)])],
    )
    deadline_c, deadline_s, latency_bound = 4 * MS, 6 * MS, 10 * MS
    stp = StpConfig(latency_bound_ns=latency_bound, clock_error_ns=0)
    client_config = TransactorConfig(deadline_ns=deadline_c, stp=stp)
    server_config = TransactorConfig(deadline_ns=deadline_s, stp=stp)

    world = World(seed)
    switch = Switch(world.sim, world.rng.stream("net"))
    world.attach_network(switch)
    for host in ("server-ecu", "client-ecu"):
        platform = world.add_platform(host, MINNOWBOARD)
        nic = NetworkInterface(platform, switch)
        SdDaemon(platform, nic)

    observed: dict[str, int] = {}

    server_process = AraProcess(world.platform("server-ecu"), "srv", tag_aware=True)
    server_env = Environment(name="srv", timeout=5 * SEC)
    skeleton = server_process.create_skeleton(interface, 1)
    smt = ServerMethodTransactor(
        "smt", server_env, server_process, skeleton, "step", server_config
    )

    class ServerLogic(Reactor):
        def __init__(self, name, owner):
            super().__init__(name, owner)
            self.inp = self.input("inp")
            self.out = self.output("out")

            def serve(ctx):
                call: MethodCall = ctx.get(self.inp)
                observed["server_tag"] = (
                    ctx.tag.time - self.environment.scheduler.start_time
                )
                ctx.set(self.out, MethodReturn(call.call_id, call.arguments))

            self.reaction("serve", triggers=[self.inp], effects=[self.out],
                          body=serve)

    logic = ServerLogic("logic", server_env)
    server_env.connect(smt.request_out, logic.inp)
    server_env.connect(logic.out, smt.response_in)
    skeleton.offer()
    server_env.start(world.platform("server-ecu"))

    client_process = AraProcess(world.platform("client-ecu"), "cli", tag_aware=True)
    client_env = Environment(name="cli", timeout=5 * SEC)

    class ClientLogic(Reactor):
        def __init__(self, name, owner):
            super().__init__(name, owner)
            self.req = self.output("req")
            self.res = self.input("res")
            kick = self.timer("kick", offset=10 * MS)

            def send(ctx):
                observed["tc"] = (
                    ctx.tag.time - self.environment.scheduler.start_time
                )
                observed["client_start"] = self.environment.scheduler.start_time
                ctx.set(self.req, 7)

            def receive(ctx):
                observed["reply_tag"] = (
                    ctx.tag.time - self.environment.scheduler.start_time
                )
                ctx.request_stop()

            self.reaction("send", triggers=[kick], effects=[self.req], body=send)
            self.reaction("recv", triggers=[self.res], body=receive)

    client_logic = ClientLogic("logic", client_env)

    def setup():
        proxy = yield from client_process.find_service(interface, 1)
        cmt = ClientMethodTransactor(
            "cmt", client_env, client_process, proxy, "step", client_config
        )
        client_env.connect(client_logic.req, cmt.request)
        client_env.connect(cmt.response, client_logic.res)
        client_env.start(world.platform("client-ecu"))

    client_process.spawn("setup", setup())
    world.run_for(10 * SEC)

    # Tags are absolute local times; both platforms have perfect clocks,
    # so expressing everything relative to the *client's* start keeps the
    # arithmetic in one frame of reference.
    client_start = observed["client_start"]
    tc_abs = observed["tc"] + client_start
    server_env_start = server_env.scheduler.start_time
    server_tag_abs = observed["server_tag"] + server_env_start
    reply_tag_abs = observed["reply_tag"] + client_start
    return Figure3Result(
        tc_ns=tc_abs,
        deadline_c_ns=deadline_c,
        deadline_s_ns=deadline_s,
        release_ns=stp.release_delay_ns,
        server_tag_ns=server_tag_abs,
        reply_tag_ns=reply_tag_abs,
    )


# ---------------------------------------------------------------------------
# FIG5 — error prevalence of the stock brake assistant.
# ---------------------------------------------------------------------------


@dataclass
class Figure5Result:
    """Per-run error breakdowns, sorted by total prevalence."""

    runs: list[BrakeRunResult]
    n_frames: int

    def sorted_runs(self) -> list[BrakeRunResult]:
        """Runs ordered by error rate (the paper sorts for visibility)."""
        return sorted(self.runs, key=lambda run: run.prevalence)

    def rates(self) -> list[float]:
        """Sorted total error rates."""
        return [run.prevalence for run in self.sorted_runs()]

    def mean_rate(self) -> float:
        """Mean error prevalence across runs."""
        return sum(run.prevalence for run in self.runs) / len(self.runs)

    def dominant_types(self) -> Counter:
        """How often each error type dominates an error-bearing run."""
        dominant = Counter()
        for run in self.runs:
            if run.errors.total() == 0:
                continue
            by_type = run.errors.as_dict()
            dominant[max(by_type, key=by_type.get)] += 1
        return dominant

    def render(self) -> str:
        """Figure 5 as a sorted stacked bar chart."""
        rows = []
        for index, run in enumerate(self.sorted_runs()):
            values = {
                name: 100.0 * count / self.n_frames
                for name, count in run.errors.as_dict().items()
            }
            rows.append((f"run {index:02d}", values))
        chart = ascii_bar_chart(
            rows,
            categories=list(ERROR_TYPES),
            title=(
                "Figure 5 - error prevalence, stock brake assistant "
                f"({len(self.runs)} runs x {self.n_frames} frames):"
            ),
        )
        footer = (
            f"\n  min {min(self.rates()) * 100:.3f}%   "
            f"mean {self.mean_rate() * 100:.2f}%   "
            f"max {max(self.rates()) * 100:.2f}%"
            "\n  (paper: min 0.018%, mean 5.60%, max 22.25%)"
        )
        return chart + footer


def figure5(
    n_runs: int = 20,
    n_frames: int = 2_000,
    sweep: SweepRunner | None = None,
    spec: ScenarioSpec | None = None,
) -> Figure5Result:
    """Reproduce Figure 5: 20 stock runs, counting the four error types.

    With *spec*, the spec's seeds, scenario, network and fault plan
    define the sweep (``n_runs``/``n_frames`` are ignored) and the runs
    go through :meth:`SweepRunner.run_spec`.
    """
    sweep = sweep or SweepRunner()
    if spec is not None:
        spec = replace(spec, variant="nondet")
        runs = sweep.run_spec(spec).values()
        return Figure5Result(runs, spec.effective_scenario().n_frames)
    scenario = BrakeScenario(n_frames=n_frames)
    runs = sweep.map(
        partial(run_nondet_brake_assistant, scenario=scenario),
        range(n_runs),
        name="fig5",
        params=asdict(scenario),
    )
    return Figure5Result(runs, n_frames)


# ---------------------------------------------------------------------------
# DET — the deterministic brake assistant case study.
# ---------------------------------------------------------------------------


@dataclass
class DetCaseStudyResult:
    """Measurements backing Section IV.B's claims."""

    runs: list[BrakeRunResult]
    commands_identical: bool
    traces_identical: bool
    oracle_perfect: bool
    latency: Summary

    def total_errors(self) -> int:
        """Errors across every run (must be 0)."""
        return sum(run.errors.total() for run in self.runs)

    def total_violations(self) -> int:
        """Deadline misses + STP violations across runs (must be 0)."""
        return sum(run.deadline_misses + run.stp_violations for run in self.runs)

    def render(self) -> str:
        rows = [
            ["total errors (all seeds)", str(self.total_errors())],
            ["deadline misses + STP violations", str(self.total_violations())],
            ["brake commands identical across seeds", str(self.commands_identical)],
            ["logical traces identical (det. camera)", str(self.traces_identical)],
            ["output matches ideal-pipeline oracle", str(self.oracle_perfect)],
            ["end-to-end latency mean", f"{self.latency.mean / 1e6:.2f} ms"],
            ["end-to-end latency max", f"{self.latency.maximum / 1e6:.2f} ms"],
        ]
        return render_table(
            ["property", "value"], rows,
            title="Section IV.B - deterministic brake assistant (DEAR):",
        )


def det_case_study(
    n_seeds: int = 5,
    n_frames: int = 500,
    sweep: SweepRunner | None = None,
    spec: ScenarioSpec | None = None,
) -> DetCaseStudyResult:
    """Reproduce Section IV.B: zero errors, determinism, bounded latency.

    With *spec*, the spec's seeds, scenario, network and fault plan
    define the sweep (``n_seeds``/``n_frames`` are ignored).
    """
    sweep = sweep or SweepRunner()
    if spec is not None:
        spec = replace(spec, variant="det")
        scenario = spec.effective_scenario()
        n_frames = scenario.n_frames
        runs = sweep.run_spec(spec).values()
    else:
        scenario = BrakeScenario(n_frames=n_frames)
        runs = sweep.map(
            partial(run_det_brake_assistant, scenario=scenario),
            range(n_seeds),
            name="det",
            params=asdict(scenario),
        )
    command_sets = {tuple(sorted(run.commands.items())) for run in runs}
    det_scenario = replace(
        scenario, n_frames=min(n_frames, 200), deterministic_camera=True
    )
    trace_runs = sweep.map(
        partial(run_det_brake_assistant, scenario=det_scenario),
        range(3),
        name="det-trace",
        params=asdict(det_scenario),
    )
    fingerprints = {
        tuple(sorted(run.trace_fingerprints.items())) for run in trace_runs
    }
    generator = SceneGenerator(scenario.period_ns, scenario.variant)
    oracle = oracle_commands(generator, n_frames)
    latencies = [
        latency for run in runs for latency in run.latencies_ns.values()
    ]
    return DetCaseStudyResult(
        runs=runs,
        commands_identical=len(command_sets) == 1,
        traces_identical=len(fingerprints) == 1,
        oracle_perfect=all(
            run.compare_with_oracle(oracle).is_perfect for run in runs
        ),
        latency=summarize(latencies),
    )


# ---------------------------------------------------------------------------
# TRADEOFF — deadlines vs. observable errors vs. latency.
# ---------------------------------------------------------------------------


@dataclass
class TradeoffPoint:
    """One deadline setting of the sweep."""

    deadline_ns: int
    deadline_misses: int
    frames_lost: int
    latency_mean_ns: float
    latency_max_ns: float


@dataclass
class TradeoffResult:
    """The deadline sweep of Section IV.B's discussion."""

    points: list[TradeoffPoint]
    n_frames: int

    def render(self) -> str:
        rows = [
            [
                f"{point.deadline_ns / 1e6:.0f} ms",
                str(point.deadline_misses),
                str(point.frames_lost),
                f"{point.latency_mean_ns / 1e6:.1f} ms",
                f"{point.latency_max_ns / 1e6:.1f} ms",
            ]
            for point in self.points
        ]
        return render_table(
            ["stage deadline", "deadline misses", "frames lost",
             "e2e latency mean", "e2e latency max"],
            rows,
            title=(
                "Deadline vs. error-rate/latency trade-off "
                "(Preprocessing & Computer Vision deadline swept):"
            ),
        )


def _tradeoff_point(
    deadline_ns: int,
    n_frames: int,
    seed: int,
    base: BrakeScenario | None = None,
) -> TradeoffPoint:
    """One deadline setting of the trade-off sweep (runs in a worker)."""
    scenario = replace(
        base or BrakeScenario(),
        n_frames=n_frames,
        preprocessing_deadline_ns=deadline_ns,
        computer_vision_deadline_ns=deadline_ns,
    )
    run = run_det_brake_assistant(seed, scenario)
    latencies = list(run.latencies_ns.values())
    return TradeoffPoint(
        deadline_ns=deadline_ns,
        deadline_misses=run.deadline_misses,
        frames_lost=n_frames - len(run.commands),
        latency_mean_ns=(sum(latencies) / len(latencies)) if latencies else 0,
        latency_max_ns=max(latencies) if latencies else 0,
    )


def tradeoff(
    deadlines_ns: list[int] | None = None,
    n_frames: int = 300,
    seed: int = 0,
    sweep: SweepRunner | None = None,
    spec: ScenarioSpec | None = None,
) -> TradeoffResult:
    """Sweep the heavy stages' deadlines below and above their WCET.

    With *spec*, its scenario is the base every deadline point is
    derived from and its first seed drives the runs.
    """
    if deadlines_ns is None:
        deadlines_ns = [10 * MS, 15 * MS, 18 * MS, 22 * MS, 25 * MS, 35 * MS]
    sweep = sweep or SweepRunner()
    base = None
    if spec is not None:
        base = spec.effective_scenario()
        n_frames = base.n_frames
        seed = spec.seeds[0]
    points = sweep.map(
        partial(_tradeoff_point, n_frames=n_frames, seed=seed, base=base),
        deadlines_ns,
        name="tradeoff",
        params={
            "n_frames": n_frames,
            "seed": seed,
            "base": asdict(base) if base else None,
        },
    )
    return TradeoffResult(points, n_frames)


# ---------------------------------------------------------------------------
# ABLATE-SRC — the three sources of nondeterminism.
# ---------------------------------------------------------------------------


@dataclass
class AblationResult:
    """Outcome histograms of the counter app per source configuration."""

    rows: list[tuple[str, Counter]]

    def render(self) -> str:
        table_rows = []
        for label, counts in self.rows:
            outcomes = ", ".join(
                f"{value}:{count}" for value, count in sorted(counts.items())
            )
            deterministic = "yes" if len(counts) == 1 else "NO"
            table_rows.append([label, outcomes, deterministic])
        return render_table(
            ["configuration", "printed values (value:count)", "deterministic"],
            table_rows,
            title="Section II.B - sources of nondeterminism (counter app):",
        )


def ablation_sources(
    n_seeds: int = 25, sweep: SweepRunner | None = None
) -> AblationResult:
    """Toggle each source of nondeterminism individually."""
    sweep = sweep or SweepRunner()
    single = MethodCallProcessingMode.EVENT_SINGLE_THREAD
    configurations = [
        ("source 1 on: thread-per-invocation", dict()),
        ("sources off: serialized + FIFO", dict(processing_mode=single)),
        (
            "source 3 on: unordered transport",
            dict(processing_mode=single, in_order=False),
        ),
        (
            "source 2 on: second client",
            dict(processing_mode=single, two_clients=True),
        ),
    ]
    rows = []
    for label, kwargs in configurations:
        runs = sweep.map(
            partial(counter.run_variant, **kwargs),
            range(n_seeds),
            name="ablation",
            params={"config": label},
        )
        rows.append((label, Counter(run.printed_value for run in runs)))
    return AblationResult(rows)


# ---------------------------------------------------------------------------
# OVERHEAD — the price of determinism.
# ---------------------------------------------------------------------------


@dataclass
class OverheadResult:
    """Latency and processing comparison between the variants."""

    stock_latency: Summary
    dear_latency: Summary
    stock_frames_out: int
    dear_frames_out: int
    n_frames: int

    def render(self) -> str:
        rows = [
            [
                "stock AP",
                f"{self.stock_latency.mean / 1e6:.1f}",
                f"{self.stock_latency.maximum / 1e6:.1f}",
                f"{self.stock_frames_out}/{self.n_frames}",
            ],
            [
                "DEAR",
                f"{self.dear_latency.mean / 1e6:.1f}",
                f"{self.dear_latency.maximum / 1e6:.1f}",
                f"{self.dear_frames_out}/{self.n_frames}",
            ],
        ]
        return render_table(
            ["variant", "e2e latency mean [ms]", "e2e latency max [ms]",
             "frames answered"],
            rows,
            title="Cost of determinism - latency vs. completeness:",
        )


def _overhead_variant(variant: str, n_frames: int, seed: int) -> BrakeRunResult:
    """One variant of the overhead comparison (runs in a worker)."""
    scenario = BrakeScenario(n_frames=n_frames)
    runner = (
        run_nondet_brake_assistant if variant == "stock"
        else run_det_brake_assistant
    )
    return runner(seed, scenario)


def overhead(
    n_frames: int = 400,
    seed: int = 0,
    sweep: SweepRunner | None = None,
    spec: ScenarioSpec | None = None,
) -> OverheadResult:
    """Compare end-to-end latency and completeness of the two variants.

    With *spec*, both variants run the spec's scenario/network/faults
    on its first seed through :func:`run_scenario_spec`.
    """
    sweep = sweep or SweepRunner()
    if spec is not None:
        seed = spec.seeds[0]
        n_frames = spec.effective_scenario().n_frames
        stock, dear = sweep.map(
            partial(run_scenario_spec, spec=replace(spec, variant="nondet")),
            [seed],
            name="overhead-stock",
            params={"spec": spec.to_dict()},
        ) + sweep.map(
            partial(run_scenario_spec, spec=replace(spec, variant="det")),
            [seed],
            name="overhead-dear",
            params={"spec": spec.to_dict()},
        )
    else:
        stock, dear = sweep.map(
            partial(_overhead_variant, n_frames=n_frames, seed=seed),
            ["stock", "dear"],
            name="overhead",
            params={"n_frames": n_frames, "seed": seed},
        )
    return OverheadResult(
        stock_latency=summarize(list(stock.latencies_ns.values())),
        dear_latency=summarize(list(dear.latencies_ns.values())),
        stock_frames_out=len(stock.commands),
        dear_frames_out=len(dear.commands),
        n_frames=n_frames,
    )


# ---------------------------------------------------------------------------
# LET — the logical-execution-time baseline.
# ---------------------------------------------------------------------------


@dataclass
class LetBaselineResult:
    """LET pipeline measurements vs. the DEAR chain."""

    deterministic: bool
    let_latency: Summary
    dear_latency: Summary
    frames_out: int
    n_frames: int

    def render(self) -> str:
        rows = [
            [
                "LET (4 x 50 ms tasks)",
                "yes" if self.deterministic else "NO",
                f"{self.let_latency.mean / 1e6:.1f}",
            ],
            [
                "DEAR (reactors)",
                "yes",
                f"{self.dear_latency.mean / 1e6:.1f}",
            ],
        ]
        return render_table(
            ["baseline", "deterministic", "e2e latency mean [ms]"],
            rows,
            title="Related work - LET vs. reactors on the brake pipeline:",
        )


def _let_run(seed: int, n_frames: int):
    """One LET-pipeline run (runs in a worker); returns (commands, latencies)."""
    period = 50 * MS
    generator = SceneGenerator(period)
    world = World(seed)
    platform = world.add_platform("ecu", MINNOWBOARD)
    executor = LetExecutor(platform)
    camera_ch = LetChannel("camera")
    frame_ch = LetChannel("frame")
    fwd_frame_ch = LetChannel("fwd_frame")
    lane_ch = LetChannel("lane")
    vehicles_ch = LetChannel("vehicles")
    brake_ch = LetChannel("brake", keep_history=True)
    # Deterministic camera: publish frame k exactly at its capture time.
    for seq in range(n_frames):
        world.sim.at(
            (seq + 1) * period,
            lambda seq=seq: camera_ch.publish(world.sim.now, generator.frame(seq)),
        )
    executor.add_task(LetTask(
        "adapter", period,
        body=lambda inputs: {"out": inputs["cam"]},
        reads={"cam": camera_ch}, writes={"out": frame_ch}, wcet_ns=3 * MS,
    ))

    def pre_body(inputs):
        frame = inputs["frame"]
        if frame is None:
            return {}
        return {"frame": frame, "lane": preprocess(frame)}

    executor.add_task(LetTask(
        "preprocessing", period, pre_body,
        reads={"frame": frame_ch},
        writes={"frame": fwd_frame_ch, "lane": lane_ch}, wcet_ns=21 * MS,
    ))

    def cv_body(inputs):
        frame, lane = inputs["frame"], inputs["lane"]
        if frame is None or lane is None:
            return {}
        return {"out": detect_vehicles(frame, lane)}

    executor.add_task(LetTask(
        "cv", period, cv_body,
        reads={"frame": fwd_frame_ch, "lane": lane_ch},
        writes={"out": vehicles_ch}, wcet_ns=21 * MS,
    ))

    def eba_body(inputs):
        vehicles = inputs["vehicles"]
        if vehicles is None:
            return {}
        return {"out": decide_brake(vehicles)}

    executor.add_task(LetTask(
        "eba", period, eba_body,
        reads={"vehicles": vehicles_ch}, writes={"out": brake_ch},
        wcet_ns=3 * MS,
    ))
    executor.start((n_frames + 8) * period)
    world.run_to_completion(check_deadlock=False)
    commands = {}
    latencies = []
    for publish_time, command in brake_ch.history:
        if command.frame_seq not in commands:
            commands[command.frame_seq] = command
            capture = (command.frame_seq + 1) * period
            latencies.append(publish_time - capture)
    return commands, latencies


def let_baseline(
    n_frames: int = 300, n_seeds: int = 3, sweep: SweepRunner | None = None
) -> LetBaselineResult:
    """The brake pipeline as LET tasks, compared against DEAR."""
    sweep = sweep or SweepRunner()
    outcomes = sweep.map(
        partial(_let_run, n_frames=n_frames),
        range(n_seeds),
        name="let",
        params={"n_frames": n_frames},
    )
    command_sets = {tuple(sorted(commands.items())) for commands, _ in outcomes}
    latencies = outcomes[0][1]
    dear = run_det_brake_assistant(0, BrakeScenario(n_frames=min(n_frames, 300)))
    return LetBaselineResult(
        deterministic=len(command_sets) == 1,
        let_latency=summarize(latencies),
        dear_latency=summarize(list(dear.latencies_ns.values())),
        frames_out=len(outcomes[0][0]),
        n_frames=n_frames,
    )
