"""Small helpers for running seeded experiment sweeps."""

from __future__ import annotations

import os
import warnings
from typing import Callable, Sequence, TypeVar

ResultT = TypeVar("ResultT")


def run_seeds(
    experiment: Callable[[int], ResultT], seeds: Sequence[int]
) -> list[ResultT]:
    """Run *experiment* for every seed, in order (deterministic sweep).

    .. deprecated::
        :class:`repro.harness.SweepRunner` is the single sweep engine —
        ``SweepRunner(workers=1, use_cache=False).map(...)`` is the
        equivalent call (and drops the single-worker/no-cache pins to
        gain parallelism and caching).  This shim delegates there and
        will be removed once the remaining callers migrate.
    """
    warnings.warn(
        "run_seeds is deprecated; use repro.harness.SweepRunner "
        "(e.g. SweepRunner().map(experiment, seeds, name=...)) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.harness.sweep import SweepRunner

    runner = SweepRunner(workers=1, use_cache=False)
    name = getattr(experiment, "__name__", None) or "run_seeds"
    return runner.map(experiment, seeds, name=f"run-seeds-{name}")


def env_int(name: str, default: int) -> int:
    """An integer experiment parameter overridable via the environment.

    Lets the benchmarks default to interactive sizes while supporting
    paper-scale runs, e.g. ``REPRO_BRAKE_FRAMES=100000 pytest benchmarks``.
    """
    value = os.environ.get(name)
    if value is None:
        return default
    try:
        return int(value)
    except ValueError:
        raise ValueError(
            f"environment variable {name} must be an integer, got {value!r}"
        ) from None
