"""Small helpers for running seeded experiment sweeps.

Sequential sweeps go through :class:`repro.harness.SweepRunner`
(``SweepRunner(workers=1).map(...)``); the old ``run_seeds`` helper is
gone.
"""

from __future__ import annotations

import os


def env_int(name: str, default: int) -> int:
    """An integer experiment parameter overridable via the environment.

    Lets the benchmarks default to interactive sizes while supporting
    paper-scale runs, e.g. ``REPRO_BRAKE_FRAMES=100000 pytest benchmarks``.
    """
    value = os.environ.get(name)
    if value is None:
        return default
    try:
        return int(value)
    except ValueError:
        raise ValueError(
            f"environment variable {name} must be an integer, got {value!r}"
        ) from None
