"""Small helpers for running seeded experiment sweeps."""

from __future__ import annotations

import os
from typing import Callable, Sequence, TypeVar

ResultT = TypeVar("ResultT")


def run_seeds(
    experiment: Callable[[int], ResultT], seeds: Sequence[int]
) -> list[ResultT]:
    """Run *experiment* for every seed, in order (deterministic sweep)."""
    return [experiment(seed) for seed in seeds]


def env_int(name: str, default: int) -> int:
    """An integer experiment parameter overridable via the environment.

    Lets the benchmarks default to interactive sizes while supporting
    paper-scale runs, e.g. ``REPRO_BRAKE_FRAMES=100000 pytest benchmarks``.
    """
    value = os.environ.get(name)
    if value is None:
        return default
    try:
        return int(value)
    except ValueError:
        raise ValueError(
            f"environment variable {name} must be an integer, got {value!r}"
        ) from None
