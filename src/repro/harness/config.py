"""One frozen spec for one experiment: :class:`ScenarioSpec`.

Historically every driver took its own loose kwargs — a seed here, an
``n_frames`` there, a hand-built :class:`SwitchConfig` somewhere else.
``ScenarioSpec`` bundles *everything* that parameterizes an experiment
— the application (any entry of :mod:`repro.apps.registry`), variant,
seeds, workload scenario, a nested :class:`NetworkSpec`, an optional
:class:`~repro.network.topology.TopologySpec` fabric, STP bounds,
observability, and a :class:`~repro.faults.FaultPlan` — into a single
frozen, JSON-round-trippable value consumed uniformly by
:class:`SweepRunner`, the figure/extension drivers and every CLI
subcommand.

Serialization speaks two formats: ``scenario-spec/v2`` carries the
``app``/``network``/``topology`` fields; any spec expressible in the
legacy flattened shape (the brake app on the trivial topology) still
writes byte-identical ``scenario-spec/v1`` documents, so committed
specs, sweep-cache keys and service submissions from earlier versions
keep resolving to the same experiments.  Both formats load.

The module-level :func:`run_scenario_spec` is the picklable worker the
sweep engine fans out: ``SweepRunner().run_spec(spec)`` is the single
execution path for seeded experiments.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any

from repro.dear.stp import StpConfig
from repro.faults.plan import FaultPlan
from repro.network.latency import (
    ConstantLatency,
    LatencyModel,
    latency_model_from_dict,
    latency_model_to_dict,
)
from repro.network.switch import SwitchConfig
from repro.network.topology import TopologySpec
from repro.time.duration import US

__all__ = [
    "NetworkSpec",
    "ScenarioSpec",
    "latency_model_to_dict",
    "latency_model_from_dict",
    "run_scenario_spec",
]

#: Sentinel distinguishing "not passed" from any real value in the
#: deprecated flattened-knob constructor arguments.
_UNSET: Any = object()

#: The flattened knobs accepted (with a warning) for compatibility.
_LEGACY_KNOBS = (
    "latency",
    "loopback_latency",
    "in_order",
    "drop_probability",
    "ns_per_byte",
)

_WARNED_KNOBS: set[str] = set()


def _warn_legacy_knobs(names: list[str]) -> None:
    fresh = [name for name in names if name not in _WARNED_KNOBS]
    if not fresh:
        return
    _WARNED_KNOBS.update(fresh)
    warnings.warn(
        f"passing {', '.join(fresh)} to ScenarioSpec directly is "
        f"deprecated; nest the knob(s) in network=NetworkSpec(...)",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class NetworkSpec:
    """The network half of a spec, nested (``scenario-spec/v2``).

    Carries exactly the :class:`SwitchConfig` knobs a spec may
    override; ``None`` latency models mean "scenario-derived default"
    (constant under ``deterministic_camera``, stock otherwise).
    """

    latency: LatencyModel | None = None
    loopback_latency: LatencyModel | None = None
    in_order: bool = True
    drop_probability: float = 0.0
    ns_per_byte: int = 8

    def to_dict(self) -> dict:
        return {
            "latency": (
                None if self.latency is None else latency_model_to_dict(self.latency)
            ),
            "loopback_latency": (
                None
                if self.loopback_latency is None
                else latency_model_to_dict(self.loopback_latency)
            ),
            "in_order": self.in_order,
            "drop_probability": self.drop_probability,
            "ns_per_byte": self.ns_per_byte,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NetworkSpec":
        return cls(
            latency=(
                None
                if data.get("latency") is None
                else latency_model_from_dict(data["latency"])
            ),
            loopback_latency=(
                None
                if data.get("loopback_latency") is None
                else latency_model_from_dict(data["loopback_latency"])
            ),
            in_order=data.get("in_order", True),
            drop_probability=data.get("drop_probability", 0.0),
            ns_per_byte=data.get("ns_per_byte", 8),
        )


def _app_definition(name: str):
    from repro.apps import registry

    return registry.get(name)


@dataclass(frozen=True, init=False)
class ScenarioSpec:
    """Everything one experiment needs, as one frozen value.

    Attributes:
        app: which registered application runs (``repro.apps.names()``).
        variant: which of the app's runners — classically ``"det"``
            (DEAR) or ``"nondet"`` (stock).
        seeds: the seeds to sweep, in order.
        scenario: the app's workload/timing configuration.
        network: the nested :class:`NetworkSpec` (switch knobs).
        topology: optional :class:`TopologySpec` fabric override;
            ``None`` keeps the app's native fabric (the brake app's is
            the trivial single-switch world).
        stp: overrides the scenario's ``L``/``E`` bounds when set.
        observe: run each seed under :func:`repro.obs.capture` and
            attach the metrics snapshot to the result's
            ``fault_summary``-style digest.
        faults: the :class:`FaultPlan` to install; ``None`` defers to
            the app's default plan (fault-free for most apps, the crash
            window for the failover scenario).
        label: free-form experiment label (cache/report naming).

    The five flattened network knobs (``latency``, ``loopback_latency``,
    ``in_order``, ``drop_probability``, ``ns_per_byte``) are still
    accepted as constructor arguments for compatibility; they warn once
    per process and fold into :attr:`network`.
    """

    app: str
    variant: str
    seeds: tuple[int, ...]
    scenario: Any
    network: NetworkSpec
    topology: TopologySpec | None
    stp: StpConfig | None
    observe: bool
    faults: FaultPlan | None
    label: str

    def __init__(
        self,
        variant: str = "det",
        seeds: tuple[int, ...] = (0,),
        scenario: Any = None,
        latency: Any = _UNSET,
        loopback_latency: Any = _UNSET,
        in_order: Any = _UNSET,
        drop_probability: Any = _UNSET,
        ns_per_byte: Any = _UNSET,
        stp: StpConfig | None = None,
        observe: bool = False,
        faults: FaultPlan | None = None,
        label: str = "",
        *,
        app: str = "brake",
        network: NetworkSpec | None = None,
        topology: TopologySpec | None = None,
    ) -> None:
        legacy = {
            name: value
            for name, value in (
                ("latency", latency),
                ("loopback_latency", loopback_latency),
                ("in_order", in_order),
                ("drop_probability", drop_probability),
                ("ns_per_byte", ns_per_byte),
            )
            if value is not _UNSET
        }
        if legacy:
            _warn_legacy_knobs(sorted(legacy))
            if network is not None:
                raise TypeError(
                    "pass network=NetworkSpec(...) or the flattened "
                    "knobs, not both"
                )
            network = NetworkSpec(**legacy)
        definition = _app_definition(app)
        if variant not in definition.variants():
            raise ValueError(
                f"variant must be one of {list(definition.variants())} "
                f"for app {app!r}, got {variant!r}"
            )
        if scenario is None:
            scenario = definition.default_scenario()
        seeds = tuple(seeds)
        if not seeds:
            raise ValueError("a spec needs at least one seed")
        object.__setattr__(self, "app", app)
        object.__setattr__(self, "variant", variant)
        object.__setattr__(self, "seeds", seeds)
        object.__setattr__(self, "scenario", scenario)
        object.__setattr__(self, "network", network or NetworkSpec())
        object.__setattr__(self, "topology", topology)
        object.__setattr__(self, "stp", stp)
        object.__setattr__(self, "observe", observe)
        object.__setattr__(self, "faults", faults)
        object.__setattr__(self, "label", label)

    # -- flattened-knob read access (kept: cheap, unambiguous) --------------

    @property
    def latency(self) -> LatencyModel | None:
        return self.network.latency

    @property
    def loopback_latency(self) -> LatencyModel | None:
        return self.network.loopback_latency

    @property
    def in_order(self) -> bool:
        return self.network.in_order

    @property
    def drop_probability(self) -> float:
        return self.network.drop_probability

    @property
    def ns_per_byte(self) -> int:
        return self.network.ns_per_byte

    # -- derived configuration ---------------------------------------------

    def definition(self):
        """The spec's :class:`~repro.apps.AppDefinition`."""
        return _app_definition(self.app)

    def effective_scenario(self) -> Any:
        """The scenario with the spec's STP bounds applied."""
        if self.stp is None:
            return self.scenario
        return replace(
            self.scenario,
            latency_bound_ns=self.stp.latency_bound_ns,
            clock_error_ns=self.stp.clock_error_ns,
        )

    def effective_faults(self) -> FaultPlan | None:
        """The fault plan to install: explicit, else the app default."""
        if self.faults is not None:
            return self.faults
        return self.definition().faults_for(self.effective_scenario())

    def switch_config(self) -> SwitchConfig | None:
        """The network configuration, or ``None`` for the stock default.

        Any :class:`LatencyModel` plugs in here — this replaces the old
        pattern of drivers hand-building :class:`SwitchConfig` objects.
        The "is everything default" test compares against
        :class:`NetworkSpec`'s own defaults instead of repeating them.
        """
        if self.network == NetworkSpec() and self.topology is None:
            return None
        scenario = self.effective_scenario()
        if getattr(scenario, "deterministic_camera", False) or getattr(
            scenario, "deterministic_inputs", False
        ):
            default_latency: LatencyModel = ConstantLatency(300 * US)
            default_loopback: LatencyModel = ConstantLatency(50 * US)
        else:
            stock = SwitchConfig()
            default_latency = stock.latency
            default_loopback = stock.loopback_latency
        return SwitchConfig(
            latency=self.network.latency or default_latency,
            loopback_latency=self.network.loopback_latency or default_loopback,
            in_order=self.network.in_order,
            drop_probability=self.network.drop_probability,
            ns_per_byte=self.network.ns_per_byte,
            topology=self.topology,
        )

    def sweep_name(self) -> str:
        """Cache/report identity of this spec's sweep.

        The brake app keeps its historical ``spec-<variant>`` names (so
        pre-topology caches stay warm); other apps include the app name.
        """
        if self.label:
            return self.label
        if self.app == "brake":
            return f"spec-{self.variant}"
        return f"spec-{self.app}-{self.variant}"

    def with_seeds(self, seeds) -> "ScenarioSpec":
        return replace(self, seeds=tuple(seeds))

    # -- execution ----------------------------------------------------------

    def run_one(self, seed: int, fault_replay=None):
        """Run a single seed of this spec (inline, no sweep engine)."""
        return run_scenario_spec(seed, self, fault_replay=fault_replay)

    # -- serialization ------------------------------------------------------

    def _is_v1_expressible(self) -> bool:
        """Whether the legacy flattened format can carry this spec."""
        return self.app == "brake" and self.topology is None

    def to_dict(self) -> dict:
        """JSON form; v1-expressible specs keep the v1 byte layout.

        The v1 emission path must stay byte-identical for existing
        specs: sweep-cache keys, the result store and the submit
        protocol all hash this dict.
        """
        definition = self.definition()
        common = {
            "variant": self.variant,
            "seeds": list(self.seeds),
            "scenario": definition.dump_scenario(self.scenario),
        }
        tail = {
            "stp": (
                None
                if self.stp is None
                else {
                    "latency_bound_ns": self.stp.latency_bound_ns,
                    "clock_error_ns": self.stp.clock_error_ns,
                }
            ),
            "observe": self.observe,
            "faults": None if self.faults is None else self.faults.to_dict(),
            "label": self.label,
        }
        if self._is_v1_expressible():
            return {
                "format": "scenario-spec/v1",
                **common,
                **self.network.to_dict(),
                **tail,
            }
        return {
            "format": "scenario-spec/v2",
            "app": self.app,
            **common,
            "network": self.network.to_dict(),
            "topology": None if self.topology is None else self.topology.to_dict(),
            **tail,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        fmt = data.get("format")
        if fmt == "scenario-spec/v1":
            app = "brake"
            network = NetworkSpec.from_dict(data)
            topology = None
        elif fmt == "scenario-spec/v2":
            app = data.get("app", "brake")
            network = NetworkSpec.from_dict(data.get("network") or {})
            topology = (
                None
                if data.get("topology") is None
                else TopologySpec.from_dict(data["topology"])
            )
        else:
            raise ValueError(f"not a scenario spec: {fmt!r}")
        definition = _app_definition(app)
        return cls(
            app=app,
            variant=data.get("variant", "det"),
            seeds=tuple(data.get("seeds", (0,))),
            scenario=definition.load_scenario(data.get("scenario", {})),
            network=network,
            topology=topology,
            stp=None if data.get("stp") is None else StpConfig(**data["stp"]),
            observe=data.get("observe", False),
            faults=(
                None
                if data.get("faults") is None
                else FaultPlan.from_dict(data["faults"])
            ),
            label=data.get("label", ""),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "ScenarioSpec":
        return cls.from_json(Path(path).read_text())

    # -- CLI bridge ---------------------------------------------------------

    @classmethod
    def from_args(cls, args, variant: str | None = None) -> "ScenarioSpec":
        """Build a spec from an ``argparse`` namespace.

        ``--spec FILE`` (when present and set) wins outright; otherwise
        the recognised loose flags — ``app``, ``seed``/``seeds``,
        ``frames``, ``drop``, ``plan`` — are folded into a fresh spec.
        Unknown attributes are ignored, so every subcommand can share
        this.
        """
        spec_path = getattr(args, "spec", None)
        if spec_path:
            spec = cls.load(spec_path)
            if variant is not None and spec.variant != variant:
                spec = replace(spec, variant=variant)
            return spec
        app = getattr(args, "app", None) or "brake"
        definition = _app_definition(app)
        seeds: tuple[int, ...]
        n_seeds = getattr(args, "seeds", None)
        if n_seeds is not None:
            seeds = tuple(range(int(n_seeds)))
        else:
            seeds = (int(getattr(args, "seed", 0) or 0),)
        scenario = definition.default_scenario()
        frames = getattr(args, "frames", None)
        if frames is not None:
            scenario = replace(scenario, n_frames=int(frames))
        plan_path = getattr(args, "plan", None)
        faults = FaultPlan.load(plan_path) if plan_path else None
        drop = float(getattr(args, "drop_probability", 0.0) or 0.0)
        return cls(
            app=app,
            variant=variant or "det",
            seeds=seeds,
            scenario=scenario,
            network=NetworkSpec(drop_probability=drop),
            faults=faults,
        )


def run_scenario_spec(
    seed: int,
    spec: ScenarioSpec,
    fault_replay=None,
    fault_universe=None,
    fault_checkpointer=None,
):
    """Picklable sweep worker: one seed of *spec*.

    Dispatches through :mod:`repro.apps.registry` — any registered
    app/variant runs through this single path.  Returns the runner's
    :class:`BrakeRunResult`-shaped value; with ``spec.observe`` the run
    executes under :func:`repro.obs.capture` and the metrics snapshot
    is merged into ``result.fault_summary`` (the per-run digest channel
    that survives pickling).  *fault_universe* and *fault_checkpointer*
    feed the snapshot engine's fault-replay seam (see
    :mod:`repro.snapshot`).
    """
    scenario = spec.effective_scenario()
    switch_config = spec.switch_config()
    experiment = spec.definition().runner(spec.variant)

    def execute():
        return experiment(
            seed,
            scenario,
            switch_config=switch_config,
            fault_plan=spec.effective_faults(),
            fault_replay=fault_replay,
            fault_universe=fault_universe,
            fault_checkpointer=fault_checkpointer,
        )

    if not spec.observe:
        return execute()
    from repro.obs.context import capture

    with capture() as observation:
        result = execute()
    digest = dict(result.fault_summary or {})
    digest["metrics"] = observation.metrics.snapshot()
    return replace(result, fault_summary=digest)
