"""One frozen spec for one experiment: :class:`ScenarioSpec`.

Historically every driver took its own loose kwargs — a seed here, an
``n_frames`` there, a hand-built :class:`SwitchConfig` somewhere else.
``ScenarioSpec`` bundles *everything* that parameterizes a brake-
assistant experiment — variant, seeds, workload scenario, network
topology/latency, STP bounds, observability, and a
:class:`~repro.faults.FaultPlan` — into a single frozen, JSON-round-
trippable value consumed uniformly by :class:`SweepRunner`, the
figure/extension drivers and every CLI subcommand.

The module-level :func:`run_scenario_spec` is the picklable worker the
sweep engine fans out: ``SweepRunner().run_spec(spec)`` is the single
execution path for seeded experiments.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any

from repro.apps.brake.scenario import BrakeScenario, StageTiming
from repro.dear.stp import StpConfig
from repro.faults.plan import FaultPlan
from repro.network.latency import (
    ConstantLatency,
    GammaLatency,
    LatencyModel,
    SpikyLatency,
    UniformLatency,
)
from repro.network.switch import SwitchConfig
from repro.time.duration import US

__all__ = [
    "ScenarioSpec",
    "latency_model_to_dict",
    "latency_model_from_dict",
    "run_scenario_spec",
]

_LATENCY_MODELS: dict[str, type] = {
    cls.__name__: cls
    for cls in (ConstantLatency, UniformLatency, GammaLatency, SpikyLatency)
}


def latency_model_to_dict(model: LatencyModel) -> dict:
    """JSON form of any of the built-in latency models."""
    name = type(model).__name__
    if name not in _LATENCY_MODELS:
        raise ValueError(
            f"cannot serialize latency model {name!r}; "
            f"known: {sorted(_LATENCY_MODELS)}"
        )
    out: dict[str, Any] = {"model": name}
    for f in fields(model):
        value = getattr(model, f.name)
        out[f.name] = (
            latency_model_to_dict(value) if f.name == "base" else value
        )
    return out


def latency_model_from_dict(data: dict) -> LatencyModel:
    """Inverse of :func:`latency_model_to_dict`."""
    kwargs = dict(data)
    name = kwargs.pop("model")
    cls = _LATENCY_MODELS.get(name)
    if cls is None:
        raise ValueError(f"unknown latency model {name!r}")
    if "base" in kwargs:
        kwargs["base"] = latency_model_from_dict(kwargs["base"])
    return cls(**kwargs)


def _scenario_to_dict(scenario: BrakeScenario) -> dict:
    out: dict[str, Any] = {}
    for f in fields(scenario):
        value = getattr(scenario, f.name)
        if isinstance(value, StageTiming):
            value = {"min_ns": value.min_ns, "max_ns": value.max_ns}
        out[f.name] = value
    return out


def _scenario_from_dict(data: dict) -> BrakeScenario:
    kwargs: dict[str, Any] = {}
    for f in fields(BrakeScenario):
        if f.name not in data:
            continue
        value = data[f.name]
        if isinstance(value, dict):
            value = StageTiming(**value)
        kwargs[f.name] = value
    return BrakeScenario(**kwargs)


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything one experiment needs, as one frozen value.

    Attributes:
        variant: which stack runs — ``"det"`` (DEAR) or ``"nondet"``.
        seeds: the seeds to sweep, in order.
        scenario: the workload/timing configuration.
        latency: inter-host latency model override (any
            :class:`LatencyModel`); ``None`` keeps the scenario-derived
            default (constant under ``deterministic_camera``).
        loopback_latency: same-host latency model override.
        in_order / drop_probability / ns_per_byte: remaining
            :class:`SwitchConfig` knobs.
        stp: overrides the scenario's ``L``/``E`` bounds when set.
        observe: run each seed under :func:`repro.obs.capture` and
            attach the metrics snapshot to the result's
            ``fault_summary``-style digest.
        faults: the :class:`FaultPlan` to install (``None`` = fault-free).
        label: free-form experiment label (cache/report naming).
    """

    variant: str = "det"
    seeds: tuple[int, ...] = (0,)
    scenario: BrakeScenario = field(default_factory=BrakeScenario)
    latency: LatencyModel | None = None
    loopback_latency: LatencyModel | None = None
    in_order: bool = True
    drop_probability: float = 0.0
    ns_per_byte: int = 8
    stp: StpConfig | None = None
    observe: bool = False
    faults: FaultPlan | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.variant not in ("det", "nondet"):
            raise ValueError(
                f"variant must be 'det' or 'nondet', got {self.variant!r}"
            )
        object.__setattr__(self, "seeds", tuple(self.seeds))
        if not self.seeds:
            raise ValueError("a spec needs at least one seed")

    # -- derived configuration ---------------------------------------------

    def effective_scenario(self) -> BrakeScenario:
        """The scenario with the spec's STP bounds applied."""
        if self.stp is None:
            return self.scenario
        return replace(
            self.scenario,
            latency_bound_ns=self.stp.latency_bound_ns,
            clock_error_ns=self.stp.clock_error_ns,
        )

    def switch_config(self) -> SwitchConfig | None:
        """The network configuration, or ``None`` for the stock default.

        Any :class:`LatencyModel` plugs in here — this replaces the old
        pattern of drivers hand-building :class:`SwitchConfig` objects.
        """
        if (
            self.latency is None
            and self.loopback_latency is None
            and self.in_order
            and self.drop_probability == 0.0
            and self.ns_per_byte == 8
        ):
            return None
        if self.effective_scenario().deterministic_camera:
            default_latency: LatencyModel = ConstantLatency(300 * US)
            default_loopback: LatencyModel = ConstantLatency(50 * US)
        else:
            stock = SwitchConfig()
            default_latency = stock.latency
            default_loopback = stock.loopback_latency
        return SwitchConfig(
            latency=self.latency or default_latency,
            loopback_latency=self.loopback_latency or default_loopback,
            in_order=self.in_order,
            drop_probability=self.drop_probability,
            ns_per_byte=self.ns_per_byte,
        )

    def sweep_name(self) -> str:
        """Cache/report identity of this spec's sweep."""
        return self.label or f"spec-{self.variant}"

    def with_seeds(self, seeds) -> "ScenarioSpec":
        return replace(self, seeds=tuple(seeds))

    # -- execution ----------------------------------------------------------

    def run_one(self, seed: int, fault_replay=None):
        """Run a single seed of this spec (inline, no sweep engine)."""
        return run_scenario_spec(seed, self, fault_replay=fault_replay)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format": "scenario-spec/v1",
            "variant": self.variant,
            "seeds": list(self.seeds),
            "scenario": _scenario_to_dict(self.scenario),
            "latency": (
                None if self.latency is None else latency_model_to_dict(self.latency)
            ),
            "loopback_latency": (
                None
                if self.loopback_latency is None
                else latency_model_to_dict(self.loopback_latency)
            ),
            "in_order": self.in_order,
            "drop_probability": self.drop_probability,
            "ns_per_byte": self.ns_per_byte,
            "stp": (
                None
                if self.stp is None
                else {
                    "latency_bound_ns": self.stp.latency_bound_ns,
                    "clock_error_ns": self.stp.clock_error_ns,
                }
            ),
            "observe": self.observe,
            "faults": None if self.faults is None else self.faults.to_dict(),
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        if data.get("format") != "scenario-spec/v1":
            raise ValueError(f"not a scenario spec: {data.get('format')!r}")
        return cls(
            variant=data.get("variant", "det"),
            seeds=tuple(data.get("seeds", (0,))),
            scenario=_scenario_from_dict(data.get("scenario", {})),
            latency=(
                None
                if data.get("latency") is None
                else latency_model_from_dict(data["latency"])
            ),
            loopback_latency=(
                None
                if data.get("loopback_latency") is None
                else latency_model_from_dict(data["loopback_latency"])
            ),
            in_order=data.get("in_order", True),
            drop_probability=data.get("drop_probability", 0.0),
            ns_per_byte=data.get("ns_per_byte", 8),
            stp=None if data.get("stp") is None else StpConfig(**data["stp"]),
            observe=data.get("observe", False),
            faults=(
                None
                if data.get("faults") is None
                else FaultPlan.from_dict(data["faults"])
            ),
            label=data.get("label", ""),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "ScenarioSpec":
        return cls.from_json(Path(path).read_text())

    # -- CLI bridge ---------------------------------------------------------

    @classmethod
    def from_args(cls, args, variant: str | None = None) -> "ScenarioSpec":
        """Build a spec from an ``argparse`` namespace.

        ``--spec FILE`` (when present and set) wins outright; otherwise
        the recognised loose flags — ``seed``/``seeds``, ``frames``,
        ``drop``, ``plan`` — are folded into a fresh spec.  Unknown
        attributes are ignored, so every subcommand can share this.
        """
        spec_path = getattr(args, "spec", None)
        if spec_path:
            spec = cls.load(spec_path)
            if variant is not None and spec.variant != variant:
                spec = replace(spec, variant=variant)
            return spec
        seeds: tuple[int, ...]
        n_seeds = getattr(args, "seeds", None)
        if n_seeds is not None:
            seeds = tuple(range(int(n_seeds)))
        else:
            seeds = (int(getattr(args, "seed", 0) or 0),)
        scenario_kwargs: dict[str, Any] = {}
        frames = getattr(args, "frames", None)
        if frames is not None:
            scenario_kwargs["n_frames"] = int(frames)
        scenario = (
            replace(BrakeScenario(), **scenario_kwargs)
            if scenario_kwargs
            else BrakeScenario()
        )
        plan_path = getattr(args, "plan", None)
        faults = FaultPlan.load(plan_path) if plan_path else None
        return cls(
            variant=variant or "det",
            seeds=seeds,
            scenario=scenario,
            drop_probability=float(getattr(args, "drop_probability", 0.0) or 0.0),
            faults=faults,
        )


def run_scenario_spec(
    seed: int,
    spec: ScenarioSpec,
    fault_replay=None,
    fault_universe=None,
    fault_checkpointer=None,
):
    """Picklable sweep worker: one seed of *spec*.

    Returns the variant's :class:`BrakeRunResult`; with ``spec.observe``
    the run executes under :func:`repro.obs.capture` and the metrics
    snapshot is merged into ``result.fault_summary`` (the per-run digest
    channel that survives pickling).  *fault_universe* and
    *fault_checkpointer* feed the snapshot engine's fault-replay seam
    (see :mod:`repro.snapshot`).
    """
    scenario = spec.effective_scenario()
    switch_config = spec.switch_config()
    if spec.variant == "det":
        from repro.apps.brake.det import run_det_brake_assistant as experiment
    else:
        from repro.apps.brake.nondet import run_nondet_brake_assistant as experiment

    def execute():
        return experiment(
            seed,
            scenario,
            switch_config=switch_config,
            fault_plan=spec.faults,
            fault_replay=fault_replay,
            fault_universe=fault_universe,
            fault_checkpointer=fault_checkpointer,
        )

    if not spec.observe:
        return execute()
    from repro.obs.context import capture

    with capture() as observation:
        result = execute()
    digest = dict(result.fault_summary or {})
    digest["metrics"] = observation.metrics.snapshot()
    return replace(result, fault_summary=digest)
