"""Perf-trajectory gate: diff fresh ``BENCH_*.json`` against baselines.

Every benchmark in ``benchmarks/`` emits a machine-readable
``BENCH_<name>.json`` (see :mod:`repro.harness.benchjson`).  Committed
snapshots of those files live in ``benchmarks/baselines/`` and act as
the performance baseline; ``repro bench-diff`` compares a fresh run
against them and classifies every field:

* **timing fields** (wall times, latencies — see
  :func:`is_timing_field`) compare with a *relative tolerance*: CI
  machines are noisy, so only a slowdown beyond ``tolerance`` (e.g.
  ``0.75`` = 75% slower) counts as a regression (``fail``); getting
  *faster* is never an error, just an ``improved`` note;
* **rate fields** (``*_per_s`` throughput — :func:`is_rate_field`)
  are timing fields where *higher* is better; the tolerance applies to
  slowdowns in the rate direction;
* **structural fields** (seed counts, error totals, verdicts) must
  match exactly — a mismatch is a ``warn``, because it usually means
  the benchmark's workload changed and the baseline needs refreshing,
  not that the code got slower;
* **environment fields** (``workers``, ``cache_hits``) describe the
  machine and cache warmth, not the code — they warn on mismatch and
  never fail, even in gated mode;
* benchmarks present on only one side are reported (``missing`` /
  ``new``) so baseline drift is visible.

**Gated mode** (``gate_fields=True``, CLI ``--gate-fields``) curates
which classes of drift may fail a strict CI lane: structural
mismatches, rate regressions and missing/new benchmarks escalate to
``fail`` (they are machine-independent at fixed workload scale, or
carry generous tolerance), while plain timing fields *de-escalate* to
``warn`` — wall-clock noise on shared runners must never fail a build.

The report is plain JSON (``bench-diff/v1``) so CI can upload it as an
artifact; the CLI exits non-zero only under ``--strict`` with at least
one regression, keeping the default gate warn-only.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

__all__ = [
    "is_timing_field",
    "is_rate_field",
    "compare_bench",
    "compare_dirs",
    "render_bench_diff",
]

#: Suffixes marking a field as a wall-clock/latency measurement.
_TIMING_SUFFIXES = ("_s", "_ns", "_us", "_ms", "_per_s", "_per_frame", "_per_site")

#: Underscore-delimited tokens marking a derived timing quantity.
#: Matched as whole tokens, not substrings — "configurations" must not
#: read as timing just because it contains "ratio".
_TIMING_TOKENS = frozenset({"ratio", "overhead", "wall", "guard", "slack"})

#: Keys that are identity, not measurement.
_IGNORED_KEYS = {"name"}

#: Leaf keys that depend on the execution environment (CPU count,
#: cache warmth), not on the code under test.  They are reported but
#: never gate: a warm ``.repro_cache`` or a different core count must
#: not fail a strict lane.
_ENV_LEAVES = frozenset({"workers", "cache_hits"})


def is_timing_field(key: str) -> bool:
    """Whether *key* names a noisy timing measurement (vs. a count).

    Timing fields get relative-tolerance comparison; everything else is
    structural and compared exactly.
    """
    if key.endswith(_TIMING_SUFFIXES) or "_over_" in key:
        return True
    return any(token in _TIMING_TOKENS for token in key.replace(".", "_").split("_"))


def is_rate_field(key: str) -> bool:
    """Whether *key* is a throughput rate, where *higher* is better.

    Rate fields still use the relative tolerance, but the regression
    direction is inverted relative to wall-time fields.  Declared
    floors (``floor_*``) are configuration, not measurements — they
    compare structurally.
    """
    return key.endswith("_per_s") and not key.split(".")[-1].startswith("floor_")


def _flatten(data: dict[str, Any], prefix: str = "") -> dict[str, Any]:
    """``{"sweep": {"seeds": 3}}`` -> ``{"sweep.seeds": 3}``."""
    flat: dict[str, Any] = {}
    for key, value in data.items():
        dotted = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, f"{dotted}."))
        else:
            flat[dotted] = value
    return flat


def compare_bench(
    baseline: dict[str, Any],
    current: dict[str, Any],
    tolerance: float,
    gate_fields: bool = False,
) -> list[dict[str, Any]]:
    """Field-by-field comparison of one benchmark's two snapshots.

    Returns one entry per compared field with a ``status`` of ``ok``,
    ``improved``, ``warn`` (structural mismatch or field set drift) or
    ``fail`` (regression beyond *tolerance*).  With *gate_fields*,
    severities follow the curated strict subset (module docstring):
    structural mismatches and field-set drift become ``fail``, plain
    wall-time regressions soften to ``warn``, rate regressions fail
    either way.
    """
    entries: list[dict[str, Any]] = []
    flat_base = _flatten(baseline)
    flat_cur = _flatten(current)
    for key in sorted(set(flat_base) | set(flat_cur)):
        leaf = key.split(".")[-1]
        if leaf in _IGNORED_KEYS:
            continue
        base = flat_base.get(key)
        cur = flat_cur.get(key)
        entry: dict[str, Any] = {"field": key, "baseline": base, "current": cur}
        structural = leaf.startswith("floor_") or not is_timing_field(key)
        if leaf in _ENV_LEAVES:
            entry["status"] = "ok" if base == cur else "warn"
            if entry["status"] == "warn":
                entry["note"] = "environment-dependent field (never gated)"
        elif key not in flat_base or key not in flat_cur:
            entry["status"] = "fail" if gate_fields else "warn"
            entry["note"] = (
                "missing in baseline" if base is None else "missing in current"
            )
        elif not structural:
            rate = is_rate_field(key)
            if not isinstance(base, (int, float)) or not isinstance(cur, (int, float)):
                entry["status"] = "ok" if base == cur else "warn"
            elif base <= 0:
                # No meaningful ratio; only flag if current became nonzero.
                entry["status"] = "ok" if cur <= 0 else "warn"
                if entry["status"] == "warn":
                    entry["note"] = "baseline is zero"
            else:
                ratio = cur / base
                entry["ratio"] = round(ratio, 3)
                # A rate regressing means the ratio *dropped*.
                regressed = (
                    ratio < 1.0 / (1.0 + tolerance) if rate
                    else ratio > 1.0 + tolerance
                )
                better = (
                    ratio > 1.0 + tolerance if rate
                    else ratio < 1.0 / (1.0 + tolerance)
                )
                if regressed:
                    # Gated lanes tolerate wall-time noise but not rate
                    # regressions (rates carry the same tolerance).
                    entry["status"] = (
                        "warn" if gate_fields and not rate else "fail"
                    )
                    slower = (1.0 / ratio if rate else ratio) - 1.0
                    entry["note"] = f"{slower * 100:.0f}% slower than baseline"
                elif better:
                    entry["status"] = "improved"
                else:
                    entry["status"] = "ok"
        else:
            if base == cur:
                entry["status"] = "ok"
            else:
                entry["status"] = "fail" if gate_fields else "warn"
                entry["note"] = "structural field changed; refresh the baseline?"
        entries.append(entry)
    return entries


def _load_dir(directory: str | Path) -> dict[str, dict[str, Any]]:
    """All ``BENCH_*.json`` files in *directory*, keyed by bench name."""
    found: dict[str, dict[str, Any]] = {}
    base = Path(directory)
    if not base.is_dir():
        return found
    for path in sorted(base.glob("BENCH_*.json")):
        name = path.stem.removeprefix("BENCH_")
        try:
            found[name] = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            found[name] = {"name": name, "_load_error": str(error)}
    return found


def compare_dirs(
    baseline_dir: str | Path,
    current_dir: str | Path,
    tolerance: float = 0.75,
    gate_fields: bool = False,
    only: str | None = None,
) -> dict[str, Any]:
    """Diff every benchmark across two directories -> ``bench-diff/v1``.

    With *gate_fields*, benchmarks absent from one side count as
    ``fail`` (summary-wise): a disappeared benchmark means a perf
    trajectory silently went dark, a new one means its baseline was
    not committed alongside it.  *only* restricts the diff to benchmark
    names matching the :mod:`fnmatch` pattern — for partial runs (a CI
    job regenerating one suite) where the other baselines would
    otherwise all report ``missing``.
    """
    baselines = _load_dir(baseline_dir)
    currents = _load_dir(current_dir)
    if only is not None:
        from fnmatch import fnmatchcase

        baselines = {
            name: doc for name, doc in baselines.items()
            if fnmatchcase(name, only)
        }
        currents = {
            name: doc for name, doc in currents.items()
            if fnmatchcase(name, only)
        }
    benchmarks: dict[str, Any] = {}
    summary = {"ok": 0, "improved": 0, "warn": 0, "fail": 0}
    drift_severity = "fail" if gate_fields else "warn"
    for name in sorted(set(baselines) | set(currents)):
        if name not in currents:
            benchmarks[name] = {"status": "missing", "entries": []}
            summary[drift_severity] += 1
            continue
        if name not in baselines:
            benchmarks[name] = {"status": "new", "entries": []}
            summary[drift_severity] += 1
            continue
        entries = compare_bench(
            baselines[name], currents[name], tolerance, gate_fields=gate_fields
        )
        statuses = {entry["status"] for entry in entries}
        status = (
            "fail" if "fail" in statuses
            else "warn" if "warn" in statuses
            else "improved" if "improved" in statuses
            else "ok"
        )
        benchmarks[name] = {"status": status, "entries": entries}
        summary[status] += 1
    return {
        "format": "bench-diff/v1",
        "baseline_dir": str(baseline_dir),
        "current_dir": str(current_dir),
        "tolerance": tolerance,
        "gate_fields": gate_fields,
        "benchmarks": benchmarks,
        "summary": summary,
    }


def render_bench_diff(report: dict[str, Any]) -> str:
    """Human-readable rendering of a ``bench-diff/v1`` report."""
    gated = ", gated fields" if report.get("gate_fields") else ""
    lines = [
        f"BENCH-DIFF {report['baseline_dir']} -> {report['current_dir']} "
        f"(timing tolerance {report['tolerance']:.0%}{gated})"
    ]
    for name, result in report["benchmarks"].items():
        status = result["status"]
        if status in ("missing", "new"):
            side = "current run" if status == "missing" else "baseline"
            lines.append(f"  {name}: {status.upper()} (absent from {side})")
            continue
        notable = [
            entry for entry in result["entries"]
            if entry["status"] in ("fail", "warn", "improved")
        ]
        lines.append(f"  {name}: {status}")
        for entry in notable:
            detail = (
                f"    [{entry['status']}] {entry['field']}: "
                f"{entry['baseline']} -> {entry['current']}"
            )
            if "ratio" in entry:
                detail += f" (x{entry['ratio']})"
            if "note" in entry:
                detail += f" - {entry['note']}"
            lines.append(detail)
    summary = report["summary"]
    lines.append(
        f"  summary: {summary['ok']} ok, {summary['improved']} improved, "
        f"{summary['warn']} warn, {summary['fail']} fail"
    )
    return "\n".join(lines)
