"""Machine-readable benchmark outputs.

Every benchmark in ``benchmarks/`` writes a ``BENCH_<name>.json``
next to its human-readable terminal rendering, so CI and regression
tooling can track seed counts, wall time and error rates without
scraping pytest output.  The target directory is ``REPRO_BENCH_DIR``
(default: the current working directory); the files are append-free
snapshots — each run overwrites the previous one.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

__all__ = ["BenchRecorder"]


class BenchRecorder:
    """Collects one benchmark's machine-readable facts, then writes them.

    Used through the ``bench_json`` fixture in ``benchmarks/conftest.py``:
    the fixture creates the recorder (named after the test), the test
    calls :meth:`record` / :meth:`sweep` with whatever it measured, and
    the fixture writes ``BENCH_<name>.json`` on teardown — wall time
    included — whether the assertions passed or not.
    """

    def __init__(self, name: str, directory: str | Path | None = None):
        self.name = name
        self.directory = Path(
            directory or os.environ.get("REPRO_BENCH_DIR") or "."
        )
        self.data: dict[str, Any] = {"name": name}

    def record(self, **fields: Any) -> "BenchRecorder":
        """Merge arbitrary result fields (rates, counts, verdicts)."""
        self.data.update(fields)
        return self

    def sweep(self, runner: Any) -> "BenchRecorder":
        """Record a :class:`~repro.harness.sweep.SweepRunner`'s stats.

        Accepts the runner or its ``stats`` object; captures seed
        count, sweep wall time, cache hits, errors and worker count.
        """
        stats = getattr(runner, "stats", runner)
        self.data["sweep"] = {
            "seeds": stats.seeds,
            "elapsed_s": round(stats.elapsed_s, 3),
            "cache_hits": stats.cache_hits,
            "errors": stats.errors,
            "workers": stats.workers,
        }
        return self

    def timing(self, benchmark: Any) -> "BenchRecorder":
        """Record a pytest-benchmark fixture's mean time, if it has one.

        Quietly a no-op under ``--benchmark-disable``, where the fixture
        runs the function once and collects no statistics.
        """
        try:
            self.data["mean_s"] = benchmark.stats.stats.mean
        except (AttributeError, TypeError):
            pass
        return self

    @property
    def path(self) -> Path:
        return self.directory / f"BENCH_{self.name}.json"

    def write(self) -> Path:
        self.directory.mkdir(parents=True, exist_ok=True)
        text = json.dumps(self.data, indent=2, sort_keys=True, default=repr)
        self.path.write_text(text + "\n", encoding="utf-8")
        return self.path
