"""Simulated compute platforms.

A :class:`Platform` models one ECU/board (in the paper: a MinnowBoard
Turbot): a handful of cores, a physical clock, an OS scheduler and the
processes/threads that run on it.  Platforms are created through
:class:`repro.sim.world.World`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from repro.sim.core import Simulator
from repro.sim.process import SimThread, SleepUntil
from repro.sim.rng import RngTree
from repro.sim.scheduler import CpuScheduler
from repro.sim.sync import CondVar, MessageQueue, Mutex
from repro.time.clock import ClockModel, PhysicalClock
from repro.time.duration import MS, US


@dataclass(frozen=True, slots=True)
class PlatformConfig:
    """Static configuration of a simulated platform.

    Defaults approximate the paper's evaluation boards: a quad-core Atom
    with mild OS timing noise and a synchronized clock.
    """

    num_cores: int = 4
    clock: ClockModel = field(default_factory=ClockModel.perfect)
    #: Random run-queue latency added when a thread is dispatched.
    dispatch_jitter_ns: int = 20 * US
    #: Maximum lateness of OS timers (timers never fire early).
    timer_jitter_ns: int = 100 * US
    #: Dispatch simultaneously-ready threads in wake order (FIFO) instead
    #: of drawing the order from the scheduler's RNG stream.  Models a
    #: time-triggered / fixed-priority dispatcher: with zero jitter the
    #: wake order — and hence every send interleaving — is a pure
    #: function of the workload, independent of the world seed.
    deterministic_dispatch: bool = False


class PeriodicTask:
    """Handle for a periodic callback registered on a platform."""

    def __init__(self, name: str, period_ns: int) -> None:
        self.name = name
        self.period_ns = period_ns
        self.activations = 0
        self.overruns = 0
        self._cancelled = False

    def cancel(self) -> None:
        """Stop the task at its next activation boundary."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled


class Platform:
    """One simulated board: cores + clock + scheduler + threads."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        rng_tree: RngTree,
        config: PlatformConfig | None = None,
    ) -> None:
        self.name = name
        self.config = config or PlatformConfig()
        self._sim = sim
        self._rng_tree = rng_tree.child(f"platform.{name}")
        self.clock = PhysicalClock(
            self.config.clock, self._rng_tree.stream("clock")
        )
        self.scheduler = CpuScheduler(
            sim,
            self.clock,
            self._rng_tree.stream("scheduler"),
            num_cores=self.config.num_cores,
            dispatch_jitter_ns=self.config.dispatch_jitter_ns,
            timer_jitter_ns=self.config.timer_jitter_ns,
            deterministic_dispatch=self.config.deterministic_dispatch,
        )
        #: Arbitrary per-platform attachments (NICs, daemons...).
        self.attachments: dict[str, Any] = {}

    # -- time ----------------------------------------------------------------

    @property
    def sim(self) -> Simulator:
        """The global simulator this platform runs in."""
        return self._sim

    def local_now(self) -> int:
        """Current local clock time (deterministic mapping, no jitter)."""
        return self.clock.local_time(self._sim.now)

    def read_clock(self) -> int:
        """Read the local clock as software would (with read jitter)."""
        return self.clock.read(self._sim.now)

    def rng(self, name: str):
        """A named RNG stream scoped to this platform."""
        return self._rng_tree.stream(name)

    # -- threads ---------------------------------------------------------------

    def spawn(
        self,
        name: str,
        generator: Generator[Any, Any, Any],
        start_delay_ns: int = 0,
    ) -> SimThread:
        """Start a simulated thread on this platform."""
        return self.scheduler.spawn(f"{self.name}.{name}", generator, start_delay_ns)

    def periodic(
        self,
        name: str,
        period_ns: int,
        body_factory: Callable[[], Generator[Any, Any, Any]],
        offset_ns: int = 0,
        start_delay_ns: int = 0,
    ) -> PeriodicTask:
        """Register a periodic callback, like an OS timer driving SWC logic.

        The *body_factory* is invoked once per activation and must return
        a generator (the simulated work).  Activations are anchored to the
        local clock at ``offset + k * period``; if the body overruns its
        period the missed activations are skipped and counted in
        :attr:`PeriodicTask.overruns`, which is how a typical timer-driven
        SWC loop behaves.
        """
        if period_ns <= 0:
            raise ValueError("period must be positive")
        task = PeriodicTask(name, period_ns)

        def loop() -> Generator[Any, Any, None]:
            anchor = self.local_now() + offset_ns
            activation = 0
            while not task.cancelled:
                yield SleepUntil(anchor + activation * period_ns)
                if task.cancelled:
                    return
                task.activations += 1
                yield from body_factory()
                activation += 1
                local = self.local_now()
                while anchor + activation * period_ns <= local:
                    activation += 1
                    task.overruns += 1

        self.spawn(f"periodic.{name}", loop(), start_delay_ns)
        return task

    # -- synchronization factories --------------------------------------------------

    def mutex(self, name: str = "mutex") -> Mutex:
        """Create a mutex (namespaced to this platform for diagnostics)."""
        return Mutex(f"{self.name}.{name}")

    def condvar(self, name: str = "condvar") -> CondVar:
        """Create a condition variable."""
        return CondVar(f"{self.name}.{name}")

    def queue(
        self,
        name: str = "queue",
        capacity: int | None = None,
        overflow: str = "error",
    ) -> MessageQueue:
        """Create a message queue bound to this platform's scheduler."""
        return MessageQueue(
            self.scheduler, capacity=capacity, name=f"{self.name}.{name}",
            overflow=overflow,
        )

    def __repr__(self) -> str:
        return f"Platform({self.name!r}, cores={self.config.num_cores})"


#: A convenient "calm" configuration for unit tests: single core, no jitter,
#: perfect clock — scheduling still randomized but timing exact.
CALM = PlatformConfig(
    num_cores=1, clock=ClockModel.perfect(), dispatch_jitter_ns=0, timer_jitter_ns=0
)

#: Approximation of the paper's evaluation board (Intel Atom E3845, 4 cores).
MINNOWBOARD = PlatformConfig(
    num_cores=4,
    clock=ClockModel.perfect(),
    dispatch_jitter_ns=50 * US,
    timer_jitter_ns=500 * US,
)

#: A deliberately noisy platform for stress tests.
NOISY = PlatformConfig(
    num_cores=2,
    clock=ClockModel(offset_ns=0, drift_ppb=20_000, read_jitter_ns=2 * US),
    dispatch_jitter_ns=200 * US,
    timer_jitter_ns=2 * MS,
)
