"""Randomized multi-core CPU scheduler for simulated threads.

This is where the paper's **first source of nondeterminism** lives.  At
every scheduling decision — which ready thread gets a free core, which
mutex waiter is granted the lock, which condition-variable waiter a notify
wakes — the scheduler draws from a seeded RNG stream.  Real operating
systems make these choices based on load, cache state and interrupt
timing; drawing them randomly exercises the same set of interleavings
while remaining replayable from the experiment seed.

Two knobs add timing (rather than ordering) nondeterminism:

* ``dispatch_jitter_ns`` — a random delay between a thread being picked
  and it actually running (context-switch / run-queue latency);
* ``timer_jitter_ns`` — how late an OS timer may fire (timers never fire
  early).

Every decision is routed through a *decision source*: any object with
``pick_index(kind, names)``, ``jitter(kind, name, bound_ns)`` and
``preempt(name)`` methods.  Passing a plain :class:`random.Random`
wraps it in :class:`repro.sim.rng.RandomDecisionSource`, which
reproduces the historical draw sequence exactly; :mod:`repro.explore`
substitutes recording/replaying/adversarial sources to turn the
scheduler into a systematic concurrency-testing tool.  The ``preempt``
query (answered with 0 by the default source) models the OS preempting
a just-dispatched thread for a bounded time — the lever PCT-style
exploration uses to force rare interleavings.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Generator

from repro.errors import SimulationError
from repro.obs import context as obs_context
from repro.obs.bus import TRACK_SCHEDULER
from repro.sim.core import Simulator
from repro.sim.process import (
    Acquire,
    Compute,
    Exit,
    Join,
    Notify,
    NotifyAll,
    Release,
    SimThread,
    Sleep,
    SleepUntil,
    ThreadState,
    Wait,
    WaitResult,
    WaitUntil,
    Yield,
)
from repro.sim.rng import RandomDecisionSource
from repro.sim.sync import CondVar, Mutex
from repro.time.clock import PhysicalClock


class CpuScheduler:
    """Schedules simulated threads onto a platform's cores."""

    def __init__(
        self,
        sim: Simulator,
        clock: PhysicalClock,
        rng: random.Random,
        num_cores: int = 1,
        dispatch_jitter_ns: int = 0,
        timer_jitter_ns: int = 0,
        deterministic_dispatch: bool = False,
    ) -> None:
        if num_cores < 1:
            raise ValueError("a platform needs at least one core")
        self._sim = sim
        self._clock = clock
        # A decision source may be passed directly; a plain Random is
        # adapted (precisely preserving the historical draw sequence).
        if hasattr(rng, "pick_index"):
            self._decisions = rng
        else:
            self._decisions = RandomDecisionSource(rng)
        self._cores: list[SimThread | None] = [None] * num_cores
        self._dispatch_jitter_ns = dispatch_jitter_ns
        self._timer_jitter_ns = timer_jitter_ns
        self._deterministic_dispatch = deterministic_dispatch
        self._ready: list[SimThread] = []
        self._threads: list[SimThread] = []
        self._dispatch_pending = False
        self._frozen = False
        #: Threads whose continuation arrived while frozen (crash window).
        self._parked: list[SimThread] = []
        self.context_switches = 0

    # -- public API --------------------------------------------------------

    @property
    def threads(self) -> list[SimThread]:
        """All threads ever spawned on this scheduler."""
        return list(self._threads)

    @property
    def num_cores(self) -> int:
        """Number of cores this scheduler multiplexes."""
        return len(self._cores)

    def local_now(self) -> int:
        """Current local (platform clock) time."""
        return self._clock.local_time(self._sim.now)

    def spawn(
        self,
        name: str,
        generator: Generator[Any, Any, Any],
        start_delay_ns: int = 0,
    ) -> SimThread:
        """Create a thread and make it runnable after *start_delay_ns*."""
        thread = SimThread(name=name, generator=generator)
        # One continuation pair per thread, allocated here so compute
        # continuations and sleep wakeups never build a per-event lambda.
        thread.resume_cb = lambda: self._step(thread)
        thread.wake_cb = lambda: self._wake_sleeper(thread)
        self._threads.append(thread)
        if start_delay_ns < 0:
            raise ValueError("start delay must be non-negative")

        def make_ready() -> None:
            thread.state = ThreadState.READY
            self._ready.append(thread)
            self._request_dispatch()

        self._sim.post_after(start_delay_ns, make_ready)
        return thread

    def external_notify(self, condvar: CondVar) -> None:
        """Wake one waiter of *condvar* from a non-thread context."""
        self._notify_one(condvar)

    def external_notify_all(self, condvar: CondVar) -> None:
        """Wake every waiter of *condvar* from a non-thread context."""
        while condvar.waiters:
            self._notify_one(condvar)

    @property
    def frozen(self) -> bool:
        """Whether the platform is halted (fault-injected crash window)."""
        return self._frozen

    def freeze(self) -> None:
        """Halt the platform: nothing executes until :meth:`thaw`.

        Models a fail-stop node crash with warm restart (``repro.faults``
        node outages): thread state is preserved, but no thread runs and
        no dispatch decision is drawn — so a crash window consumes zero
        draws from the scheduler's RNG stream.  Timers that expire while
        frozen park their threads on the ready queue; they run, late, on
        thaw.
        """
        self._frozen = True

    def thaw(self) -> None:
        """Resume the platform after :meth:`freeze`.

        Continuations that arrived during the freeze (compute phases
        completing, timer wakeups) resume in their original event order.
        """
        if not self._frozen:
            return
        self._frozen = False
        parked, self._parked = self._parked, []
        for thread in parked:
            self._sim.post_after(0, thread.resume_cb)
        self._request_dispatch()

    def blocked_threads(self) -> list[SimThread]:
        """Threads currently blocked on a mutex/condvar/join."""
        return [t for t in self._threads if t.state is ThreadState.BLOCKED]

    def live_threads(self) -> list[SimThread]:
        """Threads that have not terminated."""
        return [t for t in self._threads if not t.done]

    # -- dispatching --------------------------------------------------------

    def _request_dispatch(self) -> None:
        if self._dispatch_pending:
            return
        self._dispatch_pending = True
        self._sim.post_after(0, self._dispatch)

    def _dispatch(self) -> None:
        self._dispatch_pending = False
        if self._frozen:
            return
        # Decision-source and core lookups are cached across the whole
        # dispatch burst (one trampoline event may place many threads).
        ready = self._ready
        cores = self._cores
        decisions = self._decisions
        pick_index = decisions.pick_index
        dispatch_jitter_ns = self._dispatch_jitter_ns
        o = obs_context.ACTIVE
        while ready:
            core = None
            for index, occupant in enumerate(cores):
                if occupant is None:
                    core = index
                    break
            if core is None:
                return
            if self._deterministic_dispatch:
                # FIFO by wake order: no draw, so the scheduler stream's
                # sequence (and every platform without the flag) is
                # untouched — goldens for existing worlds stay stable.
                index = 0
            else:
                index = pick_index("dispatch", [t.name for t in ready])
            thread = ready.pop(index)
            thread.state = ThreadState.RUNNING
            thread.core = core
            cores[core] = thread
            self.context_switches += 1
            delay = 0
            if dispatch_jitter_ns > 0:
                delay = decisions.jitter(
                    "dispatch", thread.name, dispatch_jitter_ns
                )
            preempt_ns = decisions.preempt(thread.name)
            if o.enabled:
                now = self._sim.now
                o.metrics.counter("sched.dispatches").inc()
                o.metrics.histogram("sched.dispatch_delay_ns").observe(delay)
                o.bus.instant(
                    TRACK_SCHEDULER,
                    f"dispatch {thread.name}",
                    now,
                    o.wall_ns(),
                    core=core,
                    delay_ns=delay,
                )
                if preempt_ns > 0:
                    o.metrics.counter("sched.preemptions").inc()
                    o.metrics.histogram("sched.preempt_ns").observe(preempt_ns)
                    o.bus.instant(
                        TRACK_SCHEDULER,
                        f"preempt {thread.name}",
                        now,
                        o.wall_ns(),
                        preempt_ns=preempt_ns,
                    )
            delay += preempt_ns
            if delay > 0:
                self._sim.post_after(delay, thread.resume_cb)
            else:
                self._step(thread)

    def _find_free_core(self) -> int | None:
        for index, occupant in enumerate(self._cores):
            if occupant is None:
                return index
        return None

    def _release_core(self, thread: SimThread) -> None:
        if thread.core is not None:
            self._cores[thread.core] = None
            thread.core = None
        self._request_dispatch()

    # -- stepping a thread ---------------------------------------------------

    def _step(self, thread: SimThread) -> None:
        if thread.done:
            return
        if self._frozen:
            # The node is down: park the continuation (the thread keeps
            # its core and resume value) and replay it on thaw.
            self._parked.append(thread)
            return
        value = thread.resume_value
        thread.resume_value = None
        send = thread.generator.send
        # Exact-class dispatch: syscalls are final records, and `is`
        # checks on the class are several times cheaper than the
        # equivalent isinstance() chain on this, the hottest loop in
        # the simulation.
        while True:
            try:
                syscall = send(value)
            except StopIteration as stop:
                self._finish(thread, stop.value)
                return
            value = None
            cls = syscall.__class__
            if cls is Compute:
                duration_ns = syscall.duration_ns
                if duration_ns <= 0:
                    if duration_ns == 0:
                        continue
                    raise SimulationError("compute duration must be non-negative")
                self._sim.post_after(duration_ns, thread.resume_cb)
                return
            if cls is Acquire:
                if self._try_acquire(thread, syscall.mutex):
                    continue
                return
            if cls is Release:
                self._do_release(thread, syscall.mutex)
                continue
            if cls is Notify:
                self._notify_one(syscall.condvar)
                continue
            if cls is Wait:
                self._do_wait(thread, syscall.condvar, syscall.mutex, None)
                return
            if cls is WaitUntil:
                self._do_wait(
                    thread, syscall.condvar, syscall.mutex, syscall.local_deadline
                )
                return
            if cls is Yield:
                self._release_core(thread)
                thread.state = ThreadState.READY
                self._ready.append(thread)
                return
            if cls is Sleep:
                local_target = self.local_now() + syscall.duration_ns
                self._sleep_until_local(thread, local_target)
                return
            if cls is SleepUntil:
                self._sleep_until_local(thread, syscall.local_time)
                return
            if cls is NotifyAll:
                while syscall.condvar.waiters:
                    self._notify_one(syscall.condvar)
                continue
            if cls is Join:
                target = syscall.thread
                if target.done:
                    value = target.result
                    continue
                target.joiners.append(thread)
                thread.state = ThreadState.BLOCKED
                self._release_core(thread)
                return
            if cls is Exit:
                thread.generator.close()
                self._finish(thread, syscall.value)
                return
            raise SimulationError(
                f"thread {thread.name!r} yielded unknown syscall {syscall!r}"
            )

    def _finish(self, thread: SimThread, result: Any) -> None:
        thread.result = result
        thread.state = ThreadState.DONE
        self._release_core(thread)
        for joiner in thread.joiners:
            joiner.resume_value = result
            joiner.state = ThreadState.READY
            self._ready.append(joiner)
        thread.joiners.clear()
        self._request_dispatch()

    # -- sleeping -------------------------------------------------------------

    def _sleep_until_local(self, thread: SimThread, local_time: int) -> None:
        self._release_core(thread)
        thread.state = ThreadState.SLEEPING
        global_target = self._clock.global_time_for(local_time)
        if global_target < self._sim.now:
            global_target = self._sim.now
        if self._timer_jitter_ns > 0:
            global_target += self._decisions.jitter(
                "timer", thread.name, self._timer_jitter_ns
            )
        # Pooled handle: _wake_sleeper drops the reference as it fires,
        # so the kernel freelist can recycle it (see Simulator.timer_at).
        thread.timeout_handle = self._sim.timer_at(global_target, thread.wake_cb)

    def _wake_sleeper(self, thread: SimThread) -> None:
        thread.timeout_handle = None
        thread.state = ThreadState.READY
        self._ready.append(thread)
        self._request_dispatch()

    # -- mutexes ----------------------------------------------------------------

    def _try_acquire(self, thread: SimThread, mutex: Mutex) -> bool:
        if mutex.owner is thread:
            raise SimulationError(
                f"thread {thread.name!r} re-acquired non-reentrant {mutex!r}"
            )
        o = obs_context.ACTIVE
        if mutex.owner is None:
            mutex.owner = thread
            if o.enabled:
                o.scratch[("mutex_hold", id(mutex))] = self._sim.now
            return True
        mutex.waiters.append(thread)
        thread.state = ThreadState.BLOCKED
        thread.resume_value = None
        if o.enabled:
            o.metrics.counter("sched.mutex_contended").inc()
            o.scratch[("mutex_wait", id(thread))] = self._sim.now
        self._release_core(thread)
        return False

    def _do_release(self, thread: SimThread, mutex: Mutex) -> None:
        if mutex.owner is not thread:
            raise SimulationError(
                f"thread {thread.name!r} released {mutex!r} it does not hold"
            )
        mutex.owner = None
        o = obs_context.ACTIVE
        if o.enabled:
            acquired = o.scratch.pop(("mutex_hold", id(mutex)), None)
            if acquired is not None:
                o.metrics.histogram("sched.mutex_hold_ns").observe(
                    self._sim.now - acquired
                )
        self._grant_mutex(mutex)

    def _grant_mutex(self, mutex: Mutex) -> None:
        """Hand a free mutex to one randomly chosen waiter, if any."""
        if mutex.owner is not None or not mutex.waiters:
            return
        index = self._decisions.pick_index(
            "mutex", [t.name for t in mutex.waiters]
        )
        waiter = mutex.waiters.pop(index)
        mutex.owner = waiter
        waiter.reacquire = None
        waiter.state = ThreadState.READY
        o = obs_context.ACTIVE
        if o.enabled:
            now = self._sim.now
            started = o.scratch.pop(("mutex_wait", id(waiter)), None)
            if started is not None:
                o.metrics.histogram("sched.mutex_wait_ns").observe(now - started)
            o.scratch[("mutex_hold", id(mutex))] = now
            o.metrics.counter("sched.mutex_grants").inc()
            o.bus.instant(
                TRACK_SCHEDULER,
                f"mutex-grant {waiter.name}",
                now,
                o.wall_ns(),
                waiters_left=len(mutex.waiters),
            )
        self._ready.append(waiter)
        self._request_dispatch()

    # -- condition variables -------------------------------------------------------

    def _do_wait(
        self,
        thread: SimThread,
        condvar: CondVar,
        mutex: Mutex,
        local_deadline: int | None,
    ) -> None:
        if mutex.owner is not thread:
            raise SimulationError(
                f"thread {thread.name!r} waited on {condvar!r} "
                f"without holding {mutex!r}"
            )
        mutex.owner = None
        o = obs_context.ACTIVE
        if o.enabled:
            acquired = o.scratch.pop(("mutex_hold", id(mutex)), None)
            if acquired is not None:
                o.metrics.histogram("sched.mutex_hold_ns").observe(
                    self._sim.now - acquired
                )
        thread.state = ThreadState.BLOCKED
        thread.reacquire = mutex
        condvar.waiters.append(thread)
        self._release_core(thread)
        self._grant_mutex(mutex)
        if local_deadline is not None:
            global_deadline = self._clock.global_time_for(local_deadline)
            if global_deadline < self._sim.now:
                global_deadline = self._sim.now
            thread.timeout_handle = self._sim.timer_at(
                global_deadline,
                lambda: self._wait_timeout(thread, condvar),
            )

    def _notify_one(self, condvar: CondVar) -> None:
        if not condvar.waiters:
            return
        index = self._decisions.pick_index(
            "notify", [t.name for t in condvar.waiters]
        )
        waiter = condvar.waiters.pop(index)
        self._resume_condvar_waiter(waiter, WaitResult.NOTIFIED)

    def _wait_timeout(self, thread: SimThread, condvar: CondVar) -> None:
        if thread not in condvar.waiters:
            return
        condvar.waiters.remove(thread)
        self._resume_condvar_waiter(thread, WaitResult.TIMEOUT)

    def _resume_condvar_waiter(self, waiter: SimThread, result: WaitResult) -> None:
        if waiter.timeout_handle is not None:
            waiter.timeout_handle.cancel()
            waiter.timeout_handle = None
        waiter.resume_value = result
        mutex = waiter.reacquire
        if mutex is None:
            raise SimulationError("condvar waiter lost its reacquire mutex")
        o = obs_context.ACTIVE
        if mutex.owner is None:
            mutex.owner = waiter
            waiter.reacquire = None
            waiter.state = ThreadState.READY
            if o.enabled:
                o.scratch[("mutex_hold", id(mutex))] = self._sim.now
            self._ready.append(waiter)
            self._request_dispatch()
        else:
            mutex.waiters.append(waiter)
            if o.enabled:
                o.scratch[("mutex_wait", id(waiter))] = self._sim.now


def run_generator(generator_or_none: Generator | None) -> Generator:
    """Normalize callbacks: accept a generator or ``None`` (no-op).

    Helper for APIs that accept "a body to run on a simulated thread";
    returning an empty generator keeps call sites branch-free.
    """
    if generator_or_none is not None:
        return generator_or_none

    def _empty() -> Generator:
        return
        yield  # pragma: no cover - makes this a generator function

    return _empty()


Callback = Callable[[], Generator[Any, Any, Any]]
