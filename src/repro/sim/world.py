"""The :class:`World`: simulator + platforms + network in one container.

A world is the unit of an *experiment run*: it owns the event queue, the
root RNG seed and every platform.  Creating two worlds with the same seed
and running the same program yields identical traces; different seeds
sample different interleavings/latencies — this is how the reproduction
turns the paper's "run the demonstrator 20 times" into "run 20 seeds".
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import DeadlockError
from repro.sim.core import Simulator
from repro.sim.platform import Platform, PlatformConfig
from repro.sim.rng import RngTree
from repro.time.duration import Duration

if TYPE_CHECKING:
    from repro.network.switch import Switch


class World:
    """Container for one simulated distributed system."""

    def __init__(self, seed: int = 0) -> None:
        self.sim = Simulator()
        self.rng = RngTree(seed)
        self.platforms: dict[str, Platform] = {}
        self._network: "Switch | None" = None
        #: Installed fault injector (``repro.faults``), if any.
        self.fault_injector = None

    @property
    def seed(self) -> int:
        """The experiment seed this world was created with."""
        return self.rng.seed

    @property
    def now(self) -> int:
        """Current global simulation time."""
        return self.sim.now

    def add_platform(
        self, name: str, config: PlatformConfig | None = None
    ) -> Platform:
        """Create and register a platform."""
        if name in self.platforms:
            raise ValueError(f"platform {name!r} already exists")
        platform = Platform(name, self.sim, self.rng, config)
        self.platforms[name] = platform
        return platform

    def platform(self, name: str) -> Platform:
        """Look up a platform by name."""
        return self.platforms[name]

    def attach_network(self, network: "Switch") -> None:
        """Register the network switch connecting the platforms."""
        self._network = network

    @property
    def network(self) -> "Switch | None":
        """The network switch, if one was attached."""
        return self._network

    # -- running ---------------------------------------------------------------

    def run_for(self, duration: Duration) -> None:
        """Advance the simulation by *duration* from the current time."""
        self.sim.run(until=self.sim.now + duration)

    def run_until(self, time: int) -> None:
        """Advance the simulation to absolute global *time*."""
        self.sim.run(until=time)

    def run_to_completion(self, check_deadlock: bool = True) -> None:
        """Run until no events remain.

        With *check_deadlock* (the default), raise :class:`DeadlockError`
        if threads are still blocked when the event queue drains — that
        means they can never be woken again.
        """
        self.sim.run()
        if not check_deadlock:
            return
        stuck = [
            thread
            for platform in self.platforms.values()
            for thread in platform.scheduler.blocked_threads()
        ]
        if stuck:
            names = ", ".join(thread.name for thread in stuck)
            raise DeadlockError(f"threads blocked with no pending events: {names}")

    def __repr__(self) -> str:
        return (
            f"World(seed={self.seed}, platforms={sorted(self.platforms)}, "
            f"now={self.sim.now})"
        )
