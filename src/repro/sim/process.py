"""Simulated threads and their system calls.

A simulated thread is a Python generator that *yields* syscall objects to
the platform's CPU scheduler (:mod:`repro.sim.scheduler`).  Each yield
point is a place where the OS could reschedule — exactly the granularity
at which real thread interleaving nondeterminism manifests.  Library code
(queues, middleware) is written as generators too and embedded with
``yield from``.

Example thread body::

    def worker(platform, queue):
        while True:
            item = yield from queue.get()
            yield Compute(2 * US)          # simulate processing cost
            if item is None:
                return
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator

if TYPE_CHECKING:
    from repro.sim.sync import CondVar, Mutex


class ThreadState(enum.Enum):
    """Lifecycle states of a simulated thread."""

    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    SLEEPING = "sleeping"
    BLOCKED = "blocked"
    DONE = "done"


class WaitResult(enum.Enum):
    """Outcome of a :class:`WaitUntil` syscall."""

    NOTIFIED = "notified"
    TIMEOUT = "timeout"


# --------------------------------------------------------------------------
# Syscall objects.  Threads yield these; the scheduler interprets them.
# --------------------------------------------------------------------------


@dataclass(slots=True, eq=False)
class Compute:
    """Occupy the CPU core for *duration_ns* of simulated time."""

    duration_ns: int


@dataclass(slots=True, eq=False)
class Sleep:
    """Release the core and sleep for *duration_ns* of local clock time."""

    duration_ns: int


@dataclass(slots=True, eq=False)
class SleepUntil:
    """Release the core and sleep until the local clock reads *local_time*."""

    local_time: int


@dataclass(slots=True, eq=False)
class Yield:
    """Release the core but stay runnable (cooperative reschedule point)."""


@dataclass(slots=True, eq=False)
class Acquire:
    """Acquire a mutex, blocking if it is held."""

    mutex: "Mutex"


@dataclass(slots=True, eq=False)
class Release:
    """Release a held mutex, waking one random waiter if any."""

    mutex: "Mutex"


@dataclass(slots=True, eq=False)
class Wait:
    """Atomically release *mutex* and wait on *condvar*.

    Resumes holding *mutex* again; yields :data:`WaitResult.NOTIFIED`.
    """

    condvar: "CondVar"
    mutex: "Mutex"


@dataclass(slots=True, eq=False)
class WaitUntil:
    """Like :class:`Wait` but with a local-clock deadline.

    Yields a :class:`WaitResult` telling whether the thread was notified
    or the deadline passed.
    """

    condvar: "CondVar"
    mutex: "Mutex"
    local_deadline: int


@dataclass(slots=True, eq=False)
class Notify:
    """Wake one (randomly chosen) waiter of *condvar*."""

    condvar: "CondVar"


@dataclass(slots=True, eq=False)
class NotifyAll:
    """Wake every waiter of *condvar*."""

    condvar: "CondVar"


@dataclass(slots=True, eq=False)
class Join:
    """Block until *thread* finishes; yields its return value."""

    thread: "SimThread"


@dataclass(slots=True, eq=False)
class Exit:
    """Terminate the thread immediately with *value* as its result."""

    value: Any = None


Syscall = (
    Compute
    | Sleep
    | SleepUntil
    | Yield
    | Acquire
    | Release
    | Wait
    | WaitUntil
    | Notify
    | NotifyAll
    | Join
    | Exit
)


@dataclass(eq=False)
class SimThread:
    """A simulated thread: a generator plus scheduler bookkeeping.

    Application code never constructs these directly; use
    :meth:`repro.sim.platform.Platform.spawn`.
    """

    name: str
    generator: Generator[Any, Any, Any]
    state: ThreadState = ThreadState.NEW
    result: Any = None
    #: Threads blocked in :class:`Join` on this thread.
    joiners: list["SimThread"] = field(default_factory=list)
    #: Value to send into the generator on next resume.
    resume_value: Any = None
    #: Mutex this thread must reacquire before resuming (condvar wakeup).
    reacquire: Any = None
    #: Handle of a pending sleep/timeout event (for cancellation).
    timeout_handle: Any = None
    #: Core index while RUNNING, else None.
    core: int | None = None
    #: Scheduler-owned continuation closures, created once at spawn so
    #: the hot dispatch/compute paths never allocate a per-event lambda.
    resume_cb: Any = None
    wake_cb: Any = None

    @property
    def done(self) -> bool:
        """Whether the thread has terminated."""
        return self.state is ThreadState.DONE

    def __repr__(self) -> str:
        return f"SimThread({self.name!r}, {self.state.value})"
