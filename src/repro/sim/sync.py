"""Synchronization primitives for simulated threads.

:class:`Mutex`, :class:`CondVar` and :class:`Semaphore` are passive state
holders; the CPU scheduler manipulates them when interpreting syscalls.
:class:`MessageQueue` is written *in terms of* the primitives as generator
methods that thread code embeds with ``yield from`` — the same layering a
real middleware would have on top of pthreads.

External (non-thread) contexts such as network-delivery events can push
into a :class:`MessageQueue` via :meth:`MessageQueue.post`, which wakes
blocked readers through the scheduler.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Generator

from repro.obs import context as obs_context
from repro.obs.bus import TRACK_NETWORK
from repro.obs.metrics import DEPTH_BUCKETS
from repro.sim.process import (
    Acquire,
    Notify,
    Release,
    SimThread,
    Wait,
    WaitResult,
    WaitUntil,
)

if TYPE_CHECKING:
    from repro.sim.scheduler import CpuScheduler


class Mutex:
    """A non-reentrant mutual-exclusion lock."""

    def __init__(self, name: str = "mutex") -> None:
        self.name = name
        self.owner: SimThread | None = None
        self.waiters: list[SimThread] = []

    @property
    def locked(self) -> bool:
        """Whether some thread currently holds the mutex."""
        return self.owner is not None

    def __repr__(self) -> str:
        holder = self.owner.name if self.owner else None
        return f"Mutex({self.name!r}, owner={holder}, waiters={len(self.waiters)})"


class CondVar:
    """A condition variable used with an associated :class:`Mutex`."""

    def __init__(self, name: str = "condvar") -> None:
        self.name = name
        self.waiters: list[SimThread] = []

    def __repr__(self) -> str:
        return f"CondVar({self.name!r}, waiters={len(self.waiters)})"


class Semaphore:
    """A counting semaphore built from a mutex and a condition variable.

    Methods are generators; call them with ``yield from``.
    """

    def __init__(self, initial: int = 0, name: str = "sem") -> None:
        if initial < 0:
            raise ValueError("semaphore count must be non-negative")
        self.name = name
        self._count = initial
        self._mutex = Mutex(f"{name}.mutex")
        self._nonzero = CondVar(f"{name}.nonzero")

    @property
    def value(self) -> int:
        """Current count (snapshot; may change at the next yield point)."""
        return self._count

    def acquire(self) -> Generator[Any, Any, None]:
        """Decrement the count, blocking while it is zero."""
        yield Acquire(self._mutex)
        while self._count == 0:
            yield Wait(self._nonzero, self._mutex)
        self._count -= 1
        yield Release(self._mutex)

    def release(self) -> Generator[Any, Any, None]:
        """Increment the count and wake one waiter."""
        yield Acquire(self._mutex)
        self._count += 1
        yield Notify(self._nonzero)
        yield Release(self._mutex)


class MessageQueue:
    """A bounded FIFO queue connecting threads (and external events).

    ``capacity=None`` means unbounded.  ``get``/``put`` are generator
    methods for thread code; :meth:`post` is for non-thread contexts (for
    example a simulated NIC interrupt) and never blocks — when the queue
    is full it applies ``overflow`` policy: ``"drop-new"`` discards the
    posted item, ``"drop-old"`` discards the oldest queued item,
    ``"error"`` raises.
    """

    def __init__(
        self,
        scheduler: "CpuScheduler",
        capacity: int | None = None,
        name: str = "queue",
        overflow: str = "error",
    ) -> None:
        if overflow not in ("drop-new", "drop-old", "error"):
            raise ValueError(f"unknown overflow policy {overflow!r}")
        self.name = name
        self._scheduler = scheduler
        self._capacity = capacity
        self._overflow = overflow
        self._items: deque[Any] = deque()
        self._mutex = Mutex(f"{name}.mutex")
        self._not_empty = CondVar(f"{name}.not_empty")
        self._not_full = CondVar(f"{name}.not_full")
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def capacity(self) -> int | None:
        """Maximum number of queued items, or ``None`` if unbounded."""
        return self._capacity

    def _full(self) -> bool:
        return self._capacity is not None and len(self._items) >= self._capacity

    def put(self, item: Any) -> Generator[Any, Any, None]:
        """Enqueue *item*, blocking while the queue is full."""
        yield Acquire(self._mutex)
        while self._full():
            yield Wait(self._not_full, self._mutex)
        self._items.append(item)
        yield Notify(self._not_empty)
        yield Release(self._mutex)

    def get(self) -> Generator[Any, Any, Any]:
        """Dequeue the oldest item, blocking while the queue is empty."""
        yield Acquire(self._mutex)
        while not self._items:
            yield Wait(self._not_empty, self._mutex)
        item = self._items.popleft()
        yield Notify(self._not_full)
        yield Release(self._mutex)
        return item

    def get_until(self, local_deadline: int) -> Generator[Any, Any, Any]:
        """Dequeue with a local-clock deadline.

        Returns the item, or ``None`` if the deadline passed with the
        queue still empty.
        """
        yield Acquire(self._mutex)
        while not self._items:
            result = yield WaitUntil(self._not_empty, self._mutex, local_deadline)
            if result is WaitResult.TIMEOUT and not self._items:
                yield Release(self._mutex)
                return None
        item = self._items.popleft()
        yield Notify(self._not_full)
        yield Release(self._mutex)
        return item

    def try_get(self) -> Generator[Any, Any, Any]:
        """Dequeue without blocking; returns ``None`` if empty."""
        yield Acquire(self._mutex)
        item = self._items.popleft() if self._items else None
        if item is not None:
            yield Notify(self._not_full)
        yield Release(self._mutex)
        return item

    def post(self, item: Any) -> bool:
        """Enqueue from a non-thread context; never blocks.

        Returns ``True`` if the item was queued, ``False`` if it was
        dropped by the overflow policy.  The kernel executes events
        atomically, so no lock is needed here; readers blocked in
        :meth:`get` are woken through the scheduler.
        """
        o = obs_context.ACTIVE
        if self._full():
            if self._overflow == "error":
                raise OverflowError(f"queue {self.name!r} is full")
            if self._overflow == "drop-new":
                self.dropped += 1
                if o.enabled:
                    self._record_drop(o)
                return False
            self._items.popleft()
            self.dropped += 1
            if o.enabled:
                self._record_drop(o)
        self._items.append(item)
        if o.enabled:
            o.metrics.histogram("queue.depth", DEPTH_BUCKETS).observe(
                len(self._items)
            )
            o.metrics.gauge(f"queue.depth.{self.name}").set(len(self._items))
        self._scheduler.external_notify(self._not_empty)
        return True

    def _record_drop(self, o: Any) -> None:
        o.metrics.counter("queue.dropped").inc()
        o.bus.instant(
            TRACK_NETWORK,
            f"queue-drop {self.name}",
            self._scheduler._sim.now,
            o.wall_ns(),
            policy=self._overflow,
            depth=len(self._items),
        )

    def peek_all(self) -> list[Any]:
        """Snapshot of queued items (diagnostics only)."""
        return list(self._items)
