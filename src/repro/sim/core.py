"""The discrete-event simulation kernel.

A :class:`Simulator` owns a priority queue of timed callbacks.  Entries
are ordered by ``(time, priority, sequence)``; the monotonically
increasing sequence number makes ordering total and deterministic, so the
kernel itself introduces **no** nondeterminism — all modelled
nondeterminism comes from explicit RNG draws in higher layers.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.errors import SimulationError
from repro.time.duration import format_duration

#: Default priority for scheduled events; lower runs first at equal times.
PRIORITY_NORMAL = 100
#: Priority for housekeeping that should run before normal events.
PRIORITY_EARLY = 50
#: Priority for events that must observe everything else at their time.
PRIORITY_LATE = 200


class EventHandle:
    """Handle to a scheduled event, supporting cancellation."""

    __slots__ = ("time", "_callback", "_cancelled")

    def __init__(self, time: int, callback: Callable[[], None]) -> None:
        self.time = time
        self._callback = callback
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        self._cancelled = True
        self._callback = None

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called."""
        return self._cancelled

    def _fire(self) -> None:
        if self._cancelled:
            return
        callback = self._callback
        self._callback = None
        if callback is not None:
            callback()


class Simulator:
    """Deterministic event-queue simulator over integer-nanosecond time."""

    def __init__(self) -> None:
        self._now = 0
        self._sequence = 0
        self._queue: list[tuple[int, int, int, EventHandle]] = []
        self._running = False
        self._events_processed = 0

    @property
    def now(self) -> int:
        """Current global simulation time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for diagnostics)."""
        return self._events_processed

    def at(
        self,
        time: int,
        callback: Callable[[], None],
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule *callback* at absolute global *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {format_duration(time)}, "
                f"now is {format_duration(self._now)}"
            )
        handle = EventHandle(time, callback)
        heapq.heappush(self._queue, (time, priority, self._sequence, handle))
        self._sequence += 1
        return handle

    def after(
        self,
        delay: int,
        callback: Callable[[], None],
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule *callback* after a relative *delay*."""
        if delay < 0:
            raise SimulationError("delay must be non-negative")
        return self.at(self._now + delay, callback, priority)

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` if queue is empty."""
        while self._queue:
            time, _priority, _seq, handle = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = time
            self._events_processed += 1
            handle._fire()
            return True
        return False

    def run(self, until: int | None = None) -> None:
        """Run events until the queue drains or *until* is reached.

        When *until* is given, time is advanced to exactly *until* even if
        the last event fires earlier, mirroring "run for this long".
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        try:
            while self._queue:
                time = self._next_pending_time()
                if time is None:
                    break
                if until is not None and time > until:
                    break
                self.step()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def _next_pending_time(self) -> int | None:
        while self._queue:
            time, _priority, _seq, handle = self._queue[0]
            if handle.cancelled:
                heapq.heappop(self._queue)
                continue
            return time
        return None

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events in the queue."""
        return sum(1 for *_rest, handle in self._queue if not handle.cancelled)

    def __repr__(self) -> str:
        return (
            f"Simulator(now={format_duration(self._now)}, "
            f"pending={self.pending_count()})"
        )
