"""The discrete-event simulation kernel.

A :class:`Simulator` owns a timestamp-bucketed event queue.  Events are
totally ordered by ``(time, priority, insertion sequence)``, so the
kernel itself introduces **no** nondeterminism — all modelled
nondeterminism comes from explicit RNG draws in higher layers.

Hot-path design (the sim-kernel throughput overhaul)
----------------------------------------------------

The queue is a dict of *time buckets* plus a heap of pending times:
scheduling appends to the current bucket (amortizing the heap push over
every event sharing a timestamp, the dominant shape produced by zero-
delay trampolines and same-tag fan-out) and the run loop dispatches a
whole bucket per heap pop.  Three scheduling tiers trade generality for
allocation cost:

* :meth:`Simulator.at` / :meth:`Simulator.after` — the general API:
  returns a freshly allocated, cancellable :class:`EventHandle` and
  accepts a priority.  Handles returned here are never recycled, so
  holding one indefinitely is always safe.
* :meth:`Simulator.timer_at` — cancellable like :meth:`at`, but the
  handle comes from a slot/freelist pool and is recycled once the
  kernel is done with it.  **Kernel-internal contract**: the caller
  must drop its reference when the timer fires or right after
  cancelling it (the CPU scheduler's sleep/timeout paths do exactly
  that).
* :meth:`Simulator.post_at` / :meth:`Simulator.post_after` — the fast
  path: no handle, no cancellation, default priority.  Scheduler
  continuations, dispatch trampolines and network deliveries use this;
  it is what ``BENCH_sim_kernel_event_throughput`` measures.

All three tiers share one total order; mixing them cannot reorder
events relative to the previous heap-of-tuples kernel.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.errors import SimulationError
from repro.time.duration import format_duration

#: Default priority for scheduled events; lower runs first at equal times.
PRIORITY_NORMAL = 100
#: Priority for housekeeping that should run before normal events.
PRIORITY_EARLY = 50
#: Priority for events that must observe everything else at their time.
PRIORITY_LATE = 200


class EventHandle:
    """Handle to a scheduled event, supporting cancellation."""

    __slots__ = ("time", "_callback", "_cancelled", "_pooled")

    def __init__(self, time: int, callback: Callable[[], None]) -> None:
        self.time = time
        self._callback = callback
        self._cancelled = False
        self._pooled = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        self._cancelled = True
        self._callback = None

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called."""
        return self._cancelled

    def _fire(self) -> None:
        if self._cancelled:
            return
        callback = self._callback
        self._callback = None
        if callback is not None:
            callback()


class Simulator:
    """Deterministic event-queue simulator over integer-nanosecond time."""

    __slots__ = (
        "_now",
        "_sequence",
        "_times",
        "_buckets",
        "_late",
        "_running",
        "_events_processed",
        "_pool",
    )

    def __init__(self) -> None:
        self._now = 0
        self._sequence = 0
        #: Heap of timestamps with at least one scheduled event.
        self._times: list[int] = []
        #: time -> targets (callables or handles) at PRIORITY_NORMAL,
        #: in insertion order — which *is* the sequence order.
        self._buckets: dict[int, list] = {}
        #: time -> [(priority, sequence, target)] for non-default
        #: priorities (rare: LET publish ordering, test probes).
        self._late: dict[int, list] = {}
        self._running = False
        self._events_processed = 0
        #: Freelist of recycled :meth:`timer_at` handles.
        self._pool: list[EventHandle] = []

    @property
    def now(self) -> int:
        """Current global simulation time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for diagnostics)."""
        return self._events_processed

    # -- scheduling ---------------------------------------------------------

    def _bucket_for(self, time: int) -> list:
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = bucket = []
            if time not in self._late:
                heapq.heappush(self._times, time)
        return bucket

    def at(
        self,
        time: int,
        callback: Callable[[], None],
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule *callback* at absolute global *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {format_duration(time)}, "
                f"now is {format_duration(self._now)}"
            )
        handle = EventHandle(time, callback)
        if priority == PRIORITY_NORMAL:
            bucket = self._buckets.get(time)
            if bucket is None:
                self._buckets[time] = bucket = []
                if time not in self._late:
                    heapq.heappush(self._times, time)
            bucket.append(handle)
        else:
            self._push_late(time, priority, handle)
        return handle

    def after(
        self,
        delay: int,
        callback: Callable[[], None],
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule *callback* after a relative *delay*."""
        if delay < 0:
            raise SimulationError("delay must be non-negative")
        return self.at(self._now + delay, callback, priority)

    def timer_at(self, time: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule a cancellable event on a pooled handle (kernel-internal).

        The handle is recycled through a freelist once the event fires
        (or once its cancelled carcass is swept from the queue), so the
        caller must not retain a reference past that point — see the
        module docstring for the ownership contract.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {format_duration(time)}, "
                f"now is {format_duration(self._now)}"
            )
        pool = self._pool
        if pool:
            handle = pool.pop()
            handle.time = time
            handle._callback = callback
            handle._cancelled = False
        else:
            handle = EventHandle(time, callback)
            handle._pooled = True
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = bucket = []
            if time not in self._late:
                heapq.heappush(self._times, time)
        bucket.append(handle)
        return handle

    def post_at(self, time: int, callback: Callable[[], None]) -> None:
        """Schedule a bare callback: no handle, no cancellation (fast path)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {format_duration(time)}, "
                f"now is {format_duration(self._now)}"
            )
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = bucket = [callback]
            if time not in self._late:
                heapq.heappush(self._times, time)
            return
        bucket.append(callback)

    def post_after(self, delay: int, callback: Callable[[], None]) -> None:
        """Schedule a bare callback after *delay* (fast path)."""
        if delay < 0:
            raise SimulationError("delay must be non-negative")
        time = self._now + delay
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = bucket = [callback]
            if time not in self._late:
                heapq.heappush(self._times, time)
            return
        bucket.append(callback)

    def _push_late(self, time: int, priority: int, target) -> None:
        entries = self._late.get(time)
        if entries is None:
            self._late[time] = entries = []
            if time not in self._buckets:
                heapq.heappush(self._times, time)
        entries.append((priority, self._sequence, target))
        self._sequence += 1

    # -- dispatch -----------------------------------------------------------

    def _fire_target(self, target) -> int:
        """Run one bucket entry; returns 1 if an event actually fired."""
        if target.__class__ is EventHandle:
            fired = 0
            if not target._cancelled:
                callback = target._callback
                target._callback = None
                fired = 1
                callback()
            if target._pooled:
                target._callback = None
                self._pool.append(target)
            return fired
        target()
        return 1

    def _dispatch_time(self, time: int) -> int:
        """Run every event at *time* in (priority, sequence) order."""
        fired = 0
        late = self._late
        early_entries = later_entries = None
        if late:
            entries = late.pop(time, None)
            if entries:
                entries.sort(key=lambda item: (item[0], item[1]))
                early_entries = [t for p, _s, t in entries if p < PRIORITY_NORMAL]
                later_entries = [t for p, _s, t in entries if p >= PRIORITY_NORMAL]
        if early_entries:
            for target in early_entries:
                fired += self._fire_target(target)
        bucket = self._buckets.pop(time, None)
        if bucket is not None:
            fire = self._fire_target
            for target in bucket:
                if target.__class__ is EventHandle:
                    fired += fire(target)
                else:
                    target()
                    fired += 1
        if later_entries:
            for target in later_entries:
                fired += self._fire_target(target)
        return fired

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` if queue is empty."""
        times = self._times
        buckets = self._buckets
        late = self._late
        while times:
            time = times[0]
            bucket = buckets.get(time)
            entries = late.get(time) if late else None
            if bucket is None and entries is None:
                heapq.heappop(times)  # stale duplicate
                continue
            # Assemble the time's entries in order and fire the first
            # live one, leaving the rest queued (slow, test-only path).
            ordered: list = []
            if entries:
                entries = sorted(entries, key=lambda item: (item[0], item[1]))
                ordered += [
                    ("late", e) for e in entries if e[0] < PRIORITY_NORMAL
                ]
            if bucket:
                ordered += [("bucket", t) for t in bucket]
            if entries:
                ordered += [
                    ("late", e) for e in entries if e[0] >= PRIORITY_NORMAL
                ]
            fired = False
            consumed = 0
            for kind, item in ordered:
                consumed += 1
                target = item if kind == "bucket" else item[2]
                self._now = time
                if self._fire_target(target):
                    fired = True
                    break
            # Drop the consumed prefix from the underlying structures.
            for kind, item in ordered[:consumed]:
                if kind == "bucket":
                    bucket.remove(item)
                else:
                    late[time].remove(item)
            if bucket is not None and not bucket:
                buckets.pop(time, None)
            if late and time in late and not late[time]:
                late.pop(time)
            if time not in buckets and time not in late:
                heapq.heappop(times)
            if fired:
                self._events_processed += 1
                return True
        return False

    def run(self, until: int | None = None) -> None:
        """Run events until the queue drains or *until* is reached.

        When *until* is given, time is advanced to exactly *until* even if
        the last event fires earlier, mirroring "run for this long".
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        fired = 0
        times = self._times
        buckets = self._buckets
        late = self._late
        bucket_pop = buckets.pop
        pool_append = self._pool.append
        handle_class = EventHandle
        pop = heapq.heappop
        try:
            if until is None:
                while times:
                    time = pop(times)
                    bucket = bucket_pop(time, None)
                    if late or bucket is None:
                        # Rare: off-priority events or stale duplicate.
                        if bucket is not None:
                            buckets[time] = bucket
                        elif time not in late:
                            continue
                        self._now = time
                        fired += self._dispatch_time(time)
                        continue
                    self._now = time
                    for target in bucket:
                        if target.__class__ is handle_class:
                            if not target._cancelled:
                                callback = target._callback
                                target._callback = None
                                fired += 1
                                callback()
                            if target._pooled:
                                target._callback = None
                                pool_append(target)
                        else:
                            target()
                            fired += 1
            else:
                while times:
                    time = times[0]
                    if time not in buckets and time not in self._late:
                        pop(times)
                        continue
                    if time > until:
                        break
                    pop(times)
                    self._now = time
                    fired += self._dispatch_time(time)
                if until > self._now:
                    self._now = until
        finally:
            self._events_processed += fired
            self._running = False

    def _next_pending_time(self) -> int | None:
        times = self._times
        while times:
            time = times[0]
            if time not in self._buckets and time not in self._late:
                heapq.heappop(times)
                continue
            return time
        return None

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events in the queue."""
        count = 0
        for bucket in self._buckets.values():
            for target in bucket:
                if target.__class__ is EventHandle:
                    if not target._cancelled:
                        count += 1
                else:
                    count += 1
        for entries in self._late.values():
            for _priority, _seq, target in entries:
                if target.__class__ is EventHandle:
                    if not target._cancelled:
                        count += 1
                else:
                    count += 1
        return count

    def __repr__(self) -> str:
        return (
            f"Simulator(now={format_duration(self._now)}, "
            f"pending={self.pending_count()})"
        )
