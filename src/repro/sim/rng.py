"""Hierarchical, named random-number streams.

Every random choice in the simulated system (thread dispatch, network
latency, execution-time jitter, clock read jitter...) draws from a stream
obtained from a single :class:`RngTree`.  Streams are derived from the
root seed and the stream *name* via SHA-256, so:

* two streams with different names are statistically independent;
* adding a new consumer of randomness does not perturb existing streams
  (unlike sharing one ``random.Random``), which keeps experiments
  comparable across code versions;
* a run is fully determined by ``(root seed, program)``.
"""

from __future__ import annotations

import hashlib
import random


class RngTree:
    """Derives independent :class:`random.Random` streams from one seed."""

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The root seed this tree was created with."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it on first use.

        Repeated calls with the same name return the same object, so a
        component can re-fetch its stream instead of storing it.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(f"{self._seed}/{name}".encode()).digest()
        stream = random.Random(int.from_bytes(digest[:8], "big"))
        self._streams[name] = stream
        return stream

    def child(self, name: str) -> "RngTree":
        """Return a sub-tree whose streams are namespaced under *name*."""
        digest = hashlib.sha256(f"{self._seed}/{name}/tree".encode()).digest()
        return RngTree(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:
        return f"RngTree(seed={self._seed})"
