"""Hierarchical, named random-number streams.

Every random choice in the simulated system (thread dispatch, network
latency, execution-time jitter, clock read jitter...) draws from a stream
obtained from a single :class:`RngTree`.  Streams are derived from the
root seed and the stream *name* via SHA-256, so:

* two streams with different names are statistically independent;
* adding a new consumer of randomness does not perturb existing streams
  (unlike sharing one ``random.Random``), which keeps experiments
  comparable across code versions;
* a run is fully determined by ``(root seed, program)``.

Stream hooks
------------

:func:`stream_hooks` lets tooling intercept streams as they are created:
a hook receives the stream's fully qualified path (e.g.
``"platform.fusion-ecu/scheduler"``) and the seeded
:class:`random.Random`, and may return a replacement object.  This is
how :mod:`repro.explore` records, replays and perturbs scheduler
decisions without the application code knowing — the hook stack active
when a tree is *constructed* is snapshotted into it (and inherited by
child trees), so an experiment run inside a ``with stream_hooks(...)``
block is instrumented end to end.
"""

from __future__ import annotations

import hashlib
import random
from contextlib import contextmanager
from typing import Any, Callable, Iterator

#: A hook maps (full stream path, seeded stream) to a replacement
#: stream-like object, or ``None`` to leave the stream untouched.
StreamHook = Callable[[str, random.Random], Any]

_active_hooks: list[StreamHook] = []


@contextmanager
def stream_hooks(*hooks: StreamHook) -> Iterator[None]:
    """Install *hooks* for every :class:`RngTree` built in this block."""
    _active_hooks.extend(hooks)
    try:
        yield
    finally:
        for hook in hooks:
            _active_hooks.remove(hook)


class RngTree:
    """Derives independent :class:`random.Random` streams from one seed."""

    def __init__(self, seed: int, _path: str = "", _hooks: tuple | None = None) -> None:
        self._seed = int(seed)
        self._path = _path
        self._hooks: tuple = (
            tuple(_active_hooks) if _hooks is None else _hooks
        )
        self._streams: dict[str, Any] = {}

    @property
    def seed(self) -> int:
        """The root seed this tree was created with."""
        return self._seed

    def stream_path(self, name: str) -> str:
        """The fully qualified path of stream *name* in this tree."""
        return f"{self._path}/{name}" if self._path else name

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it on first use.

        Repeated calls with the same name return the same object, so a
        component can re-fetch its stream instead of storing it.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(f"{self._seed}/{name}".encode()).digest()
        stream: Any = random.Random(int.from_bytes(digest[:8], "big"))
        for hook in self._hooks:
            replacement = hook(self.stream_path(name), stream)
            if replacement is not None:
                stream = replacement
        self._streams[name] = stream
        return stream

    def child(self, name: str) -> "RngTree":
        """Return a sub-tree whose streams are namespaced under *name*."""
        digest = hashlib.sha256(f"{self._seed}/{name}/tree".encode()).digest()
        path = f"{self._path}/{name}" if self._path else name
        return RngTree(
            int.from_bytes(digest[:8], "big"), _path=path, _hooks=self._hooks
        )

    def __repr__(self) -> str:
        return f"RngTree(seed={self._seed})"


class RandomDecisionSource:
    """Adapts a plain :class:`random.Random` to the scheduler's decision
    interface (see :class:`repro.sim.scheduler.CpuScheduler`).

    The draw sequence is exactly the pre-decision-source behaviour —
    one ``randrange`` per pick, one ``randint`` per jitter, nothing for
    preemption queries — so wrapping a stream in this adapter leaves
    every existing seeded experiment bit-identical.
    """

    __slots__ = ("_rng",)

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng

    def pick_index(self, kind: str, names: list[str]) -> int:
        """Choose one of *names*; returns its index."""
        return self._rng.randrange(len(names))

    def jitter(self, kind: str, name: str, bound_ns: int) -> int:
        """A random delay in ``[0, bound_ns]`` for thread *name*."""
        return self._rng.randint(0, bound_ns)

    def preempt(self, name: str) -> int:
        """Extra preemption delay before dispatching *name* (default 0)."""
        return 0
