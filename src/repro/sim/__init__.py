"""Discrete-event simulation substrate.

This package is the "hardware and operating system" of the reproduction.
It provides:

* a deterministic event-queue simulator (:mod:`repro.sim.core`);
* hierarchical seeded randomness (:mod:`repro.sim.rng`) so that every
  "nondeterministic" outcome in the modelled system is replayable from a
  single experiment seed;
* cooperative simulated threads with a randomized multi-core dispatcher
  (:mod:`repro.sim.process`, :mod:`repro.sim.scheduler`) — this reproduces
  the paper's first source of nondeterminism (thread scheduling);
* POSIX-style synchronization primitives (:mod:`repro.sim.sync`);
* platforms with physical clocks (:mod:`repro.sim.platform`) and a world
  container tying platforms and the network together
  (:mod:`repro.sim.world`).
"""

from repro.sim.core import EventHandle, Simulator
from repro.sim.rng import RngTree
from repro.sim.process import (
    Acquire,
    Compute,
    Exit,
    Join,
    Notify,
    NotifyAll,
    Release,
    SimThread,
    Sleep,
    SleepUntil,
    ThreadState,
    Wait,
    WaitResult,
    WaitUntil,
    Yield,
)
from repro.sim.sync import CondVar, MessageQueue, Mutex, Semaphore
from repro.sim.platform import Platform, PlatformConfig
from repro.sim.world import World

__all__ = [
    "Simulator",
    "EventHandle",
    "RngTree",
    "SimThread",
    "ThreadState",
    "Compute",
    "Sleep",
    "SleepUntil",
    "Yield",
    "Acquire",
    "Release",
    "Wait",
    "WaitUntil",
    "WaitResult",
    "Notify",
    "NotifyAll",
    "Join",
    "Exit",
    "Mutex",
    "CondVar",
    "Semaphore",
    "MessageQueue",
    "Platform",
    "PlatformConfig",
    "World",
]
