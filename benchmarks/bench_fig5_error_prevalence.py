"""FIG5 — reproduce Figure 5: error prevalence of the stock brake assistant.

Paper artifact: 20 runs x 100 000 frames; per-run stacked error bars of
four types (dropped frames at Preprocessing / Computer Vision, input
mismatches at Computer Vision, dropped vehicles at EBA), sorted by total
rate.  Paper numbers: min 0.018 %, mean 5.60 %, max 22.25 %; composition
varies run to run, with Computer Vision drops dominating most runs.

Expected shape (asserted): error rate spans orders of magnitude across
runs (near-zero to >10 %), mean in the few-percent range, at least three
of the four error types observed, and the dominant type varies.

Scale knobs: ``REPRO_FIG5_RUNS`` (default 20) and
``REPRO_BRAKE_FRAMES`` (default 2000; paper scale is 100000).
"""

from repro.harness import SweepRunner, env_int
from repro.harness.figures import figure5


def test_figure5(benchmark, show, bench_json):
    n_runs = env_int("REPRO_FIG5_RUNS", 20)
    n_frames = env_int("REPRO_BRAKE_FRAMES", 2_000)
    runner = SweepRunner()
    result = benchmark.pedantic(
        figure5, args=(n_runs, n_frames), kwargs={"sweep": runner},
        rounds=1, iterations=1,
    )
    show(result.render())
    show(runner.stats.summary_line())

    rates = result.rates()
    bench_json.sweep(runner).record(
        runs=n_runs,
        frames=n_frames,
        error_rates={
            "min": min(rates), "mean": result.mean_rate(), "max": max(rates)
        },
    )
    # Huge spread: some runs near-perfect, some catastrophically bad.
    assert min(rates) < 0.005
    assert max(rates) > 0.10
    # Mean error prevalence lands in the paper's "few percent" regime.
    assert 0.01 < result.mean_rate() < 0.15
    # Error composition: several error types occur across the sweep...
    types_seen = {
        name
        for run in result.runs
        for name, count in run.errors.as_dict().items()
        if count > 0
    }
    assert len(types_seen) >= 3
    # ...and no single type dominates every error-bearing run.
    assert len(result.dominant_types()) >= 2
