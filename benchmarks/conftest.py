"""Shared fixtures for the benchmark suite.

Perf-trajectory convention
--------------------------

Every benchmark writes a machine-readable ``BENCH_<name>.json`` (via
the :func:`bench_json` fixture) next to its human-readable rendering:
wall time, sweep throughput (seeds/s, cache hits), and whatever
domain-level numbers the test records — latency means, error rates,
observability overhead ratios.  CI's *benchmark-smoke* job sets
``REPRO_BENCH_DIR`` and uploads the whole directory as the
``bench-json`` artifact on every run, pass or fail, so performance can
be tracked **across commits** by diffing artifacts instead of scraping
logs.  Conventions:

* one JSON file per benchmark, named after the test function
  (``test_figure5`` -> ``BENCH_figure5.json``), overwritten per run;
* flat keys for the headline numbers (``wall_time_s``, ``frames``,
  ``*_latency_mean_ns``), a nested ``sweep`` block for engine stats;
* record *measurements* unconditionally, assert only stable claims —
  a regression shows up as a trajectory change, not a flaky red build.
"""

import time

import pytest

from repro.harness.benchjson import BenchRecorder


@pytest.fixture
def show(capsys):
    """Print a rendered figure straight to the terminal (uncaptured)."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print("\n" + text + "\n")

    return _show


@pytest.fixture
def bench_json(request):
    """Machine-readable ``BENCH_<name>.json`` writer (see benchjson).

    Named after the test (``test_figure5`` -> ``BENCH_figure5.json``),
    written on teardown with the test's wall time filled in; the test
    body adds seed counts, error rates etc. via ``record()``/``sweep()``.
    Target directory: ``REPRO_BENCH_DIR`` (default: CWD).
    """
    recorder = BenchRecorder(request.node.name.removeprefix("test_"))
    started = time.perf_counter()
    yield recorder
    recorder.record(wall_time_s=round(time.perf_counter() - started, 3))
    recorder.write()
