"""Shared fixtures for the benchmark suite."""

import time

import pytest

from repro.harness.benchjson import BenchRecorder


@pytest.fixture
def show(capsys):
    """Print a rendered figure straight to the terminal (uncaptured)."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print("\n" + text + "\n")

    return _show


@pytest.fixture
def bench_json(request):
    """Machine-readable ``BENCH_<name>.json`` writer (see benchjson).

    Named after the test (``test_figure5`` -> ``BENCH_figure5.json``),
    written on teardown with the test's wall time filled in; the test
    body adds seed counts, error rates etc. via ``record()``/``sweep()``.
    Target directory: ``REPRO_BENCH_DIR`` (default: CWD).
    """
    recorder = BenchRecorder(request.node.name.removeprefix("test_"))
    started = time.perf_counter()
    yield recorder
    recorder.record(wall_time_s=round(time.perf_counter() - started, 3))
    recorder.write()
