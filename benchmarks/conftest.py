"""Shared fixtures for the benchmark suite."""

import pytest


@pytest.fixture
def show(capsys):
    """Print a rendered figure straight to the terminal (uncaptured)."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print("\n" + text + "\n")

    return _show
